//! The Tuner's cluster control plane: one worker thread per remote
//! PipeStore, parallel fan-out of control operations, per-peer retry,
//! and a [`FailurePolicy`] so an FT-DMP round survives flaky peers.
//!
//! A [`Cluster`] owns its peers, fans every operation out concurrently —
//! the paper's near-linear-scaling claim (§6) assumes the Store stage of
//! every peer runs at once — and gathers *typed* per-peer results
//! ([`Fanout`]) instead of dying on the first [`RpcError`].
//!
//! This file is an ndlint no-panic zone: a flaky peer must surface as a
//! [`PeerFailure`], never as a Tuner-side panic.

use crate::checknrun::ModelDelta;
use crate::ftdmp::{FtdmpConfig, FtdmpError, FtdmpReport, ScheduleStats};
use crate::placement::PlacementMap;
use crate::rpc::client::{ConnectOptions, RemotePipeStore};
use crate::rpc::wire::{PhotoRecord, ShardDesc};
use crate::rpc::RpcError;
use crate::tuner::Tuner;
use dnn::Mlp;
use rand::Rng;
use std::collections::{BTreeMap, VecDeque};
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tensor::Tensor;

/// Per-peer job queue depth. Rounds are sequential — `fanout_on` gathers
/// every reply before the next round starts — so at most one `Job::Op`
/// plus one `Job::Stop` is ever in flight per peer; the bound exists to
/// keep the queue from masking a stuck round as silent memory growth.
const PEER_JOB_QUEUE_CAP: usize = 4;

/// What the control plane does when peers fail an operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailurePolicy {
    /// Any peer failure aborts the round (the pre-redesign behavior,
    /// minus the lost work: surviving results are still reported).
    Strict,
    /// The round proceeds as long as at least `k` peers stay healthy;
    /// failed peers are excluded and reported as [`PeerFailure`]s.
    Quorum(usize),
}

impl FailurePolicy {
    /// Whether a phase outcome of `ok` healthy peers and `failed`
    /// failures lets the round continue.
    pub fn admits(&self, ok: usize, failed: usize) -> bool {
        match self {
            FailurePolicy::Strict => failed == 0,
            FailurePolicy::Quorum(k) => ok >= *k,
        }
    }
}

impl std::fmt::Display for FailurePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailurePolicy::Strict => write!(f, "strict"),
            FailurePolicy::Quorum(k) => write!(f, "quorum({k})"),
        }
    }
}

/// One peer's failure on one operation, with enough context to act on.
#[derive(Debug)]
pub struct PeerFailure {
    /// Position of the peer in the cluster.
    pub index: usize,
    /// Peer address.
    pub peer: String,
    /// Operation that failed.
    pub op: &'static str,
    /// Attempts made (including retries) before giving up.
    pub attempts: u32,
    /// The final error.
    pub error: RpcError,
}

impl std::fmt::Display for PeerFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "peer #{} ({}) failed {} after {} attempt(s): {}",
            self.index, self.peer, self.op, self.attempts, self.error
        )
    }
}

/// One peer's successful result, with the wire traffic it cost.
#[derive(Debug)]
pub struct PeerResult<T> {
    /// Position of the peer in the cluster.
    pub index: usize,
    /// Peer address.
    pub peer: SocketAddr,
    /// The operation's result.
    pub value: T,
    /// Attempts made (1 = first try succeeded).
    pub attempts: u32,
    /// Request bytes this operation put on the wire to this peer.
    pub sent_bytes: u64,
    /// Reply bytes read back from this peer.
    pub recv_bytes: u64,
}

/// The gathered outcome of fanning one operation across the cluster:
/// per-peer successes (sorted by peer index, so concatenating them is
/// deterministic) and per-peer failures.
#[derive(Debug)]
pub struct Fanout<T> {
    /// Successful peers, ascending by index.
    pub ok: Vec<PeerResult<T>>,
    /// Failed peers, ascending by index.
    pub failures: Vec<PeerFailure>,
    /// Wall-clock time of the whole fan-out (slowest peer dominates).
    pub elapsed: Duration,
}

impl<T> Fanout<T> {
    /// Values in peer-index order, discarding per-peer bookkeeping.
    pub fn into_values(self) -> Vec<T> {
        self.ok.into_iter().map(|r| r.value).collect()
    }
}

/// Why a cluster-level operation could not complete.
#[derive(Debug)]
pub enum ClusterError {
    /// The cluster has no peers.
    NoPeers,
    /// A configuration problem independent of any peer.
    Config(&'static str),
    /// The FT-DMP job itself was invalid before any peer was touched.
    Ftdmp(crate::ftdmp::FtdmpError),
    /// The [`FailurePolicy`] rejected the round.
    Rejected {
        /// The policy that rejected.
        policy: FailurePolicy,
        /// Healthy peers at the point of rejection.
        ok: usize,
        /// Everything that went wrong, across all phases so far.
        failures: Vec<PeerFailure>,
    },
}

impl ClusterError {
    /// Collapses to a single [`RpcError`] (the first peer failure, when
    /// there is one) for callers on the old free-function API.
    pub fn into_rpc(self) -> RpcError {
        match self {
            ClusterError::NoPeers => RpcError::Protocol("cluster has no peers"),
            ClusterError::Config(msg) => RpcError::Protocol(msg),
            ClusterError::Ftdmp(_) => RpcError::Protocol("invalid FT-DMP job"),
            ClusterError::Rejected { failures, .. } => match failures.into_iter().next() {
                Some(f) => f.error,
                None => RpcError::Protocol("failure policy rejected the round"),
            },
        }
    }
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::NoPeers => write!(f, "cluster has no peers"),
            ClusterError::Config(msg) => write!(f, "cluster misconfigured: {msg}"),
            ClusterError::Ftdmp(e) => write!(f, "invalid FT-DMP job: {e}"),
            ClusterError::Rejected {
                policy,
                ok,
                failures,
            } => {
                write!(
                    f,
                    "failure policy {policy} rejected the round ({ok} healthy, {} failed",
                    failures.len()
                )?;
                match failures.iter().next() {
                    Some(first) => write!(f, "; first: {first})"),
                    None => write!(f, ")"),
                }
            }
        }
    }
}

impl std::error::Error for ClusterError {}

/// The Tuner's cluster-wide view after scraping every PipeStore.
#[derive(Debug, Clone)]
pub struct ClusterMetrics {
    /// Each store's snapshot, tagged with its socket address.
    pub per_peer: Vec<(SocketAddr, telemetry::Snapshot)>,
    /// All peer snapshots folded into one: counters summed, histograms
    /// merged bucket-wise. Peer identity is erased here — use
    /// [`ClusterMetrics::merged_labelled`] to keep it.
    pub merged: telemetry::Snapshot,
}

impl ClusterMetrics {
    /// A merged view that keeps per-store resolution by tagging every
    /// sample with a `peer` label before folding.
    pub fn merged_labelled(&self) -> telemetry::Snapshot {
        let mut out = telemetry::Snapshot::default();
        for (peer, snap) in &self.per_peer {
            out.merge_from(&snap.clone().with_label("peer", &peer.to_string()));
        }
        out
    }
}

/// An FT-DMP round's outcome at cluster granularity: the training report
/// plus which peers contributed and which fell out along the way.
#[derive(Debug)]
pub struct ClusterFtdmpReport {
    /// The usual FT-DMP report, with `feature_bytes` and
    /// `distribution_bytes` measured as *actual wire bytes* (frame
    /// headers included), not uncompressed element counts.
    pub report: FtdmpReport,
    /// Peers that failed (and were excluded) during the round.
    pub failures: Vec<PeerFailure>,
    /// Indices of the peers that completed every phase.
    pub peers_used: Vec<usize>,
    /// Shard extractions that a dead owner's surviving replica served
    /// mid-sweep (always 0 without a placement map).
    pub reroutes: u64,
}

/// How fast [`Cluster::rebalance`] may move data: photos are copied in
/// waves of at most `max_bytes_per_wave`, pausing `wave_pause` between
/// waves so a healing fleet does not starve production reads.
#[derive(Debug, Clone, Copy)]
pub struct RebalanceConfig {
    /// Upper bound on payload bytes copied per wave.
    pub max_bytes_per_wave: u64,
    /// Pause between waves (zero disables pacing entirely).
    pub wave_pause: Duration,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        RebalanceConfig {
            max_bytes_per_wave: 8 << 20,
            wave_pause: Duration::from_millis(2),
        }
    }
}

/// What one [`Cluster::rebalance`] sweep did.
#[derive(Debug, Default)]
pub struct RebalanceReport {
    /// Photos that gained at least one new replica.
    pub photos_copied: u64,
    /// Payload bytes shipped to backfilling replicas (counted once per
    /// new copy).
    pub bytes_copied: u64,
    /// Pacing waves the sweep was split into.
    pub waves: u64,
    /// Wall-clock time of the whole sweep.
    pub elapsed: Duration,
    /// Per-photo copy failures (the sweep continues past them).
    pub failures: Vec<PeerFailure>,
}

/// A control operation fanned out to peers. Blobs are `Arc`-shared so a
/// model serialized once is not copied per peer.
#[derive(Clone)]
enum PeerOp {
    InstallModel(Arc<[u8]>),
    ExtractFeatures { run: u32, n_run: u32 },
    ExtractFeaturesFor { node: u64, run: u32, n_run: u32 },
    ExtractSlice { node: u64, run: u32, n_run: u32, mb: u32, n_mb: u32 },
    DescribeNode(u64),
    OfflineInfer,
    ApplyDelta(Arc<[u8]>),
    Describe,
    Scrape,
    Placement,
    InstallPlacement(Arc<PlacementMap>),
    PutPhoto(Arc<PhotoRecord>),
    GetPhoto(u64),
    ListPhotos,
    EndSession,
}

impl PeerOp {
    /// Metric label; matches `Request::op_name` on the wire layer.
    fn name(&self) -> &'static str {
        match self {
            PeerOp::InstallModel(_) => "install_model",
            PeerOp::ExtractFeatures { .. } => "extract_features",
            PeerOp::ExtractFeaturesFor { .. } => "extract_features_for",
            PeerOp::ExtractSlice { .. } => "extract_slice",
            PeerOp::DescribeNode(_) => "describe_node",
            PeerOp::OfflineInfer => "offline_infer",
            PeerOp::ApplyDelta(_) => "apply_delta",
            PeerOp::Describe => "describe",
            PeerOp::Scrape => "metrics",
            PeerOp::Placement => "placement",
            PeerOp::InstallPlacement(_) => "install_placement",
            PeerOp::PutPhoto(_) => "put_photo",
            PeerOp::GetPhoto(_) => "get_photo",
            PeerOp::ListPhotos => "list_photos",
            PeerOp::EndSession => "shutdown",
        }
    }
}

/// A successful per-peer operation result, still untyped.
enum PeerOk {
    Ack,
    Features {
        features: Tensor,
        labels: Vec<usize>,
    },
    Labels(Vec<(u64, u32)>),
    Shard(ShardDesc),
    Metrics(telemetry::Snapshot),
    Placement(PlacementMap),
    Photo(PhotoRecord),
    PhotoIds(Vec<u64>),
}

struct WorkerReply {
    index: usize,
    peer: SocketAddr,
    op: &'static str,
    attempts: u32,
    sent_bytes: u64,
    recv_bytes: u64,
    result: Result<PeerOk, RpcError>,
}

enum Job {
    Op {
        op: PeerOp,
        attempts: u32,
        done: mpsc::SyncSender<WorkerReply>,
    },
    Stop,
}

struct PeerSlot {
    addr: SocketAddr,
    tx: mpsc::SyncSender<Job>,
    thread: Option<JoinHandle<RemotePipeStore>>,
}

/// Executes `op` against one peer with bounded retry: transport errors
/// drop the session and reconnect (the peer may have restarted); remote
/// application errors and protocol violations are final. Exhausted
/// retries collapse into [`RpcError::PeerUnavailable`].
fn run_op(
    remote: &mut RemotePipeStore,
    op: &PeerOp,
    max_attempts: u32,
) -> (Result<PeerOk, RpcError>, u32) {
    // Ending a session that is already gone is a no-op, not a failure,
    // and must not trigger a pointless reconnect.
    if matches!(op, PeerOp::EndSession) && !remote.is_connected() {
        return (Ok(PeerOk::Ack), 0);
    }
    let max = max_attempts.max(1);
    let mut last_io: Option<std::io::Error> = None;
    for attempt in 1..=max {
        if !remote.is_connected() {
            match remote.reconnect() {
                Ok(()) => {}
                Err(RpcError::Io(e)) => {
                    last_io = Some(e);
                    continue;
                }
                Err(RpcError::PeerUnavailable { source, .. }) => {
                    last_io = source;
                    continue;
                }
                // Version skew / handshake refusal: retrying won't help.
                Err(fatal) => return (Err(fatal), attempt),
            }
        }
        match apply(remote, op) {
            Ok(ok) => return (Ok(ok), attempt),
            Err(RpcError::Io(e)) => {
                remote.disconnect();
                last_io = Some(e);
            }
            Err(fatal) => return (Err(fatal), attempt),
        }
    }
    (
        Err(RpcError::PeerUnavailable {
            peer: remote.peer().to_string(),
            attempts: max,
            source: last_io,
        }),
        max,
    )
}

fn apply(remote: &mut RemotePipeStore, op: &PeerOp) -> Result<PeerOk, RpcError> {
    match op {
        PeerOp::InstallModel(blob) => remote.install_model_bytes(blob).map(|()| PeerOk::Ack),
        PeerOp::ExtractFeatures { run, n_run } => remote
            .extract_features(*run, *n_run)
            .map(|(features, labels)| PeerOk::Features { features, labels }),
        PeerOp::OfflineInfer => remote.offline_infer().map(PeerOk::Labels),
        PeerOp::ApplyDelta(blob) => remote.apply_delta_bytes(blob).map(|()| PeerOk::Ack),
        PeerOp::Describe => remote.describe().map(PeerOk::Shard),
        PeerOp::Scrape => remote.scrape().map(PeerOk::Metrics),
        PeerOp::Placement => remote.placement().map(PeerOk::Placement),
        PeerOp::InstallPlacement(map) => remote.install_placement(map).map(|()| PeerOk::Ack),
        PeerOp::PutPhoto(rec) => remote.put_photo(rec).map(|()| PeerOk::Ack),
        PeerOp::GetPhoto(id) => remote.get_photo(*id).map(PeerOk::Photo),
        PeerOp::ListPhotos => remote.list_photos().map(PeerOk::PhotoIds),
        PeerOp::ExtractFeaturesFor { node, run, n_run } => remote
            .extract_features_for(*node, *run, *n_run)
            .map(|(features, labels)| PeerOk::Features { features, labels }),
        PeerOp::ExtractSlice {
            node,
            run,
            n_run,
            mb,
            n_mb,
        } => remote
            .extract_slice(*node, *run, *n_run, *mb, *n_mb)
            .map(|(features, labels)| PeerOk::Features { features, labels }),
        PeerOp::DescribeNode(node) => remote.describe_node(*node).map(PeerOk::Shard),
        PeerOp::EndSession => remote.end_session().map(|()| PeerOk::Ack),
    }
}

/// Bumps the shard-reroute counter: a read or feature extraction that
/// could not be served by its primary replica and fell through to a
/// surviving one.
fn count_reroutes(n: u64) {
    if n > 0 && telemetry::enabled() {
        telemetry::global()
            .counter(
                "ndpipe_shard_reroutes_total",
                "reads and extractions rerouted from a dead replica to a survivor",
            )
            .add(n);
    }
}

/// Puts a failed micro-batch back on its node's queue, keeping the
/// queue sorted by (run, micro-batch) so the front stays the most
/// urgent work.
fn requeue<T>(queues: &mut BTreeMap<usize, VecDeque<T>>, task: T)
where
    T: Copy,
    T: SliceKey,
{
    let q = queues.entry(task.node()).or_default();
    let pos = q
        .iter()
        .position(|t| t.key() > task.key())
        .unwrap_or(q.len());
    q.insert(pos, task);
}

/// Ordering key for requeued micro-batch tasks.
trait SliceKey {
    fn node(&self) -> usize;
    fn key(&self) -> (usize, usize);
}

fn worker_main(
    index: usize,
    mut remote: RemotePipeStore,
    rx: mpsc::Receiver<Job>,
) -> RemotePipeStore {
    while let Ok(job) = rx.recv() {
        match job {
            Job::Op { op, attempts, done } => {
                let (sent_before, recv_before) = remote.wire_totals();
                let (result, attempts) = run_op(&mut remote, &op, attempts);
                let (sent_after, recv_after) = remote.wire_totals();
                let reply = WorkerReply {
                    index,
                    peer: remote.peer(),
                    op: op.name(),
                    attempts,
                    sent_bytes: sent_after.saturating_sub(sent_before),
                    recv_bytes: recv_after.saturating_sub(recv_before),
                    result,
                };
                if done.send(reply).is_err() {
                    // The gathering side went away; nothing left to do
                    // for this job.
                }
            }
            Job::Stop => break,
        }
    }
    remote
}

/// Configures and connects a [`Cluster`].
#[derive(Debug, Clone, Copy)]
pub struct ClusterBuilder {
    connect: ConnectOptions,
    policy: FailurePolicy,
    op_attempts: u32,
}

impl Default for ClusterBuilder {
    fn default() -> Self {
        ClusterBuilder {
            connect: ConnectOptions::default(),
            policy: FailurePolicy::Strict,
            op_attempts: 2,
        }
    }
}

impl ClusterBuilder {
    /// Starts from the defaults: [`FailurePolicy::Strict`], default
    /// [`ConnectOptions`], 2 attempts per operation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the failure policy for every subsequent round.
    #[must_use]
    pub fn policy(mut self, policy: FailurePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Connection policy used both at construction and for worker-side
    /// reconnects.
    #[must_use]
    pub fn connect_options(mut self, opts: ConnectOptions) -> Self {
        self.connect = opts;
        self
    }

    /// Attempts per fanned-out operation (clamped to ≥ 1); transport
    /// errors reconnect and retry up to this bound.
    #[must_use]
    pub fn op_attempts(mut self, attempts: u32) -> Self {
        self.op_attempts = attempts.max(1);
        self
    }

    /// Connects to every address in parallel and builds the cluster.
    /// Under [`FailurePolicy::Quorum`], peers that are down get detached
    /// slots (their workers keep trying to reconnect per-operation) as
    /// long as the quorum holds; under [`FailurePolicy::Strict`] any
    /// connect failure is an error.
    ///
    /// # Errors
    ///
    /// [`ClusterError::NoPeers`] for an empty list,
    /// [`ClusterError::Config`] for unresolvable addresses, or
    /// [`ClusterError::Rejected`] when the policy does not admit the
    /// surviving set.
    pub fn connect<S: AsRef<str>>(self, addrs: &[S]) -> Result<Cluster, ClusterError> {
        if addrs.is_empty() {
            return Err(ClusterError::NoPeers);
        }
        if let FailurePolicy::Quorum(k) = self.policy {
            if k > addrs.len() {
                return Err(ClusterError::Config("quorum exceeds peer count"));
            }
        }
        let mut resolved = Vec::with_capacity(addrs.len());
        for a in addrs {
            match a.as_ref().to_socket_addrs().ok().and_then(|mut i| i.next()) {
                Some(sa) => resolved.push(sa),
                None => return Err(ClusterError::Config("unresolvable peer address")),
            }
        }
        let opts = self.connect;
        let results: Vec<Result<RemotePipeStore, RpcError>> = std::thread::scope(|s| {
            let handles: Vec<_> = resolved
                .iter()
                .map(|&sa| s.spawn(move || RemotePipeStore::connect_with(sa, opts)))
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(r) => r,
                    Err(_) => Err(RpcError::Protocol("peer connect thread panicked")),
                })
                .collect()
        });
        let mut remotes = Vec::with_capacity(resolved.len());
        let mut failures = Vec::new();
        for (index, (result, sa)) in results.into_iter().zip(resolved).enumerate() {
            match result {
                Ok(r) => remotes.push(r),
                Err(error) => {
                    failures.push(PeerFailure {
                        index,
                        peer: sa.to_string(),
                        op: "connect",
                        attempts: opts.max_attempts.max(1),
                        error,
                    });
                    remotes.push(RemotePipeStore::detached(sa, opts));
                }
            }
        }
        let healthy = remotes.iter().filter(|r| r.is_connected()).count();
        if !self.policy.admits(healthy, failures.len()) {
            return Err(ClusterError::Rejected {
                policy: self.policy,
                ok: healthy,
                failures,
            });
        }
        self.adopt_with_failures(remotes, failures)
    }

    /// Builds a cluster around already-connected handles. Order is
    /// preserved: peer `i` of the cluster is `remotes[i]`.
    ///
    /// # Errors
    ///
    /// [`ClusterError::NoPeers`] for an empty vector, or
    /// [`ClusterError::Config`] if a worker thread cannot be spawned.
    pub fn adopt(self, remotes: Vec<RemotePipeStore>) -> Result<Cluster, ClusterError> {
        self.adopt_with_failures(remotes, Vec::new())
    }

    fn adopt_with_failures(
        self,
        remotes: Vec<RemotePipeStore>,
        initial_failures: Vec<PeerFailure>,
    ) -> Result<Cluster, ClusterError> {
        if remotes.is_empty() {
            return Err(ClusterError::NoPeers);
        }
        if let FailurePolicy::Quorum(k) = self.policy {
            if k > remotes.len() {
                return Err(ClusterError::Config("quorum exceeds peer count"));
            }
        }
        let mut peers = Vec::with_capacity(remotes.len());
        for (index, remote) in remotes.into_iter().enumerate() {
            // ndlint: policy(block, reason = "a lagging peer stalls the Tuner's fan-out wave instead of queueing unbounded jobs; failover marks it dead after op_attempts")
            let (tx, rx) = mpsc::sync_channel(PEER_JOB_QUEUE_CAP);
            let addr = remote.peer();
            let thread = std::thread::Builder::new()
                .name(format!("ndpipe-peer-{index}"))
                .spawn(move || worker_main(index, remote, rx))
                .map_err(|_| ClusterError::Config("failed to spawn peer worker thread"))?;
            peers.push(PeerSlot {
                addr,
                tx,
                thread: Some(thread),
            });
        }
        Ok(Cluster {
            peers,
            policy: self.policy,
            op_attempts: self.op_attempts,
            initial_failures,
        })
    }
}

/// The Tuner's handle to a fleet of PipeStores: owns one worker thread
/// per peer and fans control operations out concurrently, so the wall
/// clock of a phase is the slowest peer, not the sum of all peers.
///
/// ```no_run
/// use ndpipe::rpc::{Cluster, FailurePolicy};
/// # fn demo() -> Result<(), ndpipe::rpc::ClusterError> {
/// let cluster = Cluster::builder()
///     .policy(FailurePolicy::Quorum(2))
///     .connect(&["10.0.0.1:7401", "10.0.0.2:7401", "10.0.0.3:7401"])?;
/// let metrics = cluster.scrape_metrics()?;
/// println!("fleet requests: {:?}",
///          metrics.merged.counter_value("ndpipe_rpc_server_requests_total"));
/// cluster.shutdown();
/// # Ok(()) }
/// ```
pub struct Cluster {
    peers: Vec<PeerSlot>,
    policy: FailurePolicy,
    op_attempts: u32,
    initial_failures: Vec<PeerFailure>,
}

impl Cluster {
    /// Entry point: `Cluster::builder().policy(..).connect(&addrs)`.
    pub fn builder() -> ClusterBuilder {
        ClusterBuilder::new()
    }

    /// Number of peers (healthy or not).
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// Whether the cluster has no peers (never true for a built cluster).
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    /// The failure policy rounds run under.
    pub fn policy(&self) -> FailurePolicy {
        self.policy
    }

    /// Peer addresses in index order.
    pub fn peer_addrs(&self) -> Vec<SocketAddr> {
        self.peers.iter().map(|p| p.addr).collect()
    }

    /// Connect-time failures (peers admitted as detached slots under a
    /// quorum policy; their workers reconnect per-operation).
    pub fn initial_failures(&self) -> &[PeerFailure] {
        &self.initial_failures
    }

    /// Fans `op` out to the peers at `indices` and gathers every reply.
    fn fanout_on(&self, indices: &[usize], op: PeerOp) -> Fanout<PeerOk> {
        let op_name = op.name();
        let t0 = Instant::now();
        // Each targeted peer sends exactly one reply per fan-out, so a
        // bound of `indices.len()` means workers never block on `done`.
        // ndlint: policy(block, reason = "capacity equals the reply count, so the blocking case is unreachable by construction")
        let (tx, rx) = mpsc::sync_channel(indices.len().max(1));
        let mut failures = Vec::new();
        for &index in indices {
            match self.peers.get(index) {
                Some(slot) => {
                    let job = Job::Op {
                        op: op.clone(),
                        attempts: self.op_attempts,
                        done: tx.clone(),
                    };
                    if slot.tx.send(job).is_err() {
                        failures.push(PeerFailure {
                            index,
                            peer: slot.addr.to_string(),
                            op: op_name,
                            attempts: 0,
                            error: RpcError::Protocol("peer worker is gone"),
                        });
                    }
                }
                None => failures.push(PeerFailure {
                    index,
                    peer: "<out of range>".to_string(),
                    op: op_name,
                    attempts: 0,
                    error: RpcError::Protocol("peer index out of range"),
                }),
            }
        }
        drop(tx);
        let mut ok = Vec::new();
        for reply in rx {
            match reply.result {
                Ok(value) => ok.push(PeerResult {
                    index: reply.index,
                    peer: reply.peer,
                    value,
                    attempts: reply.attempts,
                    sent_bytes: reply.sent_bytes,
                    recv_bytes: reply.recv_bytes,
                }),
                Err(error) => failures.push(PeerFailure {
                    index: reply.index,
                    peer: reply.peer.to_string(),
                    op: reply.op,
                    attempts: reply.attempts,
                    error,
                }),
            }
        }
        ok.sort_by_key(|r| r.index);
        failures.sort_by_key(|f| f.index);
        let elapsed = t0.elapsed();
        if telemetry::enabled() {
            let m = telemetry::global();
            m.histogram_with(
                "ndpipe_cluster_fanout_seconds",
                &[("op", op_name)],
                "wall time of one cluster-wide fan-out (slowest peer)",
            )
            .observe(elapsed.as_secs_f64());
            if !failures.is_empty() {
                m.counter_with(
                    "ndpipe_cluster_peer_failures_total",
                    &[("op", op_name)],
                    "peer operations that failed after retries",
                )
                .add(failures.len() as u64);
            }
        }
        Fanout {
            ok,
            failures,
            elapsed,
        }
    }

    fn fanout_all(&self, op: PeerOp) -> Fanout<PeerOk> {
        let indices: Vec<usize> = (0..self.peers.len()).collect();
        self.fanout_on(&indices, op)
    }

    /// Re-types a raw fanout, converting unexpected reply shapes into
    /// failures rather than panicking (this file is a no-panic zone).
    fn typed<T>(
        raw: Fanout<PeerOk>,
        op: &'static str,
        mut map: impl FnMut(PeerOk) -> Option<T>,
    ) -> Fanout<T> {
        let mut ok = Vec::with_capacity(raw.ok.len());
        let mut failures = raw.failures;
        for r in raw.ok {
            let (index, peer, attempts, sent, recv) =
                (r.index, r.peer, r.attempts, r.sent_bytes, r.recv_bytes);
            match map(r.value) {
                Some(value) => ok.push(PeerResult {
                    index,
                    peer,
                    value,
                    attempts,
                    sent_bytes: sent,
                    recv_bytes: recv,
                }),
                None => failures.push(PeerFailure {
                    index,
                    peer: peer.to_string(),
                    op,
                    attempts,
                    error: RpcError::Protocol("unexpected reply shape"),
                }),
            }
        }
        failures.sort_by_key(|f| f.index);
        Fanout {
            ok,
            failures,
            elapsed: raw.elapsed,
        }
    }

    /// Installs a model replica on every peer. The model is serialized
    /// once and the bytes shared across workers.
    pub fn install_model(&self, model: &Mlp) -> Fanout<()> {
        let blob: Arc<[u8]> = model.to_bytes().into();
        Self::typed(
            self.fanout_all(PeerOp::InstallModel(blob)),
            "install_model",
            |ok| matches!(ok, PeerOk::Ack).then_some(()),
        )
    }

    /// Extracts features for pipeline run `run` of `n_run` on every peer
    /// concurrently — the fan-out that carries the paper's scaling claim.
    pub fn extract_features(&self, run: u32, n_run: u32) -> Fanout<(Tensor, Vec<usize>)> {
        Self::typed(
            self.fanout_all(PeerOp::ExtractFeatures { run, n_run }),
            "extract_features",
            |ok| match ok {
                PeerOk::Features { features, labels } => Some((features, labels)),
                _ => None,
            },
        )
    }

    /// Runs near-data offline inference on every peer.
    pub fn offline_infer(&self) -> Fanout<Vec<(u64, u32)>> {
        Self::typed(
            self.fanout_all(PeerOp::OfflineInfer),
            "offline_infer",
            |ok| match ok {
                PeerOk::Labels(pairs) => Some(pairs),
                _ => None,
            },
        )
    }

    /// Ships a Check-N-Run delta to every peer (serialized once).
    pub fn apply_delta(&self, delta: &ModelDelta) -> Fanout<()> {
        let blob: Arc<[u8]> = delta.to_bytes().into();
        Self::typed(
            self.fanout_all(PeerOp::ApplyDelta(blob)),
            "apply_delta",
            |ok| matches!(ok, PeerOk::Ack).then_some(()),
        )
    }

    /// Fetches every peer's [`ShardDesc`]: example/class counts plus the
    /// math policy and kernel family its FE paths run under — the
    /// fleet-uniformity audit input (mixing features extracted under
    /// different policies silently degrades fine-tuning).
    pub fn describe(&self) -> Fanout<ShardDesc> {
        Self::typed(
            self.fanout_all(PeerOp::Describe),
            "describe",
            |ok| match ok {
                PeerOk::Shard(desc) => Some(desc),
                _ => None,
            },
        )
    }

    /// Scrapes every peer's telemetry registry concurrently.
    pub fn scrape(&self) -> Fanout<telemetry::Snapshot> {
        Self::typed(self.fanout_all(PeerOp::Scrape), "metrics", |ok| match ok {
            PeerOk::Metrics(snap) => Some(snap),
            _ => None,
        })
    }

    /// Scrapes the fleet and folds the snapshots into a cluster-wide
    /// [`ClusterMetrics`] view, subject to the failure policy.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Rejected`] when too few peers answered.
    pub fn scrape_metrics(&self) -> Result<ClusterMetrics, ClusterError> {
        let fan = self.scrape();
        if !self.policy.admits(fan.ok.len(), fan.failures.len()) {
            return Err(ClusterError::Rejected {
                policy: self.policy,
                ok: fan.ok.len(),
                failures: fan.failures,
            });
        }
        let per_peer: Vec<(SocketAddr, telemetry::Snapshot)> =
            fan.ok.into_iter().map(|r| (r.peer, r.value)).collect();
        let merged = telemetry::Snapshot::merged(per_peer.iter().map(|(_, s)| s));
        Ok(ClusterMetrics { per_peer, merged })
    }

    /// Fetches the placement map every peer currently holds (peers with
    /// no map installed report a failure).
    pub fn placement(&self) -> Fanout<PlacementMap> {
        Self::typed(
            self.fanout_all(PeerOp::Placement),
            "placement",
            |ok| match ok {
                PeerOk::Placement(map) => Some(map),
                _ => None,
            },
        )
    }

    /// Publishes `map` cluster-wide. Peers holding a newer epoch reject
    /// the install (reported as per-peer failures); equal epochs are
    /// idempotent acks. The map is serialized once and shared.
    pub fn publish_placement(&self, map: &PlacementMap) -> Fanout<()> {
        let shared = Arc::new(map.clone());
        Self::typed(
            self.fanout_all(PeerOp::InstallPlacement(shared)),
            "install_placement",
            |ok| matches!(ok, PeerOk::Ack).then_some(()),
        )
    }

    /// Replicated write: stores `rec` on every live replica `map`
    /// assigns its photo id. Peer index `i` is placement node `i`.
    pub fn put_photo(&self, map: &PlacementMap, rec: &PhotoRecord) -> Fanout<()> {
        let indices: Vec<usize> = map
            .replicas_for(rec.id)
            .into_iter()
            .map(|n| n as usize)
            .collect();
        let shared = Arc::new(rec.clone());
        Self::typed(
            self.fanout_on(&indices, PeerOp::PutPhoto(shared)),
            "put_photo",
            |ok| matches!(ok, PeerOk::Ack).then_some(()),
        )
    }

    /// Read with failover: tries the replicas `map` ranks for `id` in
    /// order and returns the first copy that answers. Every replica
    /// skipped on the way counts into `ndpipe_shard_reroutes_total`.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Config`] when the map ranks no live replica,
    /// [`ClusterError::Rejected`] when every ranked replica failed.
    pub fn get_photo(&self, map: &PlacementMap, id: u64) -> Result<PhotoRecord, ClusterError> {
        let replicas = map.replicas_for(id);
        if replicas.is_empty() {
            return Err(ClusterError::Config("placement map ranks no live replica"));
        }
        let mut failures = Vec::new();
        for (rank, &node) in replicas.iter().enumerate() {
            let fan = self.fanout_on(&[node as usize], PeerOp::GetPhoto(id));
            failures.extend(fan.failures);
            for r in fan.ok {
                match r.value {
                    PeerOk::Photo(rec) => {
                        count_reroutes(rank as u64);
                        return Ok(rec);
                    }
                    _ => failures.push(PeerFailure {
                        index: r.index,
                        peer: r.peer.to_string(),
                        op: "get_photo",
                        attempts: r.attempts,
                        error: RpcError::Protocol("unexpected reply shape"),
                    }),
                }
            }
        }
        Err(self.reject(0, failures))
    }

    /// Lists the photo ids each peer holds (its own shard plus any
    /// replicas parked on it).
    pub fn list_photos(&self) -> Fanout<Vec<u64>> {
        Self::typed(
            self.fanout_all(PeerOp::ListPhotos),
            "list_photos",
            |ok| match ok {
                PeerOk::PhotoIds(ids) => Some(ids),
                _ => None,
            },
        )
    }

    /// Self-healing sweep after a membership change: publishes `new`
    /// cluster-wide, then copies exactly the photos whose replica set
    /// differs between `old` and `new` onto the replicas that lack
    /// them, in bounded-rate waves. Payload bytes land in
    /// `ndpipe_rebalance_bytes_total`.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Rejected`] when publishing the map or listing
    /// current holders falls below the failure policy; per-photo copy
    /// failures are reported in the returned report instead.
    pub fn rebalance(
        &self,
        old: &PlacementMap,
        new: &PlacementMap,
        config: &RebalanceConfig,
    ) -> Result<RebalanceReport, ClusterError> {
        let t0 = Instant::now();
        let mut report = RebalanceReport::default();

        // Publish first: reads and writes flip to the new epoch
        // immediately, and the copy loop below backfills under it.
        let fan = self.publish_placement(new);
        let published = fan.ok.len();
        report.failures.extend(fan.failures);
        if !self.policy.admits(published, report.failures.len()) {
            return Err(self.reject(published, report.failures));
        }

        // Who holds what right now (ground truth beats the old map:
        // a crashed-and-wiped peer shows up empty here).
        let fan = self.list_photos();
        let listed = fan.ok.len();
        let mut holders: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        for r in fan.ok {
            for id in r.value {
                holders.entry(id).or_default().push(r.index);
            }
        }
        report.failures.extend(fan.failures);
        if !self.policy.admits(listed, report.failures.len()) {
            return Err(self.reject(listed, report.failures));
        }

        let mut wave_bytes = 0u64;
        for (&id, holding) in &holders {
            if !PlacementMap::replica_set_changed(old, new, id) {
                continue;
            }
            let missing: Vec<usize> = new
                .replicas_for(id)
                .into_iter()
                .map(|n| n as usize)
                .filter(|i| !holding.contains(i))
                .collect();
            if missing.is_empty() {
                continue;
            }
            // Fetch one copy from any current holder.
            let mut rec = None;
            for &h in holding {
                let fan = self.fanout_on(&[h], PeerOp::GetPhoto(id));
                report.failures.extend(fan.failures);
                if let Some(r) = fan.ok.into_iter().next() {
                    if let PeerOk::Photo(p) = r.value {
                        rec = Some(p);
                        break;
                    }
                }
            }
            let Some(rec) = rec else {
                // Every holder refused; the photo keeps its old copies.
                continue;
            };
            let copy_bytes = rec.transfer_bytes() as u64;
            let shared = Arc::new(rec);
            let fan = self.fanout_on(&missing, PeerOp::PutPhoto(shared));
            let stored = fan.ok.len() as u64;
            report.failures.extend(fan.failures);
            if stored == 0 {
                continue;
            }
            report.photos_copied += 1;
            let shipped = copy_bytes * stored;
            report.bytes_copied += shipped;
            wave_bytes += shipped;
            if wave_bytes >= config.max_bytes_per_wave {
                report.waves += 1;
                wave_bytes = 0;
                if !config.wave_pause.is_zero() {
                    std::thread::sleep(config.wave_pause);
                }
            }
        }
        if wave_bytes > 0 || report.photos_copied == 0 {
            report.waves += 1;
        }
        if telemetry::enabled() && report.bytes_copied > 0 {
            telemetry::global()
                .counter(
                    "ndpipe_rebalance_bytes_total",
                    "payload bytes copied to backfilling replicas by rebalance sweeps",
                )
                .add(report.bytes_copied);
        }
        report.elapsed = t0.elapsed();
        Ok(report)
    }

    /// Runs one FT-DMP fine-tuning round across the cluster: describe &
    /// validate, distribute the master model, extract features per
    /// pipeline run **in parallel across peers**, train the classifier
    /// tail locally, and redistribute the result as a Check-N-Run delta.
    ///
    /// Peers that fail a phase are excluded from the rest of the round;
    /// the [`FailurePolicy`] decides after each phase whether the
    /// survivors suffice. `feature_bytes`/`distribution_bytes` in the
    /// report are actual wire bytes.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Config`] for a zero-run config,
    /// [`ClusterError::Rejected`] when the policy gives up on the round.
    pub fn ftdmp_fine_tune<R: Rng + ?Sized>(
        &self,
        tuner: &mut Tuner,
        config: &FtdmpConfig,
        rng: &mut R,
    ) -> Result<ClusterFtdmpReport, ClusterError> {
        self.ftdmp_fine_tune_with(tuner, config, rng, None)
    }

    /// Like [`Cluster::ftdmp_fine_tune`], but placement-aware: when a
    /// peer dies mid-sweep, its shard assignment is rerouted to a
    /// surviving replica (per [`PlacementMap::shard_holders`]) for the
    /// remaining runs, so the sweep still trains on every shard a dead
    /// peer was supposed to serve. Reroutes are counted in the report
    /// and in `ndpipe_shard_reroutes_total`.
    ///
    /// # Errors
    ///
    /// Same as [`Cluster::ftdmp_fine_tune`].
    pub fn ftdmp_fine_tune_with<R: Rng + ?Sized>(
        &self,
        tuner: &mut Tuner,
        config: &FtdmpConfig,
        rng: &mut R,
        placement: Option<&PlacementMap>,
    ) -> Result<ClusterFtdmpReport, ClusterError> {
        if self.peers.is_empty() {
            return Err(ClusterError::NoPeers);
        }
        if config.n_run == 0 {
            return Err(ClusterError::Config("need at least one run"));
        }
        let phase_hist = |phase: &str| {
            telemetry::global().histogram_with(
                "ndpipe_ftdmp_remote_phase_seconds",
                &[("phase", phase)],
                "wall time of one remote FT-DMP phase",
            )
        };
        let record = telemetry::enabled();
        let mut failures: Vec<PeerFailure> = Vec::new();
        let mut live: Vec<usize> = (0..self.peers.len()).collect();

        // 0. Sanity-check label spaces before shipping anything; an
        // incompatible shard is a peer failure, not a panic. Shards
        // that fail *validation* (as opposed to transport) are recorded
        // so the reroute path below never trains on them either.
        let mut unfit: Vec<usize> = Vec::new();
        let fan = self.fanout_on(&live, PeerOp::Describe);
        failures.extend(fan.failures);
        live.clear();
        for r in fan.ok {
            let (examples, classes) = match r.value {
                PeerOk::Shard(desc) => (desc.examples, desc.classes),
                _ => (0, u32::MAX),
            };
            if examples < config.n_run as u64 {
                unfit.push(r.index);
                failures.push(PeerFailure {
                    index: r.index,
                    peer: r.peer.to_string(),
                    op: "describe",
                    attempts: r.attempts,
                    error: RpcError::Remote {
                        peer: r.peer.to_string(),
                        op: "describe",
                        msg: "shard smaller than N_run".to_string(),
                    },
                });
            } else if classes as usize > tuner.model().num_classes() {
                unfit.push(r.index);
                failures.push(PeerFailure {
                    index: r.index,
                    peer: r.peer.to_string(),
                    op: "describe",
                    attempts: r.attempts,
                    error: RpcError::Remote {
                        peer: r.peer.to_string(),
                        op: "describe",
                        msg: "shard has wider label space than the model".to_string(),
                    },
                });
            } else {
                live.push(r.index);
            }
        }
        self.admit(&live, failures.len())
            .map_err(|()| self.reject(live.len(), std::mem::take(&mut failures)))?;

        // 1. Distribute the current master model (serialized once).
        let timer = record.then(|| phase_hist("distribute").start_timer());
        let model_before = tuner.model().clone();
        let blob: Arc<[u8]> = model_before.to_bytes().into();
        let fan = self.fanout_on(&live, PeerOp::InstallModel(blob));
        live = fan.ok.iter().map(|r| r.index).collect();
        failures.extend(fan.failures);
        if let Some(t) = timer {
            t.observe_and_disarm();
        }
        self.admit(&live, failures.len())
            .map_err(|()| self.reject(live.len(), std::mem::take(&mut failures)))?;

        // 2. Pipeline runs: gather features in parallel, tune locally.
        // Shard assignments are fixed at sweep start and, when a
        // placement map is supplied, come from the *map*, not from the
        // live set: a peer that is dead (at start or mid-sweep) stops
        // being a transport, but its shard still has to be trained on —
        // a surviving replica serves it instead.
        let assignments: Vec<usize> = match placement {
            Some(map) => map
                .nodes()
                .iter()
                .map(|n| n.id as usize)
                .filter(|i| !unfit.contains(i))
                .collect(),
            None => live.clone(),
        };
        let mut reroutes = 0u64;
        let mut run_losses = Vec::with_capacity(config.n_run);
        let mut feature_bytes = 0usize;
        let mut examples = 0usize;
        for run in 0..config.n_run {
            let timer = record.then(|| phase_hist("extract").start_timer());
            let fan = self.fanout_on(
                &live,
                PeerOp::ExtractFeatures {
                    run: run as u32,
                    n_run: config.n_run as u32,
                },
            );
            if let Some(t) = timer {
                t.observe_and_disarm();
            }
            failures.extend(fan.failures);
            live.clear();
            // Rows are keyed by *assignment* node, so the splice below
            // is deterministic regardless of who actually served them.
            let mut per_node: BTreeMap<usize, (Tensor, Vec<usize>)> = BTreeMap::new();
            for r in fan.ok {
                if let PeerOk::Features {
                    features,
                    labels: l,
                } = r.value
                {
                    feature_bytes += r.recv_bytes as usize;
                    per_node.insert(r.index, (features, l));
                    live.push(r.index);
                }
            }
            if let Some(map) = placement {
                for &a in &assignments {
                    if per_node.contains_key(&a) {
                        continue;
                    }
                    let mut served = false;
                    for holder in map.shard_holders(a as u64) {
                        let h = holder as usize;
                        if h == a || !live.contains(&h) {
                            continue;
                        }
                        let fan = self.fanout_on(
                            &[h],
                            PeerOp::ExtractFeaturesFor {
                                node: a as u64,
                                run: run as u32,
                                n_run: config.n_run as u32,
                            },
                        );
                        failures.extend(fan.failures);
                        for r in fan.ok {
                            if let PeerOk::Features {
                                features,
                                labels: l,
                            } = r.value
                            {
                                feature_bytes += r.recv_bytes as usize;
                                per_node.insert(a, (features, l));
                                served = true;
                            }
                        }
                        if served {
                            reroutes += 1;
                            count_reroutes(1);
                            break;
                        }
                    }
                    if !served {
                        let peer = match self.peers.get(a) {
                            Some(slot) => slot.addr.to_string(),
                            None => "<out of range>".to_string(),
                        };
                        failures.push(PeerFailure {
                            index: a,
                            peer,
                            op: "extract_features_for",
                            attempts: 0,
                            error: RpcError::Protocol("no surviving replica for shard"),
                        });
                    }
                }
            }
            self.admit(&live, failures.len())
                .map_err(|()| self.reject(live.len(), std::mem::take(&mut failures)))?;
            let mut rows = Vec::new();
            let mut labels = Vec::new();
            for (features, l) in per_node.into_values() {
                for i in 0..l.len() {
                    rows.push(features.row(i));
                }
                labels.extend(l);
            }
            examples += labels.len();
            let features = Tensor::stack_rows(&rows);
            let timer = record.then(|| phase_hist("train").start_timer());
            let loss = tuner.train_on_features(&features, &labels, config.epochs_per_run, rng);
            if let Some(t) = timer {
                t.observe_and_disarm();
            }
            run_losses.push(loss);
        }

        // 3. Redistribute as deltas (serialized once, fanned out).
        let timer = record.then(|| phase_hist("redistribute").start_timer());
        let delta = tuner.delta_from(&model_before);
        let blob: Arc<[u8]> = delta.to_bytes().into();
        let fan = self.fanout_on(&live, PeerOp::ApplyDelta(blob));
        let distribution_bytes: usize = fan.ok.iter().map(|r| r.sent_bytes as usize).sum();
        live = fan.ok.iter().map(|r| r.index).collect();
        failures.extend(fan.failures);
        if let Some(t) = timer {
            t.observe_and_disarm();
        }
        self.admit(&live, failures.len())
            .map_err(|()| self.reject(live.len(), std::mem::take(&mut failures)))?;
        if record {
            telemetry::global()
                .counter(
                    "ndpipe_ftdmp_remote_rounds_total",
                    "completed remote FT-DMP fine-tuning rounds",
                )
                .inc();
        }

        Ok(ClusterFtdmpReport {
            report: FtdmpReport {
                run_losses,
                feature_bytes,
                distribution_bytes,
                distribution_reduction: delta.traffic_reduction(),
                examples,
                schedule: ScheduleStats::default(),
            },
            failures,
            peers_used: live,
            reroutes,
        })
    }


    /// The pipelined FT-DMP schedule: `rounds` back-to-back fine-tuning
    /// rounds where extraction streams Store→Tuner as micro-batches
    /// ([`PeerOp::ExtractSlice`]) under a bounded-staleness window,
    /// idle peers steal a straggler's remaining micro-batches through
    /// the placement map, and each round's Check-N-Run delta
    /// distribution overlaps the next round's extraction (safe because
    /// features depend only on the *frozen* prefix, which deltas never
    /// touch).
    ///
    /// Scheduling rules:
    ///
    /// - Global run `g` (`round * n_run + r`) may be *extracted* only
    ///   while `g ≤ trained + S` where `S` is
    ///   [`FtdmpConfig::staleness`]. `S = 0` reproduces the
    ///   run-at-a-time schedule of [`Cluster::ftdmp_fine_tune_with`]
    ///   bit-for-bit (and waits for delta acks at round boundaries);
    ///   `S ≥ 1` lets extraction and delta distribution run ahead.
    /// - Every peer serves its own shard first; once its queue drains
    ///   it steals the deepest backlog among nodes whose shard it holds
    ///   (its own id, or a replica per
    ///   [`PlacementMap::shard_holders`]). A steal from a *live* owner
    ///   counts in `schedule.steals`; standing in for a dead owner
    ///   counts in `reroutes`.
    /// - Features gather per run keyed by `(node, micro-batch)`, so
    ///   training order is deterministic no matter who served what.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Ftdmp`] for an invalid job,
    /// [`ClusterError::Rejected`] when the [`FailurePolicy`] gives up.
    pub fn ftdmp_fine_tune_pipelined<R: Rng + ?Sized>(
        &self,
        tuner: &mut Tuner,
        config: &FtdmpConfig,
        rounds: usize,
        rng: &mut R,
        placement: Option<&PlacementMap>,
    ) -> Result<ClusterFtdmpReport, ClusterError> {
        /// Extraction ops each peer keeps in flight: enough to hide the
        /// round-trip, small enough that a steal can rebalance the tail.
        const MAX_INFLIGHT: usize = 2;

        if self.peers.is_empty() {
            return Err(ClusterError::NoPeers);
        }
        if config.n_run == 0 {
            return Err(ClusterError::Ftdmp(FtdmpError::ZeroRuns));
        }
        if rounds == 0 {
            return Err(ClusterError::Config("need at least one round"));
        }
        let record = telemetry::enabled();
        let mut failures: Vec<PeerFailure> = Vec::new();
        let mut live: Vec<usize> = (0..self.peers.len()).collect();

        // 0. Describe every reachable peer; validate label spaces and
        // shard depths up front (an incompatible shard is a recorded
        // failure, not a panic).
        let mut shard_len: BTreeMap<usize, usize> = BTreeMap::new();
        let mut unfit: Vec<usize> = Vec::new();
        let fan = self.fanout_on(&live, PeerOp::Describe);
        failures.extend(fan.failures);
        live.clear();
        for r in fan.ok {
            let (examples, classes) = match r.value {
                PeerOk::Shard(desc) => (desc.examples, desc.classes),
                _ => (0, u32::MAX),
            };
            let verdict = if examples < config.n_run as u64 {
                Err(FtdmpError::ShardTooSmall {
                    store: r.index,
                    shard_len: examples as usize,
                    n_run: config.n_run,
                })
            } else if classes as usize > tuner.model().num_classes() {
                Err(FtdmpError::ClassOverflow {
                    store: r.index,
                    shard_classes: classes as usize,
                    model_classes: tuner.model().num_classes(),
                })
            } else {
                Ok(())
            };
            match verdict {
                Ok(()) => {
                    shard_len.insert(r.index, examples as usize);
                    live.push(r.index);
                }
                Err(e) => {
                    unfit.push(r.index);
                    failures.push(PeerFailure {
                        index: r.index,
                        peer: r.peer.to_string(),
                        op: "describe",
                        attempts: r.attempts,
                        error: RpcError::Remote {
                            peer: r.peer.to_string(),
                            op: "describe",
                            msg: e.to_string(),
                        },
                    });
                }
            }
        }
        self.admit(&live, failures.len())
            .map_err(|()| self.reject(live.len(), std::mem::take(&mut failures)))?;

        // 1. Distribute the current master model (serialized once).
        let model_before = tuner.model().clone();
        let blob: Arc<[u8]> = model_before.to_bytes().into();
        let fan = self.fanout_on(&live, PeerOp::InstallModel(blob));
        live = fan.ok.iter().map(|r| r.index).collect();
        failures.extend(fan.failures);
        self.admit(&live, failures.len())
            .map_err(|()| self.reject(live.len(), std::mem::take(&mut failures)))?;

        // Shard assignments come from the placement map when supplied
        // (a dead node's shard is still trained on, via a replica);
        // otherwise every live peer serves exactly its own shard.
        let assignments: Vec<usize> = match placement {
            Some(map) => map
                .nodes()
                .iter()
                .map(|n| n.id as usize)
                .filter(|i| !unfit.contains(i))
                .collect(),
            None => live.clone(),
        };
        // Size shards the Describe fan-out could not reach (nodes dead
        // at connect) through a surviving holder's replica.
        for &a in &assignments {
            if shard_len.contains_key(&a) {
                continue;
            }
            let Some(map) = placement else { continue };
            for holder in map.shard_holders(a as u64) {
                let h = holder as usize;
                if h == a || !live.contains(&h) {
                    continue;
                }
                let fan = self.fanout_on(&[h], PeerOp::DescribeNode(a as u64));
                let mut found = false;
                for r in fan.ok {
                    if let PeerOk::Shard(desc) = r.value {
                        if desc.examples as usize >= config.n_run {
                            shard_len.insert(a, desc.examples as usize);
                            found = true;
                        }
                    }
                }
                if found {
                    break;
                }
            }
        }
        let assignments: Vec<usize> = assignments
            .into_iter()
            .filter(|a| shard_len.contains_key(a))
            .collect();
        if assignments.is_empty() {
            return Err(ClusterError::Ftdmp(FtdmpError::NoStores));
        }

        // 2. Build the global task table: `rounds * n_run` runs, every
        // run slice of every assigned node split into contiguous
        // micro-batches.
        #[derive(Clone, Copy)]
        struct SliceTask {
            node: usize,
            g: usize,
            mb: usize,
            n_mb: usize,
        }
        impl SliceKey for SliceTask {
            fn node(&self) -> usize {
                self.node
            }
            fn key(&self) -> (usize, usize) {
                (self.g, self.mb)
            }
        }
        let n_run = config.n_run;
        let total_runs = rounds * n_run;
        let mut queues: BTreeMap<usize, VecDeque<SliceTask>> = BTreeMap::new();
        let mut remaining = vec![0usize; total_runs];
        let mut micro_batches = 0usize;
        for &a in &assignments {
            let Some(&n) = shard_len.get(&a) else { continue };
            let mut q = VecDeque::new();
            for (g, rem) in remaining.iter_mut().enumerate() {
                let r = g % n_run;
                let lo = r * n / n_run;
                let hi = (r + 1) * n / n_run;
                let n_mb = config.micro_batches_for(hi - lo);
                for mb in 0..n_mb {
                    q.push_back(SliceTask { node: a, g, mb, n_mb });
                }
                *rem += n_mb;
                micro_batches += n_mb;
            }
            queues.insert(a, q);
        }

        // One shared reply lane for every streaming extract; capacity
        // covers the dispatch window, so workers never block on it.
        let lane_cap = self.peers.len().max(1) * MAX_INFLIGHT;
        // ndlint: policy(block, reason = "capacity equals peers times the per-peer in-flight cap, the most extract jobs the dispatch window allows, so the blocking case is unreachable by construction")
        let (ext_tx, ext_rx) = mpsc::sync_channel::<WorkerReply>(lane_cap);
        // Per-peer FIFO of dispatched tasks: each peer worker answers
        // its job queue in order, so the front entry always matches the
        // next reply from that peer.
        let mut in_flight: Vec<VecDeque<SliceTask>> =
            (0..self.peers.len()).map(|_| VecDeque::new()).collect();
        let mut pending_acks: Vec<(mpsc::Receiver<WorkerReply>, f64)> = Vec::new();

        let can_serve = |peer: usize, node: usize| -> bool {
            peer == node
                || placement
                    .map(|m| m.shard_holders(node as u64).iter().any(|&h| h as usize == peer))
                    .unwrap_or(false)
        };

        let mut run_losses = Vec::with_capacity(total_runs);
        let mut feature_bytes = 0usize;
        let mut distribution_bytes = 0usize;
        let mut examples = 0usize;
        let mut steals = 0usize;
        let mut stale_steps = 0usize;
        let mut bubble_secs = 0.0f64;
        let mut reroutes = 0u64;
        let mut trained = 0usize;
        let mut slots: Vec<BTreeMap<(usize, usize), (Tensor, Vec<usize>)>> =
            vec![BTreeMap::new(); total_runs];
        let mut round_base = model_before;
        let mut round_base_version = tuner.version();
        let mut last_reduction = 1.0f64;
        let staleness = config.staleness;

        // Collects every outstanding delta ack, folding failures in.
        let collect_acks = |pending: &mut Vec<(mpsc::Receiver<WorkerReply>, f64)>,
                            live: &mut Vec<usize>,
                            failures: &mut Vec<PeerFailure>,
                            distribution_bytes: &mut usize| {
            for (rx, _) in pending.drain(..) {
                for reply in rx {
                    match reply.result {
                        Ok(_) => *distribution_bytes += reply.sent_bytes as usize,
                        Err(error) => {
                            live.retain(|&p| p != reply.index);
                            failures.push(PeerFailure {
                                index: reply.index,
                                peer: reply.peer.to_string(),
                                op: reply.op,
                                attempts: reply.attempts,
                                error,
                            });
                        }
                    }
                }
            }
        };

        for g in 0..total_runs {
            let t0 = Instant::now();
            while remaining.get(g).is_some_and(|&r| r > 0) {
                // Dispatch phase: fill every live peer's window with
                // eligible work — own queue first, then steal the
                // deepest backlog it holds a replica of.
                let mut progressed = true;
                while progressed {
                    progressed = false;
                    for p in live.clone() {
                        let Some(window) = in_flight.get(p) else { continue };
                        if window.len() >= MAX_INFLIGHT {
                            continue;
                        }
                        let eligible = |q: &VecDeque<SliceTask>| {
                            q.front().is_some_and(|t| t.g <= trained + staleness)
                        };
                        // Own shard first; otherwise steal.
                        let mut source = match queues.get(&p) {
                            Some(q) if eligible(q) => Some((p, false)),
                            _ => None,
                        };
                        if source.is_none() {
                            let mut best_len = 0;
                            for (&node, q) in &queues {
                                if node != p
                                    && q.len() > best_len
                                    && eligible(q)
                                    && can_serve(p, node)
                                {
                                    best_len = q.len();
                                    source = Some((node, true));
                                }
                            }
                        }
                        let Some((node, stolen)) = source else { continue };
                        let Some(task) = queues.get_mut(&node).and_then(VecDeque::pop_front)
                        else {
                            continue;
                        };
                        if stolen {
                            if live.contains(&node) {
                                steals += 1;
                            } else {
                                reroutes += 1;
                                count_reroutes(1);
                            }
                        }
                        if task.g > trained {
                            stale_steps += 1;
                        }
                        let job = Job::Op {
                            op: PeerOp::ExtractSlice {
                                node: task.node as u64,
                                run: (task.g % n_run) as u32,
                                n_run: n_run as u32,
                                mb: task.mb as u32,
                                n_mb: task.n_mb as u32,
                            },
                            attempts: self.op_attempts,
                            done: ext_tx.clone(),
                        };
                        let sent = self
                            .peers
                            .get(p)
                            .is_some_and(|slot| slot.tx.send(job).is_ok());
                        if sent {
                            if let Some(w) = in_flight.get_mut(p) {
                                w.push_back(task);
                            }
                            progressed = true;
                        } else {
                            // Worker gone: treat like a transport death.
                            live.retain(|&q| q != p);
                            failures.push(PeerFailure {
                                index: p,
                                peer: self
                                    .peers
                                    .get(p)
                                    .map(|s| s.addr.to_string())
                                    .unwrap_or_else(|| "<out of range>".to_string()),
                                op: "extract_slice",
                                attempts: 0,
                                error: RpcError::Protocol("peer worker is gone"),
                            });
                            if let Some(q) = queues.get_mut(&node) {
                                q.push_front(task);
                            }
                        }
                    }
                }

                // Nodes no live peer can serve: drop their queued work
                // (completed and in-flight micro-batches still train).
                let orphaned: Vec<usize> = queues
                    .iter()
                    .filter(|(_, q)| !q.is_empty())
                    .map(|(&node, _)| node)
                    .filter(|&node| !live.iter().any(|&p| can_serve(p, node)))
                    .collect();
                for node in orphaned {
                    if let Some(q) = queues.remove(&node) {
                        for t in &q {
                            if let Some(r) = remaining.get_mut(t.g) {
                                *r = r.saturating_sub(1);
                            }
                        }
                        failures.push(PeerFailure {
                            index: node,
                            peer: self
                                .peers
                                .get(node)
                                .map(|s| s.addr.to_string())
                                .unwrap_or_else(|| "<out of range>".to_string()),
                            op: "extract_slice",
                            attempts: 0,
                            error: RpcError::Protocol("no surviving replica for shard"),
                        });
                    }
                }
                self.admit(&live, failures.len())
                    .map_err(|()| self.reject(live.len(), std::mem::take(&mut failures)))?;
                if remaining.get(g).copied().unwrap_or(0) == 0 {
                    break;
                }

                // Gather phase: block on one extract reply.
                let Ok(reply) = ext_rx.recv() else {
                    return Err(ClusterError::Config("extract reply lane closed"));
                };
                let Some(task) = in_flight
                    .get_mut(reply.index)
                    .and_then(VecDeque::pop_front)
                else {
                    return Err(ClusterError::Config("unmatched extract reply"));
                };
                match reply.result {
                    Ok(PeerOk::Features { features, labels }) => {
                        feature_bytes += reply.recv_bytes as usize;
                        if let Some(slot) = slots.get_mut(task.g) {
                            slot.insert((task.node, task.mb), (features, labels));
                        }
                        if let Some(r) = remaining.get_mut(task.g) {
                            *r = r.saturating_sub(1);
                        }
                    }
                    Ok(_) => {
                        // Shape violation: count the peer out.
                        live.retain(|&p| p != reply.index);
                        failures.push(PeerFailure {
                            index: reply.index,
                            peer: reply.peer.to_string(),
                            op: reply.op,
                            attempts: reply.attempts,
                            error: RpcError::Protocol("unexpected reply shape"),
                        });
                        requeue(&mut queues, task);
                    }
                    Err(error) => {
                        live.retain(|&p| p != reply.index);
                        failures.push(PeerFailure {
                            index: reply.index,
                            peer: reply.peer.to_string(),
                            op: reply.op,
                            attempts: reply.attempts,
                            error,
                        });
                        requeue(&mut queues, task);
                    }
                }
                self.admit(&live, failures.len())
                    .map_err(|()| self.reject(live.len(), std::mem::take(&mut failures)))?;
            }
            bubble_secs += t0.elapsed().as_secs_f64();

            // Train run g: splice features in (node, micro-batch) order.
            let mut rows = Vec::new();
            let mut labels = Vec::new();
            let gathered = slots.get_mut(g).map(std::mem::take).unwrap_or_default();
            for (features, l) in gathered.into_values() {
                for i in 0..l.len() {
                    rows.push(features.row(i));
                }
                labels.extend(l);
            }
            if rows.is_empty() {
                return Err(ClusterError::Config("no features survived for a run"));
            }
            examples += labels.len();
            let features = Tensor::stack_rows(&rows);
            let loss = tuner.train_on_features(&features, &labels, config.epochs_per_run, rng);
            run_losses.push(loss);
            trained = g + 1;

            // Round boundary: distribute the delta. With S = 0 the
            // schedule waits for every ack (the oracle's barrier);
            // otherwise acks gather lazily while the next round's
            // extraction is already in flight.
            if trained % n_run == 0 {
                let delta = tuner
                    .delta_from(&round_base)
                    .with_versions(round_base_version, tuner.version());
                last_reduction = delta.traffic_reduction();
                round_base = tuner.model().clone();
                round_base_version = tuner.version();
                let blob: Arc<[u8]> = delta.to_bytes().into();
                // Each targeted peer sends exactly one ack per round, so
                // a bound of `live.len()` means workers never block.
                // ndlint: policy(block, reason = "capacity equals the reply count, so the blocking case is unreachable by construction")
                let (dtx, drx) = mpsc::sync_channel::<WorkerReply>(live.len().max(1));
                for &p in &live {
                    let job = Job::Op {
                        op: PeerOp::ApplyDelta(blob.clone()),
                        attempts: self.op_attempts,
                        done: dtx.clone(),
                    };
                    if let Some(slot) = self.peers.get(p) {
                        let _ = slot.tx.send(job);
                    }
                }
                drop(dtx);
                pending_acks.push((drx, last_reduction));
                if staleness == 0 {
                    collect_acks(
                        &mut pending_acks,
                        &mut live,
                        &mut failures,
                        &mut distribution_bytes,
                    );
                    self.admit(&live, failures.len())
                        .map_err(|()| self.reject(live.len(), std::mem::take(&mut failures)))?;
                }
            }
        }

        // Settle the overlapped delta acks from the tail rounds.
        collect_acks(
            &mut pending_acks,
            &mut live,
            &mut failures,
            &mut distribution_bytes,
        );
        self.admit(&live, failures.len())
            .map_err(|()| self.reject(live.len(), std::mem::take(&mut failures)))?;

        let schedule = ScheduleStats {
            micro_batches,
            steals,
            stale_steps,
            bubble_secs,
        };
        if record {
            let m = telemetry::global();
            m.counter(
                "ndpipe_ftdmp_remote_rounds_total",
                "completed remote FT-DMP fine-tuning rounds",
            )
            .add(rounds as u64);
            m.counter(
                "ndpipe_ftdmp_steals_total",
                "FT-DMP micro-batches re-extracted away from their home store",
            )
            .add(steals as u64);
            m.counter(
                "ndpipe_ftdmp_stale_steps_total",
                "FT-DMP micro-batches extracted ahead of the Tuner's training run",
            )
            .add(stale_steps as u64);
            m.histogram(
                "ndpipe_ftdmp_bubble_seconds",
                "seconds the Tuner idled waiting for a run's features",
            )
            .observe(bubble_secs);
        }

        Ok(ClusterFtdmpReport {
            report: FtdmpReport {
                run_losses,
                feature_bytes,
                distribution_bytes,
                distribution_reduction: last_reduction,
                examples,
                schedule,
            },
            failures,
            peers_used: live,
            reroutes,
        })
    }


    fn admit(&self, live: &[usize], failed: usize) -> Result<(), ()> {
        if self.policy.admits(live.len(), failed) {
            Ok(())
        } else {
            Err(())
        }
    }

    fn reject(&self, ok: usize, failures: Vec<PeerFailure>) -> ClusterError {
        ClusterError::Rejected {
            policy: self.policy,
            ok,
            failures,
        }
    }

    /// Ends every peer session cleanly, then stops and joins the worker
    /// threads. Per-peer shutdown failures are reported, not fatal.
    pub fn shutdown(mut self) -> Fanout<()> {
        let indices: Vec<usize> = (0..self.peers.len()).collect();
        let fan = Self::typed(
            self.fanout_on(&indices, PeerOp::EndSession),
            "shutdown",
            |ok| matches!(ok, PeerOk::Ack).then_some(()),
        );
        self.stop_and_join();
        fan
    }

    /// Stops the workers and returns the underlying per-peer handles in
    /// index order (sessions intact), e.g. for direct per-peer calls
    /// after the fan-out phase of a round is done.
    pub fn into_remotes(mut self) -> Vec<RemotePipeStore> {
        self.stop_and_join()
    }

    fn stop_and_join(&mut self) -> Vec<RemotePipeStore> {
        for slot in &self.peers {
            let _ = slot.tx.send(Job::Stop);
        }
        let mut out = Vec::with_capacity(self.peers.len());
        for slot in self.peers.iter_mut() {
            if let Some(thread) = slot.thread.take() {
                if let Ok(remote) = thread.join() {
                    out.push(remote);
                }
            }
        }
        out
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        // Best-effort: unblock workers; shutdown()/into_remotes() join.
        for slot in &self.peers {
            let _ = slot.tx.send(Job::Stop);
        }
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("peers", &self.peer_addrs())
            .field("policy", &self.policy)
            .field("op_attempts", &self.op_attempts)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_admission_rules() {
        assert!(FailurePolicy::Strict.admits(3, 0));
        assert!(!FailurePolicy::Strict.admits(3, 1));
        assert!(FailurePolicy::Quorum(2).admits(2, 1));
        assert!(!FailurePolicy::Quorum(2).admits(1, 2));
        assert!(FailurePolicy::Quorum(0).admits(0, 5));
    }

    #[test]
    fn empty_cluster_is_rejected() {
        let addrs: [&str; 0] = [];
        assert!(matches!(
            Cluster::builder().connect(&addrs),
            Err(ClusterError::NoPeers)
        ));
        assert!(matches!(
            Cluster::builder().adopt(Vec::new()),
            Err(ClusterError::NoPeers)
        ));
    }

    #[test]
    fn strict_connect_to_dead_peers_fails_with_peer_failures() {
        let opts = ConnectOptions::new()
            .retries(1)
            .backoff(Duration::from_millis(1), Duration::from_millis(1));
        let err = Cluster::builder()
            .connect_options(opts)
            .connect(&["127.0.0.1:1", "127.0.0.1:1"])
            .err()
            .expect("dead peers must not connect");
        match err {
            ClusterError::Rejected { ok, failures, .. } => {
                assert_eq!(ok, 0);
                assert_eq!(failures.len(), 2);
                assert!(failures
                    .iter()
                    .all(|f| matches!(f.error, RpcError::PeerUnavailable { .. })));
            }
            other => panic!("expected Rejected, got {other:?}"),
        }
    }

    #[test]
    fn quorum_zero_admits_all_dead_peers_as_detached() {
        let opts = ConnectOptions::new()
            .retries(1)
            .backoff(Duration::from_millis(1), Duration::from_millis(1));
        let cluster = Cluster::builder()
            .connect_options(opts)
            .policy(FailurePolicy::Quorum(0))
            .connect(&["127.0.0.1:1"])
            .expect("quorum(0) admits anything");
        assert_eq!(cluster.len(), 1);
        assert_eq!(cluster.initial_failures().len(), 1);
        // Operations fail per-peer instead of erroring the whole call.
        let fan = cluster.describe();
        assert!(fan.ok.is_empty());
        assert_eq!(fan.failures.len(), 1);
        // Quorum(0) admits an empty surviving set, so the scrape
        // "succeeds" with zero peers rather than rejecting.
        let metrics = cluster.scrape_metrics().expect("quorum(0) admits");
        assert!(metrics.per_peer.is_empty());
        let fan = cluster.shutdown();
        // Nothing to end on a detached peer; shutdown is clean.
        assert!(fan.failures.is_empty());
    }

    #[test]
    fn cluster_error_collapses_to_first_rpc_error() {
        let e = ClusterError::Rejected {
            policy: FailurePolicy::Strict,
            ok: 1,
            failures: vec![PeerFailure {
                index: 2,
                peer: "10.0.0.3:7401".into(),
                op: "metrics",
                attempts: 2,
                error: RpcError::PeerUnavailable {
                    peer: "10.0.0.3:7401".into(),
                    attempts: 2,
                    source: None,
                },
            }],
        };
        assert!(matches!(e.into_rpc(), RpcError::PeerUnavailable { .. }));
        assert!(matches!(
            ClusterError::NoPeers.into_rpc(),
            RpcError::Protocol(_)
        ));
    }
}
