//! The executable NPE engine: a real threaded 3-stage pipeline (§5.4).
//!
//! Where the parent module *models* Fig 12's stage times analytically,
//! this module *runs* them: [`run_pipeline`] wires a loader stage, a
//! decode pool (the paper's ≤2-core decompression stage) and an in-order
//! batched FE&Cl stage over bounded crossbeam channels. The FE stage
//! assembles up to [`EngineConfig::batch`] decoded items into a single
//! batched forward pass (the paper's `+Batch` enlargement).
//!
//! Determinism: decoded items leave the pool out of order, but the FE
//! stage reorders them by index before batching, and batches are always
//! `[0..batch)`, `[batch..2·batch)`, … regardless of worker count or
//! scheduling. Any decode function that is itself deterministic therefore
//! yields bit-identical results at every `decomp_workers` setting — the
//! property the `NDPIPE_THREADS` knob relies on.
//!
//! The engine measures per-stage busy time so the analytic Fig 12 bars
//! can be validated against wall-clock reality: `sum(busy)` approximates
//! serial execution, `wall` the pipelined one, and per-stage occupancy
//! shows which stage binds.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Configuration of the threaded 3-stage pipeline.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// FE&Cl batch size (the paper uses 128 for ResNet50 on a T4).
    pub batch: usize,
    /// Decode-pool workers. The paper budgets at most 2 storage-server
    /// cores for decompression; the default honours `NDPIPE_THREADS`
    /// when it asks for less.
    pub decomp_workers: usize,
    /// Capacity of the bounded channels between stages (backpressure
    /// depth, in items).
    pub queue_depth: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            batch: 128,
            decomp_workers: ndpipe_data::deflate::configured_threads().clamp(1, 2),
            queue_depth: 256,
        }
    }
}

/// Busy-time accounting for one pipeline stage.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageStats {
    /// Seconds spent doing stage work (excludes channel waits).
    pub busy_secs: f64,
    /// Items that passed through the stage.
    pub items: usize,
}

/// Queue-depth sampling of one inter-stage channel: the loader samples
/// the load→decode queue at each send, the FE stage samples the
/// decode→FE queue at each receive. Sampling is skipped entirely while
/// [`telemetry::enabled`] is off, so the uninstrumented baseline pays
/// nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueueStats {
    /// Number of depth samples taken.
    pub samples: usize,
    /// Sum of sampled depths (for the mean).
    pub depth_sum: u64,
    /// Largest sampled depth.
    pub depth_max: usize,
}

impl QueueStats {
    fn record(&mut self, depth: usize) {
        self.samples += 1;
        self.depth_sum += depth as u64;
        self.depth_max = self.depth_max.max(depth);
    }

    /// Mean sampled depth (0 when never sampled).
    pub fn mean(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.depth_sum as f64 / self.samples as f64
        }
    }
}

/// Execution report of one pipeline run.
#[derive(Debug, Clone, Default)]
pub struct PipelineStats {
    /// Loader stage (disk / sidecar fetch).
    pub load: StageStats,
    /// Decode pool (decompression / preprocessing), summed over workers.
    pub decode: StageStats,
    /// Batched FE&Cl stage.
    pub fe: StageStats,
    /// Number of batched forward passes issued.
    pub batches: usize,
    /// End-to-end wall-clock seconds.
    pub wall_secs: f64,
    /// Depth of the load→decode queue, sampled at each send.
    pub in_queue: QueueStats,
    /// Depth of the decode→FE queue, sampled at each receive.
    pub mid_queue: QueueStats,
    /// Items dropped because their decode failed (an `Err` from the
    /// decode fn, or a decode panic contained by the pool worker).
    pub stage_errors: usize,
    /// First stage error message, kept for diagnostics when
    /// `stage_errors > 0`.
    pub first_error: Option<String>,
}

impl PipelineStats {
    /// Measured pipelined throughput, items per second.
    pub fn ips(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.fe.items as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    /// Estimated serial (unpipelined) time: the sum of all stage work.
    pub fn serial_estimate_secs(&self) -> f64 {
        self.load.busy_secs + self.decode.busy_secs + self.fe.busy_secs
    }

    /// Per-stage occupancy `[load, decode, fe]`: the fraction of the wall
    /// time each stage was busy. The stage closest to 1.0 binds the
    /// pipeline — Fig 12's `1 / max(stage)` argument, observed.
    pub fn occupancies(&self) -> [f64; 3] {
        if self.wall_secs <= 0.0 {
            return [0.0; 3];
        }
        [
            self.load.busy_secs / self.wall_secs,
            self.decode.busy_secs / self.wall_secs,
            self.fe.busy_secs / self.wall_secs,
        ]
    }
}

/// Runs `items` through the 3-stage pipeline and returns the FE outputs
/// in item order plus per-stage statistics.
///
/// - **Stage 1 (loader, 1 thread):** drains the `items` iterator; the
///   iterator's own work (e.g. fetching a compressed sidecar) is
///   attributed to the load stage.
/// - **Stage 2 (decode pool, `decomp_workers` threads):** applies
///   `decode(index, item)` — typically real DEFLATE inflation.
/// - **Stage 3 (FE&Cl, caller thread):** restores index order, groups up
///   to `batch` decoded items, and calls `forward` once per group (the
///   single batched forward). `forward` must return one output per input,
///   in input order.
///
/// # Panics
///
/// Panics if a stage errors (decode `Err` or a decode panic — use
/// [`run_pipeline_fallible`] to observe those as data instead) or if
/// `forward` returns a different number of outputs than inputs.
pub fn run_pipeline<I, M, T, L, D, F>(
    cfg: &EngineConfig,
    items: L,
    decode: D,
    forward: F,
) -> (Vec<T>, PipelineStats)
where
    I: Send,
    M: Send,
    L: IntoIterator<Item = I> + Send,
    L::IntoIter: Send,
    D: Fn(usize, I) -> M + Sync,
    F: FnMut(Vec<M>) -> Vec<T>,
{
    let (out, stats) = run_pipeline_fallible(
        cfg,
        items,
        |idx, item| Ok::<M, String>(decode(idx, item)),
        forward,
    );
    if let Some(err) = &stats.first_error {
        // ndlint: allow(panic, reason = "infallible API re-raises contained decode failures on the caller thread; fallible callers use run_pipeline_fallible")
        panic!("npe decode stage failed: {err}");
    }
    (out, stats)
}

/// [`run_pipeline`] with a fallible decode stage.
///
/// `decode` returns `Result<M, String>`; an `Err` (or a panic inside
/// `decode`, which the pool worker catches) drops that item, increments
/// [`PipelineStats::stage_errors`], records the first message in
/// [`PipelineStats::first_error`], and lets every other item flow through.
/// The FE stage still sees surviving items in index order, so batches stay
/// deterministic; the pipeline drains cleanly instead of unwinding through
/// a bounded channel send and wedging its peers.
///
/// # Panics
///
/// Panics only if `forward` returns a different number of outputs than
/// inputs (a caller bug, raised on the caller's own thread).
pub fn run_pipeline_fallible<I, M, T, L, D, F>(
    cfg: &EngineConfig,
    items: L,
    decode: D,
    mut forward: F,
) -> (Vec<T>, PipelineStats)
where
    I: Send,
    M: Send,
    L: IntoIterator<Item = I> + Send,
    L::IntoIter: Send,
    D: Fn(usize, I) -> Result<M, String> + Sync,
    F: FnMut(Vec<M>) -> Vec<T>,
{
    let batch = cfg.batch.max(1);
    let workers = cfg.decomp_workers.max(1);
    let depth = cfg.queue_depth.max(1);

    // ndlint: policy(block, reason = "inter-stage backpressure is the design: a slow decode pool stalls the loader at queue_depth instead of buffering the shard")
    let (tx_in, rx_in) = crossbeam::channel::bounded::<(usize, I)>(depth);
    // ndlint: policy(block, reason = "same backpressure contract for decode -> FE; the FE stage drains in submission order via the reorder window")
    let (tx_mid, rx_mid) = crossbeam::channel::bounded::<(usize, Result<M, String>)>(depth);

    let load_busy_ns = AtomicU64::new(0);
    let decode_busy_ns = AtomicU64::new(0);
    let loaded = AtomicU64::new(0);
    let decoded = AtomicU64::new(0);
    // Queue-depth sampling (telemetry): the loader publishes its local
    // tallies through these once it finishes.
    let sample_queues = telemetry::enabled();
    let in_samples = AtomicU64::new(0);
    let in_depth_sum = AtomicU64::new(0);
    let in_depth_max = AtomicU64::new(0);

    let mut results: Vec<T> = Vec::new();
    let mut stats = PipelineStats::default();
    let start = Instant::now();

    crossbeam::thread::scope(|s| {
        // Stage 1: loader.
        {
            let load_busy_ns = &load_busy_ns;
            let loaded = &loaded;
            let (in_samples, in_depth_sum, in_depth_max) =
                (&in_samples, &in_depth_sum, &in_depth_max);
            s.spawn(move |_| {
                let mut iter = items.into_iter();
                let mut idx = 0usize;
                let mut queue = QueueStats::default();
                loop {
                    let t0 = Instant::now();
                    let next = iter.next();
                    // ndlint: allow(relaxed, reason = "monotonic busy-time tally; published to the caller by the scope join, not by this store")
                    load_busy_ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    let Some(item) = next else { break };
                    if tx_in.send((idx, item)).is_err() {
                        break; // all consumers gone (a stage panicked)
                    }
                    crate::sanitize::channel_depth("npe.load", tx_in.len(), depth);
                    if sample_queues {
                        queue.record(tx_in.len());
                    }
                    idx += 1;
                }
                // Final publication of the loader's local tallies; Release
                // pairs with the Acquire loads after the scope join.
                loaded.store(idx as u64, Ordering::Release);
                in_samples.store(queue.samples as u64, Ordering::Release);
                in_depth_sum.store(queue.depth_sum, Ordering::Release);
                in_depth_max.store(queue.depth_max as u64, Ordering::Release);
                // `tx_in` drops here: decode workers drain and exit.
            });
        }

        // Stage 2: decode pool.
        for _ in 0..workers {
            let rx_in = rx_in.clone();
            let tx_mid = tx_mid.clone();
            let decode = &decode;
            let decode_busy_ns = &decode_busy_ns;
            let decoded = &decoded;
            s.spawn(move |_| {
                for (idx, item) in rx_in.iter() {
                    let t0 = Instant::now();
                    // Contain decode panics to this item: unwinding out of
                    // a pool worker would silently shrink the pool and can
                    // wedge the pipeline on a bounded channel.
                    let m = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        decode(idx, item)
                    }))
                    .unwrap_or_else(|payload| Err(panic_message(&*payload)));
                    // ndlint: allow(relaxed, reason = "monotonic busy-time and item tallies; published to the caller by the scope join")
                    decode_busy_ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    // ndlint: allow(relaxed, reason = "monotonic item counter; published to the caller by the scope join")
                    decoded.fetch_add(1, Ordering::Relaxed);
                    if tx_mid.send((idx, m)).is_err() {
                        break;
                    }
                    crate::sanitize::channel_depth("npe.mid", tx_mid.len(), depth);
                }
            });
        }
        drop(rx_in);
        drop(tx_mid); // FE sees disconnect once every worker finishes

        // Stage 3 (this thread): reorder, batch, forward. Failed items
        // are dropped here (after restoring index order) so survivors
        // still batch deterministically.
        let mut pending: BTreeMap<usize, Result<M, String>> = BTreeMap::new();
        let mut next = 0usize;
        let mut bucket: Vec<M> = Vec::with_capacity(batch);
        let mut flush = |bucket: &mut Vec<M>, results: &mut Vec<T>, stats: &mut PipelineStats| {
            if bucket.is_empty() {
                return;
            }
            let n = bucket.len();
            let t0 = Instant::now();
            let out = forward(std::mem::take(bucket));
            stats.fe.busy_secs += t0.elapsed().as_secs_f64();
            // ndlint: allow(panic, reason = "forward() contract violation is a caller bug; this raises on the caller's own thread, not inside a pool worker")
            assert_eq!(out.len(), n, "forward must return one output per input");
            stats.batches += 1;
            results.extend(out);
        };
        for (idx, m) in rx_mid.iter() {
            if sample_queues {
                stats.mid_queue.record(rx_mid.len());
            }
            pending.insert(idx, m);
            while let Some(m) = pending.remove(&next) {
                next += 1;
                match m {
                    Ok(m) => {
                        bucket.push(m);
                        if bucket.len() == batch {
                            flush(&mut bucket, &mut results, &mut stats);
                        }
                    }
                    Err(e) => {
                        stats.stage_errors += 1;
                        if stats.first_error.is_none() {
                            stats.first_error = Some(e);
                        }
                    }
                }
            }
        }
        flush(&mut bucket, &mut results, &mut stats);
        // ndlint: allow(panic, reason = "an index gap here means the engine itself lost an item; fail fast on the caller thread rather than return silently short results")
        assert!(pending.is_empty(), "pipeline dropped in-flight items");
    })
    .unwrap_or_else(|_| {
        // Only the loader can still panic (a user-supplied iterator);
        // decode panics are contained per-item above. Surface it as a
        // stage error so callers see a drained, unwedged pipeline.
        stats.stage_errors += 1;
        if stats.first_error.is_none() {
            stats.first_error = Some("loader stage panicked".to_string());
        }
    });

    stats.wall_secs = start.elapsed().as_secs_f64();
    // Acquire pairs with the loader's Release stores; the scope join
    // already synchronizes, this keeps the pairing explicit and lintable.
    stats.load.busy_secs = load_busy_ns.load(Ordering::Acquire) as f64 * 1e-9;
    stats.load.items = loaded.load(Ordering::Acquire) as usize;
    stats.decode.busy_secs = decode_busy_ns.load(Ordering::Acquire) as f64 * 1e-9;
    stats.decode.items = decoded.load(Ordering::Acquire) as usize;
    stats.fe.items = results.len();
    stats.in_queue = QueueStats {
        samples: in_samples.load(Ordering::Acquire) as usize,
        depth_sum: in_depth_sum.load(Ordering::Acquire),
        depth_max: in_depth_max.load(Ordering::Acquire) as usize,
    };
    (results, stats)
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("decode panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("decode panicked: {s}")
    } else {
        "decode panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(batch: usize, workers: usize) -> EngineConfig {
        EngineConfig {
            batch,
            decomp_workers: workers,
            queue_depth: 8,
        }
    }

    #[test]
    fn outputs_preserve_item_order() {
        for workers in [1, 2, 4] {
            let (out, stats) = run_pipeline(
                &cfg(7, workers),
                0..100u64,
                |_, x| x * 2,
                |batch| batch.iter().map(|&x| x + 1).collect::<Vec<u64>>(),
            );
            let expect: Vec<u64> = (0..100).map(|x| x * 2 + 1).collect();
            assert_eq!(out, expect, "workers={workers}");
            assert_eq!(stats.fe.items, 100);
            assert_eq!(stats.load.items, 100);
            assert_eq!(stats.decode.items, 100);
        }
    }

    #[test]
    fn batches_are_formed_in_index_order() {
        // Record each batch's index span; they must partition 0..n in
        // order, with only the last batch short.
        let n = 53usize;
        let batch = 8usize;
        let (spans, stats) = run_pipeline(
            &cfg(batch, 3),
            0..n,
            |idx, item| {
                assert_eq!(idx, item);
                item
            },
            |b| vec![(b[0], b.len()); b.len()],
        );
        assert_eq!(stats.batches, n.div_ceil(batch));
        let mut expect_start = 0usize;
        for &(start, len) in &spans {
            assert_eq!(start - (start % batch), start, "aligned batch start");
            assert!(start >= expect_start.saturating_sub(batch));
            expect_start = expect_start.max(start + len);
        }
        assert_eq!(spans.len(), n);
    }

    #[test]
    fn empty_input_is_fine() {
        let (out, stats) =
            run_pipeline(&EngineConfig::default(), Vec::<u8>::new(), |_, x| x, |b| b);
        assert!(out.is_empty());
        assert_eq!(stats.batches, 0);
        assert_eq!(stats.ips(), 0.0);
    }

    #[test]
    fn stats_are_consistent() {
        let (_, stats) = run_pipeline(
            &cfg(16, 2),
            0..256u32,
            |_, x| {
                // Some real decode work so busy time registers.
                (0..500).fold(x, |a, _| a.wrapping_mul(31).wrapping_add(7))
            },
            |b| b,
        );
        assert!(stats.wall_secs > 0.0);
        assert!(stats.decode.busy_secs > 0.0);
        assert_eq!(stats.batches, 16);
        let occ = stats.occupancies();
        assert!(occ.iter().all(|&o| o >= 0.0));
        assert!(stats.ips() > 0.0);
        assert!(stats.serial_estimate_secs() > 0.0);
    }

    #[test]
    fn queue_depths_are_sampled_when_enabled() {
        telemetry::set_enabled(true);
        let (_, stats) = run_pipeline(&cfg(16, 2), 0..64u32, |_, x| x, |b| b);
        assert_eq!(stats.in_queue.samples, 64, "one sample per loaded item");
        assert_eq!(stats.mid_queue.samples, 64, "one sample per received item");
        assert!(stats.in_queue.depth_max <= 8, "bounded by queue_depth");
        assert!(stats.in_queue.mean() <= stats.in_queue.depth_max as f64);
    }

    #[test]
    fn default_config_respects_paper_budget() {
        let c = EngineConfig::default();
        assert!(c.decomp_workers >= 1 && c.decomp_workers <= 2);
        assert_eq!(c.batch, 128);
    }

    #[test]
    fn fallible_decode_drops_failed_items_and_keeps_order() {
        for workers in [1, 2, 4] {
            let (out, stats) = run_pipeline_fallible(
                &cfg(4, workers),
                0..40u64,
                |_, x| {
                    if x % 10 == 3 {
                        Err(format!("item {x} corrupt"))
                    } else {
                        Ok(x)
                    }
                },
                |b| b,
            );
            let expect: Vec<u64> = (0..40).filter(|x| x % 10 != 3).collect();
            assert_eq!(out, expect, "workers={workers}");
            assert_eq!(stats.stage_errors, 4);
            assert_eq!(stats.load.items, 40);
            assert_eq!(stats.decode.items, 40, "errored items still pass decode");
            assert_eq!(stats.fe.items, 36);
            let first = stats.first_error.expect("first error recorded");
            assert_eq!(first, "item 3 corrupt", "errors surface in index order");
        }
    }

    #[test]
    fn decode_panics_are_contained_per_item() {
        for workers in [1, 3] {
            let (out, stats) = run_pipeline_fallible(
                &cfg(8, workers),
                0..32u32,
                |_, x| {
                    if x == 17 {
                        panic!("poisoned sidecar {x}");
                    }
                    Ok::<u32, String>(x)
                },
                |b| b,
            );
            assert_eq!(out.len(), 31, "workers={workers}");
            assert!(!out.contains(&17));
            assert_eq!(stats.stage_errors, 1);
            let msg = stats.first_error.expect("panic surfaced as error");
            assert!(msg.contains("poisoned sidecar 17"), "msg: {msg}");
        }
    }

    #[test]
    fn all_items_failing_still_drains_cleanly() {
        let (out, stats) = run_pipeline_fallible(
            &cfg(4, 2),
            0..16u32,
            |_, x| Err::<u32, String>(format!("nope {x}")),
            |b: Vec<u32>| b,
        );
        assert!(out.is_empty());
        assert_eq!(stats.stage_errors, 16);
        assert_eq!(stats.batches, 0);
        assert_eq!(stats.load.items, 16, "loader finished despite failures");
    }

    #[test]
    fn infallible_api_panics_on_contained_decode_failure() {
        let result = std::panic::catch_unwind(|| {
            run_pipeline(
                &cfg(4, 2),
                0..8u32,
                |_, x| {
                    if x == 5 {
                        panic!("bad item");
                    }
                    x
                },
                |b| b,
            )
        });
        let err = result.expect_err("run_pipeline must re-raise decode failures");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("npe decode stage failed"), "msg: {msg}");
    }
}
