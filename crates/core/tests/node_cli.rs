//! End-to-end test of the `ndpipe_node` CLI: real OS processes, real
//! sockets — the artifact-appendix deployment shape.

use std::process::{Child, Command, Stdio};

struct KillOnDrop(Child);
impl Drop for KillOnDrop {
    fn drop(&mut self) {
        self.0.kill().ok();
        self.0.wait().ok();
    }
}

fn node() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ndpipe_node"))
}

/// Ports in the dynamic range, offset by pid so parallel test runs don't
/// collide.
fn ports() -> (u16, u16) {
    let base = 20000 + (std::process::id() % 20000) as u16;
    (base, base + 1)
}

fn spawn_pipestore(port: u16, shard: &str, extra: &[&str]) -> KillOnDrop {
    let mut cmd = node();
    cmd.args([
        "pipestore",
        "--listen",
        &format!("127.0.0.1:{port}"),
        "--shard",
        shard,
        "--seed",
        "7",
    ]);
    cmd.args(extra);
    KillOnDrop(
        cmd.stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn pipestore"),
    )
}

#[test]
fn two_pipestores_and_a_tuner_across_processes() {
    let (p1, p2) = ports();
    let stores: Vec<KillOnDrop> = [(0, p1), (1, p2)]
        .into_iter()
        .map(|(i, port)| spawn_pipestore(port, &format!("{i}/2"), &[]))
        .collect();
    // Give the listeners a moment to bind (retry connect below anyway).
    let connect = format!("127.0.0.1:{p1},127.0.0.1:{p2}");
    let mut last_output = None;
    for attempt in 0..10 {
        let output = node()
            .args([
                "tuner",
                "--connect",
                &connect,
                "--seed",
                "7",
                "--runs",
                "2",
                "--epochs",
                "8",
            ])
            .output()
            .expect("run tuner");
        if output.status.success() {
            last_output = Some(output);
            break;
        }
        assert!(attempt < 9, "tuner never connected: {output:?}");
        std::thread::sleep(std::time::Duration::from_millis(300));
    }
    let output = last_output.expect("tuner succeeded");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("examples trained"), "stdout: {stdout}");
    assert!(stdout.contains("final accuracy"), "stdout: {stdout}");
    // The distributed run must actually learn: final top-1 well above the
    // 12.5% chance level for 8 classes.
    let top1: f64 = stdout
        .lines()
        .find(|l| l.contains("final accuracy"))
        .and_then(|l| l.split("top1 ").nth(1))
        .and_then(|s| s.split('%').next())
        .and_then(|s| s.parse().ok())
        .expect("parse accuracy");
    assert!(top1 > 50.0, "distributed run did not learn: {top1}%");

    // Both pipestore processes exit cleanly after the session.
    for mut s in stores {
        let status = s.0.wait().expect("pipestore exit");
        assert!(status.success(), "pipestore failed: {status:?}");
        std::mem::forget(s); // already waited
    }
}

/// A replicated fleet survives losing a store mid-deployment: the
/// placement-aware Tuner extracts the dead store's shard from the
/// surviving replica instead of dropping it.
#[test]
fn replicated_fleet_reroutes_around_a_dead_store() {
    let base = 21000 + (std::process::id() % 19000) as u16;
    let ports = [base, base + 1, base + 2];
    let mut stores: Vec<KillOnDrop> = ports
        .iter()
        .enumerate()
        .map(|(i, port)| spawn_pipestore(*port, &format!("{i}/3"), &["--replicas", "2"]))
        .collect();
    // Kill store 2 before the Tuner ever connects: its shard must still
    // be trained on, served by whichever survivor replicates it.
    drop(stores.pop().expect("three stores"));

    let connect = format!(
        "127.0.0.1:{},127.0.0.1:{},127.0.0.1:{}",
        ports[0], ports[1], ports[2]
    );
    let mut last_output = None;
    for attempt in 0..10 {
        let output = node()
            .args([
                "tuner",
                "--connect",
                &connect,
                "--seed",
                "7",
                "--runs",
                "2",
                "--epochs",
                "6",
                "--quorum",
                "2",
                "--replicas",
                "2",
            ])
            .output()
            .expect("run tuner");
        if output.status.success() {
            last_output = Some(output);
            break;
        }
        assert!(attempt < 9, "tuner never connected: {output:?}");
        std::thread::sleep(std::time::Duration::from_millis(300));
    }
    let output = last_output.expect("tuner succeeded");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let reroutes: u64 = stdout
        .lines()
        .find(|l| l.contains("shard reroutes"))
        .and_then(|l| l.split_whitespace().last())
        .and_then(|s| s.parse().ok())
        .expect("parse reroute count");
    assert!(reroutes > 0, "dead store's shard was not rerouted: {stdout}");
    assert!(stdout.contains("examples trained"), "stdout: {stdout}");

    // The two surviving pipestore processes exit cleanly.
    for mut s in stores {
        let status = s.0.wait().expect("pipestore exit");
        assert!(status.success(), "pipestore failed: {status:?}");
        std::mem::forget(s); // already waited
    }
}

#[test]
fn usage_error_for_bad_invocations() {
    let out = node().arg("bogus").output().expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage"), "stderr: {err}");

    let out = node()
        .args(["pipestore", "--listen", "127.0.0.1:1", "--shard", "9/3"])
        .output()
        .expect("run");
    assert!(!out.status.success());
}
