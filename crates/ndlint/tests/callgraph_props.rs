//! Property tests of the call-graph builder and the summary fixpoint:
//!
//! - **Well-formedness**: on generated multi-file programs, every edge's
//!   callee is a defined node, the callee's name matches the call site's
//!   token, and node/edge construction never panics.
//! - **Monotonicity**: appending one more call to a function body can
//!   only grow (never shrink) that function's transitive blocking set —
//!   the property the fixpoint propagation's soundness rests on.
//! - **Determinism**: building twice from the same sources yields the
//!   same nodes and edges (the JSON report determinism test in
//!   `tests/ndlint_workspace.rs` covers the full pipeline end-to-end).

use ndlint::callgraph;
use ndlint::scan::SourceFile;
use ndlint::summary::{self, BlockKind};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::path::Path;

const FN_NAMES: &[&str] = &[
    "alpha_task", "beta_task", "gamma_task", "delta_task", "epsilon_task",
];

/// One generated function body: which peers it calls, and whether it
/// performs a blocking primitive of its own.
#[derive(Debug, Clone)]
struct GenFn {
    calls: Vec<usize>,
    sleeps: bool,
    locks: bool,
}

fn gen_fns() -> impl Strategy<Value = Vec<GenFn>> {
    prop::collection::vec(
        (
            prop::collection::vec(0..FN_NAMES.len(), 0..4),
            any::<bool>(),
            any::<bool>(),
        )
            .prop_map(|(calls, sleeps, locks)| GenFn { calls, sleeps, locks }),
        FN_NAMES.len()..FN_NAMES.len() + 1,
    )
}

fn render(fns: &[GenFn]) -> String {
    let mut out = String::new();
    for (i, f) in fns.iter().enumerate() {
        out.push_str(&format!("fn {}() {{\n", FN_NAMES[i]));
        if f.locks {
            out.push_str("    let guard = shared_mu.lock();\n");
        }
        if f.sleeps {
            out.push_str("    std::thread::sleep(d);\n");
        }
        for &c in &f.calls {
            out.push_str(&format!("    {}();\n", FN_NAMES[c]));
        }
        out.push_str("}\n");
    }
    out
}

fn parse_one(src: &str) -> Vec<SourceFile> {
    vec![SourceFile::parse(Path::new("/x/props.rs"), "props.rs", src)]
}

fn node_id(g: &callgraph::CallGraph, name: &str) -> usize {
    g.nodes
        .iter()
        .position(|n| n.name == name)
        .unwrap_or_else(|| panic!("{name} must be a node"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every call edge points at a defined node whose name matches what
    /// the source actually calls.
    #[test]
    fn edges_resolve_to_defined_fns(fns in gen_fns()) {
        let files = parse_one(&render(&fns));
        let g = callgraph::build(&files);
        prop_assert_eq!(g.nodes.len(), FN_NAMES.len());
        for (id, sites) in g.calls.iter().enumerate() {
            let expected: BTreeSet<&str> =
                fns[id].calls.iter().map(|&c| FN_NAMES[c]).collect();
            for site in sites {
                prop_assert!(site.callee < g.nodes.len());
                let callee = g.nodes[site.callee].name.as_str();
                prop_assert!(
                    expected.contains(callee),
                    "edge {} -> {} has no call site in the source",
                    g.nodes[id].name, callee
                );
            }
            // Every written call resolves: the builder may fan one name
            // out to several candidates but never drops a defined callee.
            let resolved: BTreeSet<&str> =
                sites.iter().map(|s| g.nodes[s.callee].name.as_str()).collect();
            for want in expected {
                prop_assert!(
                    resolved.contains(want),
                    "call {} -> {} was dropped",
                    g.nodes[id].name, want
                );
            }
        }
    }

    /// Adding one more call can only grow a summary (monotone fixpoint).
    #[test]
    fn summaries_grow_monotonically_under_added_calls(
        fns in gen_fns(),
        caller in 0..FN_NAMES.len(),
        callee in 0..FN_NAMES.len(),
    ) {
        let before_files = parse_one(&render(&fns));
        let g0 = callgraph::build(&before_files);
        let s0 = summary::summarize(&before_files, &g0);

        let mut grown = fns.clone();
        grown[caller].calls.push(callee);
        let after_files = parse_one(&render(&grown));
        let g1 = callgraph::build(&after_files);
        let s1 = summary::summarize(&after_files, &g1);

        for name in FN_NAMES {
            let b: BTreeSet<BlockKind> =
                s0[node_id(&g0, name)].blocking.keys().copied().collect();
            let a: BTreeSet<BlockKind> =
                s1[node_id(&g1, name)].blocking.keys().copied().collect();
            prop_assert!(
                b.is_subset(&a),
                "{name}: blocking set shrank from {b:?} to {a:?} after adding a call"
            );
            let bl: BTreeSet<&String> =
                s0[node_id(&g0, name)].lock_classes.keys().collect();
            let al: BTreeSet<&String> =
                s1[node_id(&g1, name)].lock_classes.keys().collect();
            prop_assert!(
                bl.is_subset(&al),
                "{name}: lock-class set shrank after adding a call"
            );
        }
    }

    /// Two builds over identical sources agree node-for-node and
    /// edge-for-edge.
    #[test]
    fn build_is_deterministic(fns in gen_fns()) {
        let src = render(&fns);
        let g1 = callgraph::build(&parse_one(&src));
        let g2 = callgraph::build(&parse_one(&src));
        prop_assert_eq!(g1.nodes.len(), g2.nodes.len());
        prop_assert_eq!(g1.edge_count(), g2.edge_count());
        for (a, b) in g1.nodes.iter().zip(g2.nodes.iter()) {
            prop_assert_eq!(&a.name, &b.name);
        }
        for (sa, sb) in g1.calls.iter().zip(g2.calls.iter()) {
            prop_assert_eq!(sa.len(), sb.len());
            for (x, y) in sa.iter().zip(sb.iter()) {
                prop_assert_eq!(x.callee, y.callee);
                prop_assert_eq!(x.line, y.line);
            }
        }
    }
}
