//! Property tests of the ndlint lexer: it must be total (never panic) on
//! arbitrary byte soup, deterministic, and keep positions in bounds —
//! including on unterminated strings, half-open block comments, raw-string
//! hashes and mangled directives.

use ndlint::lexer::lex;
use proptest::prelude::*;

/// Fragments chosen to stress every lexer state machine edge: string and
/// raw-string openers, char-vs-lifetime ambiguity, comment (non-)nesting,
/// directive shapes (valid, malformed, unknown-rule), and plain code.
fn fragments() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("fn f() {}".to_string()),
        Just("\"str with \\\" escape".to_string()),
        Just("r#\"raw\"#".to_string()),
        Just("r###\"deep".to_string()),
        Just("b\"bytes\"".to_string()),
        Just("br##\"raw bytes\"##".to_string()),
        Just("'c'".to_string()),
        Just("'\\n'".to_string()),
        Just("'static".to_string()),
        Just("x.lock()".to_string()),
        Just("Ordering::Relaxed".to_string()),
        Just("/* block /* not nested? */".to_string()),
        Just("*/".to_string()),
        Just("// ndlint: allow(relaxed, reason = \"ok\")".to_string()),
        Just("// ndlint: allow(relaxed)".to_string()),
        Just("// ndlint: allow(bogus_rule, reason = \"x\")".to_string()),
        Just("// ndlint: garbage(((".to_string()),
        Just("/// doc mentioning ndlint: allow(panic, reason = \"doc\")".to_string()),
        Just("#[cfg(test)]".to_string()),
        Just("日本語 idents".to_string()),
        Just("\\".to_string()),
        Just("\u{0}".to_string()),
        prop::collection::vec(any::<u8>(), 0..24)
            .prop_map(|bytes| String::from_utf8_lossy(&bytes).into_owned()),
    ]
}

fn soup() -> impl Strategy<Value = String> {
    (
        prop::collection::vec(fragments(), 0..24),
        prop::collection::vec(0usize..3, 0..24),
    )
        .prop_map(|(frags, seps)| {
            let mut out = String::new();
            for (i, f) in frags.iter().enumerate() {
                out.push_str(f);
                match seps.get(i).copied().unwrap_or(0) {
                    0 => out.push('\n'),
                    1 => out.push(' '),
                    _ => {}
                }
            }
            out
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The lexer is total: no input panics it.
    #[test]
    fn lex_never_panics(src in soup()) {
        let result = std::panic::catch_unwind(|| lex(&src));
        prop_assert!(result.is_ok(), "lexer panicked on {src:?}");
    }

    /// Reported positions stay inside the source: every token and
    /// annotation line is within the line count, and lines/cols are
    /// 1-based.
    #[test]
    fn positions_are_in_bounds(src in soup()) {
        let lexed = lex(&src);
        let n_lines = src.lines().count().max(1) as u32;
        for t in &lexed.tokens {
            prop_assert!(t.line >= 1 && t.line <= n_lines, "token line {} of {n_lines}", t.line);
            prop_assert!(t.col >= 1);
        }
        for a in &lexed.annotations {
            prop_assert!(a.line >= 1 && a.line <= n_lines);
            prop_assert!(!a.rule.is_empty());
        }
        for (line, _) in &lexed.malformed {
            prop_assert!(*line >= 1 && *line <= n_lines);
        }
    }

    /// Lexing is deterministic.
    #[test]
    fn lex_is_deterministic(src in soup()) {
        let a = lex(&src);
        let b = lex(&src);
        prop_assert_eq!(a.tokens.len(), b.tokens.len());
        prop_assert_eq!(a.annotations.len(), b.annotations.len());
        prop_assert_eq!(a.malformed.len(), b.malformed.len());
    }

    /// A lone well-formed directive line is always either recognized as an
    /// annotation or absorbed by an enclosing string/comment opened by the
    /// prefix — prepending clean code must yield exactly one annotation.
    #[test]
    fn clean_prefix_preserves_directives(pad in 0usize..5) {
        let mut src = String::new();
        for i in 0..pad {
            src.push_str(&format!("fn pad{i}() {{}}\n"));
        }
        src.push_str("// ndlint: allow(relaxed, reason = \"prop\")\n");
        let lexed = lex(&src);
        prop_assert_eq!(lexed.annotations.len(), 1);
        prop_assert_eq!(lexed.annotations[0].line as usize, pad + 1);
        prop_assert!(lexed.annotations[0].has_reason);
    }
}
