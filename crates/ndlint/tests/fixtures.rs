//! Golden-diagnostic tests over the fixture corpus: every rule family has
//! a `_bad.rs` fixture that must fire at the marked line and an `_ok.rs`
//! twin that must stay clean. Expected lines are located via `// MARK:`
//! comments so the fixtures can be edited without renumbering tests.

use ndlint::scan::SourceFile;
use ndlint::{run, Config, Finding, FnFilter, WireCheck, WireSite, Zone};
use std::path::PathBuf;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

fn fixture(name: &str) -> (SourceFile, String) {
    let path = fixture_path(name);
    let src =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {name} unreadable: {e}"));
    (SourceFile::parse(&path, name, &src), src)
}

/// 1-based line of the (unique) line containing `mark`.
fn marker_line(src: &str, mark: &str) -> u32 {
    let hits: Vec<u32> = src
        .lines()
        .enumerate()
        .filter(|(_, l)| l.contains(mark))
        .map(|(i, _)| i as u32 + 1)
        .collect();
    assert_eq!(hits.len(), 1, "marker {mark:?} must appear exactly once");
    hits[0]
}

fn lines_of<'a>(findings: &'a [Finding], rule: &str) -> Vec<u32> {
    findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.line)
        .collect()
}

fn panic_zone(file: &str) -> Config {
    Config {
        zones: vec![Zone {
            file_suffix: file.to_string(),
            filter: FnFilter::All,
        }],
        ..Config::default()
    }
}

fn bounded_zone(file: &str) -> Config {
    Config {
        bounded_paths: vec![file.to_string()],
        ..Config::default()
    }
}

fn wire_config(file: &str) -> Config {
    let site = |fn_name: &str, label: &str| WireSite {
        file_suffix: file.to_string(),
        impl_target: Some("Op".to_string()),
        fn_name: fn_name.to_string(),
        label: label.to_string(),
    };
    Config {
        wire_checks: vec![WireCheck {
            enum_file_suffix: file.to_string(),
            enum_name: "Op".to_string(),
            sites: vec![site("encode_body", "encode"), site("decode_body", "decode")],
        }],
        ..Config::default()
    }
}

#[test]
fn relaxed_bad_fires_at_marked_line() {
    let (sf, src) = fixture("relaxed_bad.rs");
    let report = run(&[sf], &Config::default());
    assert_eq!(
        lines_of(&report.findings, "relaxed"),
        vec![marker_line(&src, "MARK: relaxed-finding")],
        "findings: {:?}",
        report.findings
    );
    assert_eq!(report.findings.len(), 1);
}

#[test]
fn relaxed_ok_is_clean() {
    let (sf, _) = fixture("relaxed_ok.rs");
    let report = run(&[sf], &Config::default());
    assert!(report.is_clean(), "findings: {:?}", report.findings);
}

#[test]
fn panic_bad_fires_on_unwrap_macro_and_index() {
    let (sf, src) = fixture("panic_bad.rs");
    let report = run(&[sf], &panic_zone("panic_bad.rs"));
    let mut lines = lines_of(&report.findings, "panic");
    lines.sort_unstable();
    assert_eq!(
        lines,
        vec![
            marker_line(&src, "MARK: panic-unwrap"),
            marker_line(&src, "MARK: panic-macro"),
            marker_line(&src, "MARK: panic-index"),
        ],
        "findings: {:?}",
        report.findings
    );
}

#[test]
fn panic_bad_is_clean_outside_any_zone() {
    // The rule is zone-gated: the same file with no zone configured is fine.
    let (sf, _) = fixture("panic_bad.rs");
    let report = run(&[sf], &Config::default());
    assert!(report.is_clean(), "findings: {:?}", report.findings);
}

#[test]
fn panic_ok_is_clean_inside_the_zone() {
    let (sf, _) = fixture("panic_ok.rs");
    let report = run(&[sf], &panic_zone("panic_ok.rs"));
    assert!(report.is_clean(), "findings: {:?}", report.findings);
}

#[test]
fn bounded_bad_fires_on_each_unbounded_constructor() {
    let (sf, src) = fixture("bounded_bad.rs");
    let report = run(&[sf], &bounded_zone("bounded_bad.rs"));
    let mut lines = lines_of(&report.findings, "bounded");
    lines.sort_unstable();
    assert_eq!(
        lines,
        vec![
            marker_line(&src, "MARK: bounded-mpsc"),
            marker_line(&src, "MARK: bounded-unbounded"),
        ],
        "findings: {:?}",
        report.findings
    );
}

#[test]
fn bounded_bad_is_clean_outside_any_zone() {
    // The rule is path-gated: the same file with no zone configured is fine.
    let (sf, _) = fixture("bounded_bad.rs");
    let report = run(&[sf], &Config::default());
    assert!(report.is_clean(), "findings: {:?}", report.findings);
}

#[test]
fn bounded_ok_is_clean_inside_the_zone() {
    let (sf, _) = fixture("bounded_ok.rs");
    let report = run(&[sf], &bounded_zone("bounded_ok.rs"));
    assert!(report.is_clean(), "findings: {:?}", report.findings);
}

#[test]
fn lock_order_bad_reports_the_inversion_at_both_later_sites() {
    let (sf, src) = fixture("lock_order_bad.rs");
    let report = run(&[sf], &Config::default());
    let mut lines = lines_of(&report.findings, "lock_order");
    lines.sort_unstable();
    assert_eq!(
        lines,
        vec![
            marker_line(&src, "MARK: lock-order-ab"),
            marker_line(&src, "MARK: lock-order-ba"),
        ],
        "findings: {:?}",
        report.findings
    );
    for f in &report.findings {
        assert!(
            f.message.contains("lock-order cycle"),
            "message: {}",
            f.message
        );
    }
}

#[test]
fn lock_order_ok_is_clean() {
    let (sf, _) = fixture("lock_order_ok.rs");
    let report = run(&[sf], &Config::default());
    assert!(report.is_clean(), "findings: {:?}", report.findings);
}

#[test]
fn wire_bad_flags_the_missing_variant_in_decode_only() {
    let (sf, src) = fixture("wire_bad.rs");
    let report = run(&[sf], &wire_config("wire_bad.rs"));
    let wire: Vec<&Finding> = report
        .findings
        .iter()
        .filter(|f| f.rule == "wire")
        .collect();
    assert_eq!(wire.len(), 1, "findings: {:?}", report.findings);
    assert_eq!(wire[0].line, marker_line(&src, "MARK: wire-missing-del"));
    assert!(
        wire[0].message.contains("`Op::Del`"),
        "message: {}",
        wire[0].message
    );
    assert!(
        wire[0].message.contains("decode"),
        "message: {}",
        wire[0].message
    );
}

#[test]
fn wire_ok_is_clean() {
    let (sf, _) = fixture("wire_ok.rs");
    let report = run(&[sf], &wire_config("wire_ok.rs"));
    assert!(report.is_clean(), "findings: {:?}", report.findings);
}

#[test]
fn metric_bad_fires_on_prefix_suffix_kind_and_table() {
    let (sf, src) = fixture("metric_bad.rs");
    let cfg = Config {
        metric_table: Some(vec![(
            "ndpipe_fixture_mixed".to_string(),
            "gauge".to_string(),
        )]),
        ..Config::default()
    };
    let report = run(&[sf], &cfg);
    let expect = |mark: &str, needle: &str| {
        let line = marker_line(&src, mark);
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.rule == "metric" && f.line == line && f.message.contains(needle)),
            "no metric finding at line {line} containing {needle:?}; findings: {:?}",
            report.findings
        );
    };
    expect("MARK: metric-prefix", "`ndpipe_` prefix");
    expect("MARK: metric-suffix", "must end in `_total`");
    expect(
        "MARK: metric-kind-conflict",
        "registered as histogram here but as gauge",
    );
    expect("MARK: metric-unlisted", "not listed in DESIGN.md");
}

#[test]
fn metric_ok_is_clean_against_a_matching_table() {
    let (sf, _) = fixture("metric_ok.rs");
    let cfg = Config {
        metric_table: Some(vec![
            (
                "ndpipe_fixture_requests_total".to_string(),
                "counter".to_string(),
            ),
            ("ndpipe_fixture_depth".to_string(), "gauge".to_string()),
            (
                "ndpipe_fixture_latency_seconds".to_string(),
                "histogram".to_string(),
            ),
        ]),
        ..Config::default()
    };
    let report = run(&[sf], &cfg);
    assert!(report.is_clean(), "findings: {:?}", report.findings);
}

#[test]
fn metric_table_entry_with_no_registration_fires() {
    let (sf, _) = fixture("metric_ok.rs");
    let cfg = Config {
        metric_table: Some(vec![
            (
                "ndpipe_fixture_requests_total".to_string(),
                "counter".to_string(),
            ),
            ("ndpipe_fixture_depth".to_string(), "gauge".to_string()),
            (
                "ndpipe_fixture_latency_seconds".to_string(),
                "histogram".to_string(),
            ),
            (
                "ndpipe_fixture_ghost_total".to_string(),
                "counter".to_string(),
            ),
        ]),
        ..Config::default()
    };
    let report = run(&[sf], &cfg);
    assert!(
        report.findings.iter().any(|f| {
            f.rule == "metric"
                && f.file == "DESIGN.md"
                && f.message.contains("ndpipe_fixture_ghost_total")
                && f.message.contains("never registered")
        }),
        "findings: {:?}",
        report.findings
    );
}

// ---- v2 interprocedural families ------------------------------------

fn event_config(file: &str) -> Config {
    Config {
        event_zones: vec![ndlint::EventZone {
            file_suffix: file.to_string(),
            impl_target: Some("Loop".to_string()),
            fn_name: "run".to_string(),
            label: "test event loop".to_string(),
        }],
        ..Config::default()
    }
}

fn policy_config(file: &str) -> Config {
    Config {
        policy_paths: vec![file.to_string()],
        ..Config::default()
    }
}

#[test]
fn blocking_bad_fires_on_direct_and_transitive_sites() {
    let (sf, src) = fixture("blocking_bad.rs");
    let report = run(&[sf], &Config::default());
    let mut lines = lines_of(&report.findings, "blocking");
    lines.sort_unstable();
    assert_eq!(
        lines,
        vec![
            marker_line(&src, "MARK: blocking-direct"),
            marker_line(&src, "MARK: blocking-transitive"),
        ],
        "findings: {:?}",
        report.findings
    );
    // The transitive finding must carry the call-chain witness.
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.message.contains("flush_to_peer")),
        "findings: {:?}",
        report.findings
    );
}

#[test]
fn blocking_ok_snapshot_then_drop_is_clean() {
    let (sf, _) = fixture("blocking_ok.rs");
    let report = run(&[sf], &Config::default());
    assert!(report.is_clean(), "findings: {:?}", report.findings);
}

#[test]
fn event_zone_bad_fires_on_every_reachable_primitive() {
    let (sf, src) = fixture("event_zone_bad.rs");
    let report = run(&[sf], &event_config("event_zone_bad.rs"));
    let mut lines = lines_of(&report.findings, "event_zone");
    lines.sort_unstable();
    assert_eq!(
        lines,
        vec![
            marker_line(&src, "MARK: event-zone-sleep"),
            marker_line(&src, "MARK: event-zone-read"),
        ],
        "findings: {:?}",
        report.findings
    );
}

#[test]
fn event_zone_bad_is_clean_without_a_configured_entry() {
    let (sf, _) = fixture("event_zone_bad.rs");
    let report = run(&[sf], &Config::default());
    assert!(report.is_clean(), "findings: {:?}", report.findings);
}

#[test]
fn event_zone_ok_reasoned_suppression_is_clean() {
    let (sf, _) = fixture("event_zone_ok.rs");
    let report = run(&[sf], &event_config("event_zone_ok.rs"));
    assert!(report.is_clean(), "findings: {:?}", report.findings);
}

#[test]
fn channel_policy_bad_fires_on_all_three_shapes() {
    let (sf, src) = fixture("channel_policy_bad.rs");
    let report = run(&[sf], &policy_config("channel_policy_bad.rs"));
    let mut lines = lines_of(&report.findings, "channel_policy");
    lines.sort_unstable();
    let mut expected = vec![
        marker_line(&src, "MARK: policy-missing"),
        marker_line(&src, "MARK: policy-send-mismatch"),
        marker_line(&src, "MARK: policy-stale"),
    ];
    expected.sort_unstable();
    assert_eq!(lines, expected, "findings: {:?}", report.findings);
}

#[test]
fn channel_policy_bad_is_clean_outside_policy_paths() {
    let (sf, _) = fixture("channel_policy_bad.rs");
    let report = run(&[sf], &Config::default());
    assert!(report.is_clean(), "findings: {:?}", report.findings);
}

#[test]
fn channel_policy_ok_is_clean() {
    let (sf, _) = fixture("channel_policy_ok.rs");
    let report = run(&[sf], &policy_config("channel_policy_ok.rs"));
    assert!(report.is_clean(), "findings: {:?}", report.findings);
}

#[test]
fn lock_order_transitive_bad_reports_the_cross_fn_cycle() {
    let (sf, src) = fixture("lock_order_transitive_bad.rs");
    let report = run(&[sf], &Config::default());
    let mut lines = lines_of(&report.findings, "lock_order");
    lines.sort_unstable();
    assert_eq!(
        lines,
        vec![
            marker_line(&src, "MARK: lock-order-transitive-ab"),
            marker_line(&src, "MARK: lock-order-transitive-ba"),
        ],
        "findings: {:?}",
        report.findings
    );
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.message.contains("transitively acquires")),
        "findings: {:?}",
        report.findings
    );
}

#[test]
fn lock_order_transitive_ok_is_clean() {
    let (sf, _) = fixture("lock_order_transitive_ok.rs");
    let report = run(&[sf], &Config::default());
    assert!(report.is_clean(), "findings: {:?}", report.findings);
}
