//! Fixture: annotated Relaxed and test-only Relaxed are both clean.
//! Not compiled; consumed by `tests/fixtures.rs` as scanner input.

use std::sync::atomic::{AtomicUsize, Ordering};

pub fn peek(n: &AtomicUsize) -> usize {
    // ndlint: allow(relaxed, reason = "pure tally; nothing is published through it")
    n.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relaxed_inside_cfg_test_is_exempt() {
        let n = AtomicUsize::new(0);
        let _ = n.load(Ordering::Relaxed);
    }
}
