//! Fixture: the event-thread hard zone — ANY transitive blocking call
//! reachable from the configured entry (`Loop::run`) is a finding,
//! whether or not a lock is held.

use std::io::Read;
use std::time::Duration;

pub struct Loop;

impl Loop {
    pub fn run(&self) {
        loop {
            self.tick();
            drain_stdin();
        }
    }

    fn tick(&self) {
        std::thread::sleep(Duration::from_millis(1)); // MARK: event-zone-sleep
    }
}

/// Free helper reached from the entry: its blocking read fires too.
pub fn drain_stdin() {
    let mut buf = [0u8; 16];
    let _ = std::io::stdin().read(&mut buf); // MARK: event-zone-read
}
