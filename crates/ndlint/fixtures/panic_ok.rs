//! Fixture: fallible decode keeps the zone clean; tests may still assert.
//! Not compiled; consumed by `tests/fixtures.rs` as scanner input.

pub fn decode(buf: &[u8]) -> Result<u8, &'static str> {
    let first = buf.first().copied().ok_or("empty")?;
    if first == 0 {
        return Err("zero tag");
    }
    buf.get(1).copied().ok_or("truncated")
}

#[cfg(test)]
mod tests {
    #[test]
    fn asserts_and_unwraps_are_fine_in_tests() {
        assert_eq!(super::decode(&[1, 2]).unwrap(), 2);
    }
}
