//! Fixture: unwrap, a panicking macro and a slice index inside a zone fn.
//! Not compiled; consumed by `tests/fixtures.rs` as scanner input.

pub fn decode(buf: &[u8]) -> u8 {
    let first = buf.first().unwrap(); // MARK: panic-unwrap
    if *first == 0 {
        panic!("zero tag"); // MARK: panic-macro
    }
    buf[1] // MARK: panic-index
}
