//! Fixture twin: the snapshot-then-drop shape — copy what the guard
//! protects, release it, then block. Must stay clean.

use std::io::Write;
use std::sync::Mutex;
use std::time::Duration;

pub struct Store {
    inner: Mutex<Vec<u8>>,
}

pub fn flush_to_peer(stream: &mut std::net::TcpStream, bytes: &[u8]) {
    let _ = stream.write_all(bytes);
}

pub fn publish(store: &Store, stream: &mut std::net::TcpStream) {
    // Temporary guard: dropped at the end of this statement.
    let snapshot = store.inner.lock().clone();
    std::thread::sleep(Duration::from_millis(1));
    flush_to_peer(stream, &snapshot);
}

pub fn publish_scoped(store: &Store, stream: &mut std::net::TcpStream) {
    let snapshot = {
        let guard = store.inner.lock();
        guard.clone()
    };
    flush_to_peer(stream, &snapshot);
}
