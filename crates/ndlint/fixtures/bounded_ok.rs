//! Fixture: bounded constructors, an annotated escape, and test-only
//! channels are all clean. Not compiled; consumed by `tests/fixtures.rs`
//! as scanner input.

use std::sync::mpsc;

pub fn bounded_ctors() {
    let (_t1, _r1) = mpsc::sync_channel::<u32>(8);
    let (_t2, _r2) = crossbeam::channel::bounded::<u32>(8);
}

pub fn annotated() {
    // ndlint: allow(bounded, reason = "drained synchronously before return; never outlives the call")
    let (_tx, _rx) = mpsc::channel::<u32>();
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_channels_are_exempt() {
        let (_tx, _rx) = std::sync::mpsc::channel::<u32>();
    }
}
