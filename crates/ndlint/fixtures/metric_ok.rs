//! Fixture: well-formed names matching the canonical table exactly.
//! Not compiled; consumed by `tests/fixtures.rs` as scanner input.

pub fn register(reg: &Registry) {
    reg.counter("ndpipe_fixture_requests_total", "well-formed counter");
    reg.gauge("ndpipe_fixture_depth", "well-formed gauge");
    reg.histogram("ndpipe_fixture_latency_seconds", "well-formed histogram");
}
