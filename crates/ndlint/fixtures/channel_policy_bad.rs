//! Fixture: channel-discipline violations — an undeclared bounded
//! channel, a blocking send on a `drop`-policy channel, and a stale
//! policy note vouching for nothing.

use std::sync::mpsc;

pub fn undeclared() {
    let (tx, rx) = mpsc::sync_channel::<u32>(8); // MARK: policy-missing
    drop(rx);
    drop(tx);
}

pub fn drop_policy_blocking_send() {
    // ndlint: policy(drop, reason = "late samples are disposable")
    let (evt_tx, rx) = mpsc::sync_channel::<u32>(8);
    let _ = evt_tx.send(1); // MARK: policy-send-mismatch
    drop(rx);
}

pub fn stale_note() {
    // ndlint: policy(block, reason = "the channel this governed moved away; MARK: policy-stale")
    let x = 1u32;
    let _ = x;
}
