//! Fixture: the interprocedural AB/BA deadlock — one path acquires the
//! second lock through a callee, the other path inverts the order
//! directly. Neither function alone touches both locks in one body.

use std::sync::Mutex;

pub struct Pair {
    left: Mutex<u32>,
    right: Mutex<u32>,
}

pub fn bump_right(p: &Pair) {
    let mut g = p.right.lock();
    *g += 1;
}

pub fn left_then_right(p: &Pair) {
    let g = p.left.lock();
    bump_right(p); // MARK: lock-order-transitive-ab
    drop(g);
}

pub fn right_then_left(p: &Pair) {
    let g = p.right.lock();
    let h = p.left.lock(); // MARK: lock-order-transitive-ba
    drop(h);
    drop(g);
}
