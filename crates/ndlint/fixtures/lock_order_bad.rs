//! Fixture: AB in one function, BA in another — a lock-order cycle.
//! Not compiled; consumed by `tests/fixtures.rs` as scanner input.

use std::sync::Mutex;

pub struct Shared {
    pub queue: Mutex<Vec<u32>>,
    pub stats: Mutex<u64>,
}

pub fn producer(s: &Shared) {
    let q = s.queue.lock();
    let t = s.stats.lock(); // MARK: lock-order-ab
    drop((q, t));
}

pub fn reporter(s: &Shared) {
    let t = s.stats.lock();
    let q = s.queue.lock(); // MARK: lock-order-ba
    drop((t, q));
}
