//! Fixture: `decode_body` is missing the `Del` variant — exhaustiveness
//! must fire at the fn declaration line.
//! Not compiled; consumed by `tests/fixtures.rs` as scanner input.

pub enum Op {
    Get { key: u32 },
    Put { key: u32, val: u32 },
    Del,
}

impl Op {
    pub fn encode_body(&self) -> u8 {
        match self {
            Op::Get { .. } => 1,
            Op::Put { .. } => 2,
            Op::Del => 3,
        }
    }

    pub fn decode_body(tag: u8) -> Option<Op> { // MARK: wire-missing-del
        match tag {
            1 => Some(Op::Get { key: 0 }),
            2 => Some(Op::Put { key: 0, val: 0 }),
            _ => None,
        }
    }
}
