//! Fixture: bad prefix, counter without `_total`, a kind conflict, and a
//! registration missing from the canonical table.
//! Not compiled; consumed by `tests/fixtures.rs` as scanner input.

pub fn register(reg: &Registry) {
    reg.counter("requests_total", "no ndpipe_ prefix"); // MARK: metric-prefix
    reg.counter("ndpipe_fixture_items", "counter without _total"); // MARK: metric-suffix
    reg.gauge("ndpipe_fixture_mixed", "first registered as a gauge");
    reg.histogram("ndpipe_fixture_mixed", "then as a histogram"); // MARK: metric-kind-conflict
    reg.counter("ndpipe_fixture_unlisted_total", "not in the table"); // MARK: metric-unlisted
}
