//! Fixture: both functions acquire in the same order — acyclic, clean.
//! Not compiled; consumed by `tests/fixtures.rs` as scanner input.

use std::sync::Mutex;

pub struct Shared {
    pub queue: Mutex<Vec<u32>>,
    pub stats: Mutex<u64>,
}

pub fn producer(s: &Shared) {
    let q = s.queue.lock();
    let t = s.stats.lock();
    drop((q, t));
}

pub fn reporter(s: &Shared) {
    let q = s.queue.lock();
    let t = s.stats.lock();
    drop((q, t));
}
