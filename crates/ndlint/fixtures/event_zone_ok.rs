//! Fixture twin: the same entry shape, with the one intentional blocking
//! primitive carrying a reasoned suppression and the rest non-blocking.

use std::time::Duration;

pub struct Loop;

impl Loop {
    pub fn run(&self) {
        loop {
            self.tick();
            budget_check();
        }
    }

    fn tick(&self) {
        // ndlint: allow(event_zone, reason = "bounded 1ms backoff after a poll error; no peer is waiting on this thread")
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Non-blocking helper: arithmetic only, nothing to flag.
pub fn budget_check() -> u64 {
    let spent = 3u64;
    spent.saturating_mul(2)
}
