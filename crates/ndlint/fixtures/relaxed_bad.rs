//! Fixture: one unannotated `Ordering::Relaxed` outside tests must fire.
//! Not compiled; consumed by `tests/fixtures.rs` as scanner input.

use std::sync::atomic::{AtomicUsize, Ordering};

pub fn peek(n: &AtomicUsize) -> usize {
    n.load(Ordering::Relaxed) // MARK: relaxed-finding
}
