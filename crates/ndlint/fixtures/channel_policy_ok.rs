//! Fixture twin: every bounded channel declares its overload policy and
//! every send site honours it. Must stay clean.

use std::sync::mpsc;

pub fn block_policy_blocking_send() {
    // ndlint: policy(block, reason = "producer backpressure is the design; the consumer drains promptly")
    let (job_tx, rx) = mpsc::sync_channel::<u32>(8);
    let _ = job_tx.send(1);
    drop(rx);
}

pub fn drop_policy_try_send() {
    // ndlint: policy(drop, reason = "overload sheds the newest sample; the consumer only needs a recent one")
    let (evt_tx, rx) = mpsc::sync_channel::<u32>(8);
    let _ = evt_tx.try_send(2);
    drop(rx);
}
