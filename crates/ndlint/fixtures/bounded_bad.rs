//! Fixture: unbounded channel constructors inside a bounded zone fire.
//! Not compiled; consumed by `tests/fixtures.rs` as scanner input.

use std::sync::mpsc;

pub fn plain_mpsc() {
    let (_tx, _rx) = mpsc::channel::<u32>(); // MARK: bounded-mpsc
}

pub fn crossbeam_style() {
    let (_tx, _rx) = crossbeam::channel::unbounded::<u32>(); // MARK: bounded-unbounded
}
