//! Fixture twin: both paths acquire through the callee in the same
//! declared order (left before right), so the acquisition graph is
//! acyclic. Must stay clean.

use std::sync::Mutex;

pub struct Pair {
    left: Mutex<u32>,
    right: Mutex<u32>,
}

pub fn bump_right(p: &Pair) {
    let mut g = p.right.lock();
    *g += 1;
}

pub fn left_then_right(p: &Pair) {
    let g = p.left.lock();
    bump_right(p);
    drop(g);
}

pub fn also_left_then_right(p: &Pair) {
    let g = p.left.lock();
    bump_right(p);
    drop(g);
}
