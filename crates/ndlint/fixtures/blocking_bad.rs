//! Fixture: blocking while a lock guard is held — both the direct
//! primitive and the transitive call shape must fire.

use std::io::Write;
use std::sync::Mutex;
use std::time::Duration;

pub struct Store {
    inner: Mutex<Vec<u8>>,
}

/// Helper that blocks on socket I/O; callers holding a guard inherit it.
pub fn flush_to_peer(stream: &mut std::net::TcpStream, bytes: &[u8]) {
    let _ = stream.write_all(bytes);
}

pub fn publish(store: &Store, stream: &mut std::net::TcpStream) {
    let guard = store.inner.lock();
    std::thread::sleep(Duration::from_millis(1)); // MARK: blocking-direct
    flush_to_peer(stream, &guard); // MARK: blocking-transitive
}
