//! ndlint CLI: `cargo run -p ndlint [--release] -- [flags] [workspace-root]`.
//!
//! Flags:
//! - `--json <path|->`      write the JSON report to a file (or stdout)
//! - `--baseline <path>`    diff findings against a checked-in baseline:
//!                          only *new* findings fail; stale baseline
//!                          entries are reported so the file shrinks
//! - `--write-baseline <p>` write the current findings as the baseline
//! - `--bench-out <path>`   write `{"p50_ms": ..}`-style wall-time JSON
//!                          for the whole-workspace analysis
//!
//! Exits 0 when the workspace is clean (or all findings are baselined),
//! 1 when any (new) finding fires, 2 on usage errors.

use ndlint::json;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

struct Opts {
    root: PathBuf,
    json_out: Option<String>,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    bench_out: Option<PathBuf>,
}

fn usage() {
    println!(
        "usage: ndlint [--json <path|->] [--baseline <path>] \
         [--write-baseline <path>] [--bench-out <path>] [workspace-root]\n\n\
         Lints crates/*/src/**/*.rs for lock-order cycles (intra-fn and\n\
         interprocedural), blocking ops under held guards, blocking ops\n\
         reachable from the RPC event thread, undeclared bounded-queue\n\
         overload policies, unannotated Ordering::Relaxed, panics in\n\
         no-panic zones, unplumbed RPC enum variants, and metric names\n\
         missing from DESIGN.md."
    );
}

fn parse_args() -> Result<Option<Opts>, String> {
    let mut root: Option<PathBuf> = None;
    let mut json_out = None;
    let mut baseline = None;
    let mut write_baseline = None;
    let mut bench_out = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("`{flag}` needs a value"))
        };
        match arg.as_str() {
            "-h" | "--help" => return Ok(None),
            "--json" => json_out = Some(value("--json")?),
            "--baseline" => baseline = Some(PathBuf::from(value("--baseline")?)),
            "--write-baseline" => {
                write_baseline = Some(PathBuf::from(value("--write-baseline")?))
            }
            "--bench-out" => bench_out = Some(PathBuf::from(value("--bench-out")?)),
            other if root.is_none() && !other.starts_with('-') => {
                root = Some(PathBuf::from(other))
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    Ok(Some(Opts {
        root: root.unwrap_or_else(|| PathBuf::from(".")),
        json_out,
        baseline,
        write_baseline,
        bench_out,
    }))
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(Some(o)) => o,
        Ok(None) => {
            usage();
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("ndlint: {e}");
            return ExitCode::from(2);
        }
    };
    if !opts.root.join("crates").is_dir() {
        eprintln!(
            "ndlint: `{}` does not look like the workspace root (no crates/ dir)",
            opts.root.display()
        );
        return ExitCode::from(2);
    }

    let start = Instant::now();
    let report = ndlint::run_workspace(&opts.root);
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;

    if let Some(path) = &opts.bench_out {
        let body = format!(
            "{{\"bench\": \"ndlint_workspace\", \"wall_ms\": {:.1}, \
             \"files\": {}, \"functions\": {}, \"call_edges\": {}, \
             \"budget_ms\": 5000}}\n",
            elapsed_ms, report.files_scanned, report.graph_stats.0, report.graph_stats.1
        );
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("ndlint: cannot write `{}`: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if let Some(path) = &opts.write_baseline {
        let body = json::render_baseline(&report.findings);
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("ndlint: cannot write `{}`: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "ndlint: wrote baseline with {} entr(ies) to {}",
            report.findings.len(),
            path.display()
        );
    }
    if let Some(path) = &opts.json_out {
        let body = json::render_report(&report);
        if path == "-" {
            print!("{body}");
        } else if let Err(e) = std::fs::write(path, body) {
            eprintln!("ndlint: cannot write `{path}`: {e}");
            return ExitCode::from(2);
        }
    }

    let failing: Vec<&ndlint::Finding> = match &opts.baseline {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("ndlint: cannot read baseline `{}`: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            let keys = json::parse_baseline(&text);
            for stale in json::stale_baseline(&report, &keys) {
                println!(
                    "note: baseline entry no longer fires (remove it): [{}] {}: {}",
                    stale.0, stale.1, stale.2
                );
            }
            json::new_findings(&report, &keys)
        }
        None => report.findings.iter().collect(),
    };
    for f in &failing {
        println!("{f}");
    }
    println!(
        "{} ({:.0} ms{})",
        report.summary(),
        elapsed_ms,
        match &opts.baseline {
            Some(_) => format!(", {} new vs baseline", failing.len()),
            None => String::new(),
        }
    );
    if failing.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
