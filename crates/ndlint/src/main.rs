//! ndlint CLI: `cargo run -p ndlint [--release] [-- <workspace-root>]`.
//!
//! Exits 0 when the workspace is clean, 1 when any finding fires, 2 on
//! usage errors.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "-h" | "--help" => {
                println!(
                    "usage: ndlint [workspace-root]\n\n\
                     Lints crates/*/src/**/*.rs for lock-order cycles, unannotated\n\
                     Ordering::Relaxed, panics in no-panic zones, unplumbed RPC enum\n\
                     variants, and metric names missing from DESIGN.md."
                );
                return ExitCode::SUCCESS;
            }
            other if root.is_none() => root = Some(PathBuf::from(other)),
            other => {
                eprintln!("ndlint: unexpected argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(|| PathBuf::from("."));
    if !root.join("crates").is_dir() {
        eprintln!(
            "ndlint: `{}` does not look like the workspace root (no crates/ dir)",
            root.display()
        );
        return ExitCode::from(2);
    }

    let report = ndlint::run_workspace(&root);
    for f in &report.findings {
        println!("{f}");
    }
    println!("{}", report.summary());
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
