//! ndlint — workspace-wide concurrency & protocol lint pass for the
//! NDPipe reproduction.
//!
//! Six rule families, tuned to the invariants this codebase depends on:
//!
//! 1. `lock_order`   — inter-type lock acquisition graph must be acyclic.
//! 2. `relaxed`      — every `Ordering::Relaxed` outside tests must carry
//!                     `// ndlint: allow(relaxed, reason = "...")`.
//! 3. `panic`        — no `unwrap`/`expect`/`panic!`-family/slice-index in
//!                     designated no-panic zones outside `#[cfg(test)]`.
//! 4. `wire`         — every RPC enum variant must appear in encode,
//!                     decode, and server dispatch.
//! 5. `metric`       — registered metric names are well-formed, kind-
//!                     consistent, and match DESIGN.md's canonical table.
//! 6. `bounded`      — channel construction inside the RPC and NPE trees
//!                     must name a capacity (backpressure, not growth).
//!
//! v2 adds an interprocedural layer — a workspace-wide call graph
//! ([`callgraph`]) with per-function blocking/lock summaries
//! ([`summary`]) — and three rule families on top of it:
//!
//! 7. `blocking`       — no (transitive) blocking op while a `Mutex`/
//!                       `RwLock` guard is held.
//! 8. `event_zone`     — hard zones (the RPC event thread) from which any
//!                       transitively reachable blocking op is a finding.
//! 9. `channel_policy` — every bounded queue declares its overload policy
//!                       (`// ndlint: policy(drop|block|reject, ...)`)
//!                       and send sites match it.
//!
//! Plus directive hygiene: malformed or unknown `// ndlint:` comments are
//! themselves findings, so a typo'd suppression can't silently disable a
//! rule.

pub mod callgraph;
pub mod json;
pub mod lexer;
pub mod rules;
pub mod scan;
pub mod summary;

use scan::SourceFile;
use std::fmt;
use std::path::{Path, PathBuf};

/// Rule names accepted in `// ndlint: allow(<rule>, ...)` directives.
pub const KNOWN_RULES: &[&str] = &[
    "relaxed",
    "panic",
    "lock_order",
    "metric",
    "wire",
    "bounded",
    "blocking",
    "event_zone",
    "channel_policy",
];

/// Stable machine-readable id for a rule family. Ids are append-only:
/// once published in a baseline they never change meaning.
pub fn rule_id(rule: &str) -> &'static str {
    match rule {
        "directive" => "NDL000",
        "lock_order" => "NDL001",
        "relaxed" => "NDL002",
        "panic" => "NDL003",
        "wire" => "NDL004",
        "metric" => "NDL005",
        "bounded" => "NDL006",
        "blocking" => "NDL007",
        "event_zone" => "NDL008",
        "channel_policy" => "NDL009",
        "io" => "NDL098",
        _ => "NDL099",
    }
}

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule family that fired (one of [`KNOWN_RULES`] or `directive`).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (0 when the finding is file-scoped).
    pub col: u32,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// Which functions of a zone file the panic-surface rule covers.
#[derive(Debug, Clone)]
pub enum FnFilter {
    /// Every non-test function in the file.
    All,
    /// Only the named functions (worker/decode hot paths).
    Named(Vec<String>),
}

/// A no-panic zone: file (suffix match on the workspace-relative path)
/// plus the functions covered.
#[derive(Debug, Clone)]
pub struct Zone {
    pub file_suffix: String,
    pub filter: FnFilter,
}

/// One place an enum's variants must all be mentioned.
#[derive(Debug, Clone)]
pub struct WireSite {
    pub file_suffix: String,
    /// Required `impl` target of the function, if any.
    pub impl_target: Option<String>,
    pub fn_name: String,
    /// Short label used in diagnostics ("encode", "dispatch", ...).
    pub label: String,
}

/// Exhaustiveness check: `enum_name` (defined in `enum_file_suffix`) must
/// have every variant mentioned as `Enum::Variant` in each site.
#[derive(Debug, Clone)]
pub struct WireCheck {
    pub enum_file_suffix: String,
    pub enum_name: String,
    pub sites: Vec<WireSite>,
}

/// A canonical metric-name table entry: `(name, kind)` where kind is
/// `counter` | `gauge` | `histogram`.
pub type MetricTable = Vec<(String, String)>;

/// A hard no-blocking zone: the named entry fn and everything reachable
/// from it must be free of blocking primitives (the `event_zone` rule).
#[derive(Debug, Clone)]
pub struct EventZone {
    pub file_suffix: String,
    /// Required `impl` target of the entry fn (`None` = free fn).
    pub impl_target: Option<String>,
    pub fn_name: String,
    /// Diagnostic label ("RPC event thread").
    pub label: String,
}

/// Full analyzer configuration.
#[derive(Debug, Clone, Default)]
pub struct Config {
    pub zones: Vec<Zone>,
    pub wire_checks: Vec<WireCheck>,
    /// Canonical metric table; `None` disables the DESIGN.md cross-check
    /// (name well-formedness and kind consistency still run).
    pub metric_table: Option<MetricTable>,
    /// Path substrings whose files must construct only bounded channels
    /// (the `bounded` rule); empty disables the rule.
    pub bounded_paths: Vec<String>,
    /// No-blocking hard zones (the `event_zone` rule).
    pub event_zones: Vec<EventZone>,
    /// Path substrings whose bounded channels must declare an overload
    /// policy (the `channel_policy` rule); empty disables the rule.
    pub policy_paths: Vec<String>,
}

impl Config {
    /// Configuration for the live NDPipe workspace.
    pub fn workspace() -> Config {
        Config {
            zones: vec![
                Zone {
                    file_suffix: "core/src/rpc/wire.rs".into(),
                    filter: FnFilter::All,
                },
                Zone {
                    file_suffix: "core/src/rpc/server.rs".into(),
                    filter: FnFilter::All,
                },
                // The cluster control plane: a flaky peer must surface
                // as a PeerFailure, never as a Tuner-side panic.
                Zone {
                    file_suffix: "core/src/rpc/cluster.rs".into(),
                    filter: FnFilter::All,
                },
                // The poll(2)/pipe(2) shim under the event loop: a raw
                // syscall error must come back as io::Error, not a panic
                // that kills the only event thread.
                Zone {
                    file_suffix: "core/src/rpc/sys.rs".into(),
                    filter: FnFilter::All,
                },
                Zone {
                    file_suffix: "telemetry/src/snapshot.rs".into(),
                    filter: FnFilter::All,
                },
                // The shared worker pool: every parallel kernel funnels
                // through it, and a panic that escapes the pool's own
                // machinery (rather than being contained per-task and
                // reported as PoolError) would tear down unrelated jobs.
                Zone {
                    file_suffix: "tensor/src/pool.rs".into(),
                    filter: FnFilter::All,
                },
                // NPE worker bodies: a panic here unwinds through a bounded
                // channel send and wedges the pipeline.
                Zone {
                    file_suffix: "core/src/npe/engine.rs".into(),
                    filter: FnFilter::Named(vec![
                        "run_pipeline".into(),
                        "run_pipeline_fallible".into(),
                    ]),
                },
                // Decompress side runs inside the NPE decode pool; corrupt
                // input must surface as Err, not a worker panic.
                Zone {
                    file_suffix: "data/src/deflate.rs".into(),
                    filter: FnFilter::Named(vec![
                        "decompress".into(),
                        "decompress_framed".into(),
                        "decompress_framed_with".into(),
                        "frame_u32".into(),
                        "decode_fixed_block".into(),
                        "decode_fixed_litlen".into(),
                        "read_bits".into(),
                        "read_code_bit".into(),
                        "read_u16_le".into(),
                        "read_raw".into(),
                    ]),
                },
            ],
            wire_checks: vec![
                WireCheck {
                    enum_file_suffix: "core/src/rpc/wire.rs".into(),
                    enum_name: "Request".into(),
                    sites: vec![
                        WireSite {
                            file_suffix: "core/src/rpc/wire.rs".into(),
                            impl_target: Some("Request".into()),
                            fn_name: "encode_body".into(),
                            label: "encode".into(),
                        },
                        WireSite {
                            file_suffix: "core/src/rpc/wire.rs".into(),
                            impl_target: Some("Request".into()),
                            fn_name: "decode_body".into(),
                            label: "decode".into(),
                        },
                        WireSite {
                            file_suffix: "core/src/rpc/server.rs".into(),
                            impl_target: None,
                            fn_name: "handle".into(),
                            label: "server dispatch".into(),
                        },
                    ],
                },
                // Session-opening frames: encode/decode plus the server's
                // greeting, which must consider every handshake shape.
                WireCheck {
                    enum_file_suffix: "core/src/rpc/wire.rs".into(),
                    enum_name: "Handshake".into(),
                    sites: vec![
                        WireSite {
                            file_suffix: "core/src/rpc/wire.rs".into(),
                            impl_target: Some("Handshake".into()),
                            fn_name: "encode_body".into(),
                            label: "encode".into(),
                        },
                        WireSite {
                            file_suffix: "core/src/rpc/wire.rs".into(),
                            impl_target: Some("Handshake".into()),
                            fn_name: "decode_body".into(),
                            label: "decode".into(),
                        },
                        WireSite {
                            file_suffix: "core/src/rpc/server.rs".into(),
                            impl_target: None,
                            fn_name: "greet".into(),
                            label: "server dispatch".into(),
                        },
                    ],
                },
                WireCheck {
                    enum_file_suffix: "core/src/rpc/wire.rs".into(),
                    enum_name: "Reply".into(),
                    sites: vec![
                        WireSite {
                            file_suffix: "core/src/rpc/wire.rs".into(),
                            impl_target: Some("Reply".into()),
                            fn_name: "encode_body".into(),
                            label: "encode".into(),
                        },
                        WireSite {
                            file_suffix: "core/src/rpc/wire.rs".into(),
                            impl_target: Some("Reply".into()),
                            fn_name: "decode_body".into(),
                            label: "decode".into(),
                        },
                    ],
                },
                // Control-plane fan-out ops: a new PeerOp must both get a
                // metric label and reach the wire in `apply`.
                WireCheck {
                    enum_file_suffix: "core/src/rpc/cluster.rs".into(),
                    enum_name: "PeerOp".into(),
                    sites: vec![
                        WireSite {
                            file_suffix: "core/src/rpc/cluster.rs".into(),
                            impl_target: Some("PeerOp".into()),
                            fn_name: "name".into(),
                            label: "metric label".into(),
                        },
                        WireSite {
                            file_suffix: "core/src/rpc/cluster.rs".into(),
                            impl_target: None,
                            fn_name: "apply".into(),
                            label: "peer dispatch".into(),
                        },
                    ],
                },
            ],
            metric_table: None, // filled from DESIGN.md by run_workspace
            // Backpressure zones: the event-driven RPC front door and the
            // NPE pipeline move unbounded request volume through fixed
            // worker pools, so every inter-stage queue must be bounded.
            bounded_paths: vec!["core/src/rpc/".into(), "core/src/npe/".into()],
            // The poll(2) event thread is the only thread driving every
            // connection; anything it transitively calls must not block.
            event_zones: vec![EventZone {
                file_suffix: "core/src/rpc/server.rs".into(),
                impl_target: Some("EventLoop".into()),
                fn_name: "event_loop".into(),
                label: "RPC event thread".into(),
            }],
            // Every bounded queue in the backpressure zones must state
            // its overload policy.
            policy_paths: vec!["core/src/rpc/".into(), "core/src/npe/".into()],
        }
    }
}

/// One suppression directive in force — recorded for provenance so the
/// JSON report shows *what* was waived, *where*, and *why*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// `allow` or `policy`.
    pub form: &'static str,
    /// Rule name (`allow`) or policy kind (`policy`).
    pub target: String,
    pub file: String,
    pub line: u32,
    pub reason: String,
}

/// Result of a full pass.
#[derive(Debug, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
    /// Every well-formed directive in the scanned files (provenance).
    pub suppressions: Vec<Suppression>,
    /// Call-graph size: `(nodes, edges)`.
    pub graph_stats: (usize, usize),
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// One-line summary suitable for CI logs.
    pub fn summary(&self) -> String {
        format!(
            "ndlint: {} finding(s) across {} file(s) scanned \
             ({} fns / {} call edges, {} suppression(s))",
            self.findings.len(),
            self.files_scanned,
            self.graph_stats.0,
            self.graph_stats.1,
            self.suppressions.len(),
        )
    }
}

/// Runs every rule over an already-parsed file set.
pub fn run(files: &[SourceFile], cfg: &Config) -> Report {
    let mut findings = Vec::new();
    for sf in files {
        rules::directives::check(sf, &mut findings);
        rules::relaxed::check(sf, &mut findings);
        rules::bounded::check(sf, cfg, &mut findings);
        rules::panic_surface::check(sf, cfg, &mut findings);
        rules::metric_names::collect(sf, &mut findings);
    }
    let graph = callgraph::build(files);
    let sums = summary::summarize(files, &graph);
    rules::lock_order::check(files, &graph, &sums, &mut findings);
    rules::blocking_lock::check(files, &graph, &sums, cfg, &mut findings);
    rules::channel_policy::check(files, cfg, &mut findings);
    rules::wire_dispatch::check(files, cfg, &mut findings);
    rules::metric_names::check(files, cfg, &mut findings);
    findings
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    findings.dedup();
    let mut suppressions = Vec::new();
    for sf in files {
        for a in &sf.lexed.annotations {
            if a.has_reason {
                suppressions.push(Suppression {
                    form: "allow",
                    target: a.rule.clone(),
                    file: sf.rel.clone(),
                    line: a.line,
                    reason: a.reason.clone(),
                });
            }
        }
        for p in &sf.lexed.policies {
            suppressions.push(Suppression {
                form: "policy",
                target: p.kind.clone(),
                file: sf.rel.clone(),
                line: p.line,
                reason: p.reason.clone(),
            });
        }
    }
    suppressions.sort_by(|a, b| (&a.file, a.line, a.form).cmp(&(&b.file, b.line, b.form)));
    Report {
        findings,
        files_scanned: files.len(),
        suppressions,
        graph_stats: (graph.nodes.len(), graph.edge_count()),
    }
}

/// Parses a set of files from disk. `rel` paths are computed against
/// `root`; unreadable files become file-scoped findings in the returned
/// report rather than panics.
pub fn parse_files(root: &Path, paths: &[PathBuf]) -> (Vec<SourceFile>, Vec<Finding>) {
    let mut files = Vec::new();
    let mut errs = Vec::new();
    for p in paths {
        let rel = p
            .strip_prefix(root)
            .unwrap_or(p)
            .to_string_lossy()
            .replace('\\', "/");
        match std::fs::read_to_string(p) {
            Ok(src) => files.push(SourceFile::parse(p, &rel, &src)),
            Err(e) => errs.push(Finding {
                rule: "io",
                file: rel,
                line: 0,
                col: 0,
                message: format!("unreadable source file: {e}"),
            }),
        }
    }
    (files, errs)
}

/// Walks `<root>/crates/*/src/**/*.rs`, sorted for deterministic output.
pub fn workspace_sources(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    let Ok(entries) = std::fs::read_dir(&crates) else {
        return out;
    };
    let mut crate_dirs: Vec<PathBuf> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        collect_rs(&dir.join("src"), &mut out);
    }
    out.sort();
    out
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let p = entry.path();
        if p.is_dir() {
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Extracts the canonical metric table from DESIGN.md: rows of the
/// markdown table under the `### Canonical metric names` heading, shaped
/// `| \`name\` | kind | ... |`.
pub fn parse_design_metric_table(design: &str) -> Option<MetricTable> {
    let mut in_section = false;
    let mut table = Vec::new();
    for line in design.lines() {
        let trimmed = line.trim();
        if trimmed.starts_with("### ") {
            in_section = trimmed == "### Canonical metric names";
            continue;
        }
        if trimmed.starts_with("## ") || trimmed.starts_with("# ") {
            in_section = false;
            continue;
        }
        if !in_section || !trimmed.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = trimmed
            .trim_matches('|')
            .split('|')
            .map(str::trim)
            .collect();
        if cells.len() < 2 {
            continue;
        }
        let name = cells[0].trim_matches('`');
        let kind = cells[1].to_ascii_lowercase();
        if !name.starts_with("ndpipe_") {
            continue; // header / separator rows
        }
        table.push((name.to_string(), kind));
    }
    if in_section || !table.is_empty() {
        Some(table)
    } else {
        None
    }
}

/// Full workspace pass rooted at `root` (the repo checkout). Reads
/// DESIGN.md for the metric table; a missing table is itself a finding.
pub fn run_workspace(root: &Path) -> Report {
    let mut cfg = Config::workspace();
    let design_path = root.join("DESIGN.md");
    let mut pre_findings = Vec::new();
    match std::fs::read_to_string(&design_path) {
        Ok(text) => match parse_design_metric_table(&text) {
            Some(table) => cfg.metric_table = Some(table),
            None => pre_findings.push(Finding {
                rule: "metric",
                file: "DESIGN.md".into(),
                line: 0,
                col: 0,
                message: "missing `### Canonical metric names` table".into(),
            }),
        },
        Err(e) => pre_findings.push(Finding {
            rule: "metric",
            file: "DESIGN.md".into(),
            line: 0,
            col: 0,
            message: format!("unreadable: {e}"),
        }),
    }
    let paths = workspace_sources(root);
    let (files, io_errs) = parse_files(root, &paths);
    let mut report = run(&files, &cfg);
    report.findings.extend(pre_findings);
    report.findings.extend(io_errs);
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn design_table_parser_extracts_backticked_names() {
        let md = "\
# DESIGN\n\n### Canonical metric names\n\n\
| name | kind | meaning |\n|---|---|---|\n\
| `ndpipe_x_total` | counter | things |\n\
| `ndpipe_y` | gauge | level |\n\n## Next section\n\
| `ndpipe_not_in_table` | counter | outside the section |\n";
        let table = parse_design_metric_table(md).unwrap();
        assert_eq!(
            table,
            vec![
                ("ndpipe_x_total".to_string(), "counter".to_string()),
                ("ndpipe_y".to_string(), "gauge".to_string()),
            ]
        );
    }

    #[test]
    fn design_table_parser_rejects_missing_section() {
        assert!(parse_design_metric_table("# DESIGN\nno table here\n").is_none());
    }
}
