//! Channel-discipline rule: every bounded channel constructed inside the
//! policy paths (the RPC and NPE trees — the same zones the `bounded`
//! rule patrols) must declare what happens when it fills, and its send
//! sites must match the declaration:
//!
//! ```text
//! // ndlint: policy(block, reason = "producer backpressure is the point")
//! let (work_tx, work_rx) = mpsc::sync_channel(cap);
//! ```
//!
//! Policies: `block` (producers stall — blocking `.send` sanctioned),
//! `drop` / `reject` (producers must stay non-blocking — send sites on
//! that channel have to use `try_send`, handling the full-queue case
//! explicitly). Send sites are tied to channels by the sender binding
//! name from the construction's `let (tx_name, ..) = ...` pattern — a
//! lint-grade stand-in for dataflow, which is why sender bindings in the
//! policy paths should carry distinctive names. A policy directive that
//! does not precede a bounded-channel construction is itself a finding,
//! so a stale note can't silently vouch for a channel that moved.

use crate::rules::bounded::is_call;
use crate::scan::SourceFile;
use crate::{Config, Finding};
use std::collections::BTreeMap;

/// Channel constructors that take a capacity.
const BOUNDED_CTORS: &[&str] = &["sync_channel", "bounded"];

pub fn check(files: &[SourceFile], cfg: &Config, out: &mut Vec<Finding>) {
    if cfg.policy_paths.is_empty() {
        return;
    }
    // Pass 1: constructions — collect declared policies per sender name.
    let mut policy_of: BTreeMap<String, String> = BTreeMap::new();
    for sf in files {
        if !cfg.policy_paths.iter().any(|p| sf.rel.contains(p.as_str())) {
            continue;
        }
        let toks = sf.tokens();
        let mut lines = Vec::new();
        for i in 0..toks.len() {
            let Some(name) = toks[i].ident() else { continue };
            if !BOUNDED_CTORS.contains(&name) || !is_call(toks, i + 1) || sf.in_test(i) {
                continue;
            }
            let (line, col) = (toks[i].line, toks[i].col);
            lines.push(line);
            let Some(policy) = sf.policy_at(line) else {
                if sf.allowed("channel_policy", line) {
                    continue;
                }
                out.push(Finding {
                    rule: "channel_policy",
                    file: sf.rel.clone(),
                    line,
                    col,
                    message: format!(
                        "bounded channel (`{name}`) without a declared overload \
                         policy; state what happens when it fills: \
                         `// ndlint: policy(drop|block|reject, reason = ...)`"
                    ),
                });
                continue;
            };
            if let Some(tx) = sender_binding(sf, i) {
                // Two same-named senders with conflicting policies would
                // make send-site checks ambiguous; keep the stricter
                // (non-block) policy and flag the collision.
                match policy_of.get(&tx) {
                    Some(prev) if *prev != policy.kind => out.push(Finding {
                        rule: "channel_policy",
                        file: sf.rel.clone(),
                        line,
                        col,
                        message: format!(
                            "sender binding `{tx}` already carries policy \
                             `{prev}` elsewhere; rename one binding so send \
                             sites resolve to a single policy"
                        ),
                    }),
                    Some(_) => {}
                    None => {
                        policy_of.insert(tx, policy.kind.clone());
                    }
                }
            }
        }
        // Stale policy notes: every `policy(...)` must govern a
        // construction line.
        for note in &sf.lexed.policies {
            let governs = sf
                .directive_target_line(note.line)
                .is_some_and(|l| lines.contains(&l));
            if !governs {
                out.push(Finding {
                    rule: "channel_policy",
                    file: sf.rel.clone(),
                    line: note.line,
                    col: 1,
                    message: format!(
                        "`policy({}, ...)` directive is not attached to a \
                         bounded channel construction; move it to the \
                         `sync_channel`/`bounded` call it vouches for",
                        note.kind
                    ),
                });
            }
        }
    }

    // Pass 2: send sites. Blocking `.send` on a drop/reject channel must
    // become `try_send` with explicit full-queue handling.
    for sf in files {
        if !cfg.policy_paths.iter().any(|p| sf.rel.contains(p.as_str())) {
            continue;
        }
        let toks = sf.tokens();
        for i in 0..toks.len() {
            if !toks[i].is_ident("send")
                || !i.checked_sub(1).is_some_and(|j| toks[j].is_punct('.'))
                || !toks.get(i + 1).is_some_and(|t| t.is_punct('('))
                || sf.in_test(i)
            {
                continue;
            }
            let Some(recv) = i.checked_sub(2).and_then(|j| toks[j].ident()) else {
                continue;
            };
            let Some(kind) = policy_of.get(recv) else {
                continue;
            };
            if kind == "block" {
                continue;
            }
            let (line, col) = (toks[i].line, toks[i].col);
            if sf.allowed("channel_policy", line) {
                continue;
            }
            out.push(Finding {
                rule: "channel_policy",
                file: sf.rel.clone(),
                line,
                col,
                message: format!(
                    "blocking `send` on `{recv}`, whose channel declares \
                     policy `{kind}`; use `try_send` and handle the \
                     full-queue case per the policy"
                ),
            });
        }
    }
}

/// The first binding name of the `let ( name , ...` pattern opening the
/// statement that contains the construction at token `i` — the sender
/// half of `let (tx, rx) = sync_channel(..)`.
fn sender_binding(sf: &SourceFile, i: usize) -> Option<String> {
    let toks = sf.tokens();
    let mut j = i;
    while j > 0 {
        let t = &toks[j - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        j -= 1;
    }
    if !toks.get(j).is_some_and(|t| t.is_ident("let")) {
        return None;
    }
    if !toks.get(j + 1).is_some_and(|t| t.is_punct('(')) {
        return None;
    }
    toks.get(j + 2).and_then(|t| t.ident()).map(str::to_string)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn lint(src: &str) -> Vec<Finding> {
        let cfg = Config {
            policy_paths: vec!["rpc/".into()],
            ..Config::default()
        };
        let files = vec![SourceFile::parse(
            Path::new("/x/rpc/ch.rs"),
            "rpc/ch.rs",
            src,
        )];
        let mut out = Vec::new();
        check(&files, &cfg, &mut out);
        out
    }

    #[test]
    fn undeclared_bounded_channel_fires() {
        let out = lint("fn f() { let (tx, rx) = mpsc::sync_channel(4); }");
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("without a declared overload policy"));
    }

    #[test]
    fn declared_block_policy_sanctions_blocking_send() {
        let out = lint(
            "fn f() {\n\
               // ndlint: policy(block, reason = \"backpressure\")\n\
               let (job_tx, rx) = mpsc::sync_channel(4);\n\
               job_tx.send(1).ok();\n\
             }",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn drop_policy_rejects_blocking_send_even_cross_fn() {
        let out = lint(
            "fn f() {\n\
               // ndlint: policy(drop, reason = \"overload sheds\")\n\
               let (evt_tx, rx) = mpsc::sync_channel(4);\n\
             }\n\
             fn g(s: &Slot) { s.evt_tx.send(1).ok(); }\n\
             fn h(s: &Slot) { let _ = s.evt_tx.try_send(1); }",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("policy `drop`"));
        assert_eq!(out[0].line, 5);
    }

    #[test]
    fn stale_policy_note_fires() {
        let out = lint(
            "fn f() {\n\
               // ndlint: policy(block, reason = \"moved away\")\n\
               let x = 1;\n\
             }",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("not attached"));
    }
}
