//! Panic-surface rule: designated no-panic zones (RPC codec/server,
//! telemetry snapshot codec, NPE worker bodies, the decompress hot path)
//! must not contain `unwrap()`, `expect()`, panicking macros, or slice
//! indexing outside `#[cfg(test)]`. A panic in these paths unwinds through
//! a connection thread or a bounded channel send and wedges the system.

use crate::lexer::Token;
use crate::scan::{SourceFile, KEYWORDS};
use crate::{Config, Finding, FnFilter};

/// Macros that abort the surrounding thread when they fire.
const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

pub fn check(sf: &SourceFile, cfg: &Config, out: &mut Vec<Finding>) {
    for zone in &cfg.zones {
        if !sf.rel.ends_with(&zone.file_suffix) {
            continue;
        }
        for f in &sf.fns {
            if f.is_test {
                continue;
            }
            if let FnFilter::Named(names) = &zone.filter {
                if !names.iter().any(|n| n == &f.name) {
                    continue;
                }
            }
            let Some((open, close)) = f.body else {
                continue;
            };
            scan_body(sf, &f.name, open, close, out);
        }
    }
}

fn scan_body(sf: &SourceFile, fn_name: &str, open: usize, close: usize, out: &mut Vec<Finding>) {
    let toks = sf.tokens();
    for i in open..=close.min(toks.len().saturating_sub(1)) {
        if sf.in_test(i) {
            continue; // nested #[cfg(test)] item inside the fn
        }
        let t = &toks[i];
        let (line, col) = (t.line, t.col);
        let mut hit: Option<String> = None;

        // `.unwrap(` / `.expect(`
        if t.is_punct('.') {
            if let (Some(m), Some(p)) = (toks.get(i + 1), toks.get(i + 2)) {
                if p.is_punct('(') {
                    if m.is_ident("unwrap") {
                        hit = Some("`.unwrap()`".into());
                    } else if m.is_ident("expect") {
                        hit = Some("`.expect()`".into());
                    }
                }
            }
        }

        // `panic!`-family macro invocation (debug_assert* compiles out of
        // release builds and is deliberately not flagged).
        if hit.is_none() {
            if let Some(name) = t.ident() {
                if PANIC_MACROS.contains(&name) && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
                {
                    hit = Some(format!("`{name}!`"));
                }
            }
        }

        // Slice/array indexing: `expr[...]`. The `[` must directly follow
        // an index-able expression tail — an identifier (not a keyword),
        // `)`, or `]`.
        if hit.is_none() && t.is_punct('[') && i > open {
            let prev = &toks[i - 1];
            let indexable = match prev.ident() {
                Some(id) => !KEYWORDS.contains(&id),
                None => prev.is_punct(')') || prev.is_punct(']'),
            };
            if indexable {
                hit = Some("slice indexing".into());
            }
        }

        if let Some(what) = hit {
            if sf.allowed("panic", line) {
                continue;
            }
            out.push(Finding {
                rule: "panic",
                file: sf.rel.clone(),
                line,
                col,
                message: format!(
                    "{what} in no-panic zone fn `{fn_name}`; return an error (or use \
                     `.get()`) — or annotate with `// ndlint: allow(panic, reason = ...)`"
                ),
            });
        }
    }
}

/// Convenience for tests: does the token slice contain a panicking macro
/// name? (Used by fixture assertions.)
pub fn is_panic_macro(tok: &Token) -> bool {
    tok.ident().is_some_and(|n| PANIC_MACROS.contains(&n))
}
