//! Wire/dispatch exhaustiveness: every variant of a protocol enum must be
//! mentioned (as `Enum::Variant`) in each configured site — encoder,
//! decoder, and server dispatch. Adding an RPC op without full plumbing is
//! a lint error, not a runtime `Unknown op`.

use crate::scan::SourceFile;
use crate::{Config, Finding, WireCheck, WireSite};

pub fn check(files: &[SourceFile], cfg: &Config, out: &mut Vec<Finding>) {
    for wc in &cfg.wire_checks {
        run_check(files, wc, out);
    }
}

fn run_check(files: &[SourceFile], wc: &WireCheck, out: &mut Vec<Finding>) {
    let Some(enum_file) = files.iter().find(|f| f.rel.ends_with(&wc.enum_file_suffix)) else {
        return; // enum's file not in the scanned set — nothing to enforce
    };
    let Some((variants, enum_line)) = enum_variants(enum_file, &wc.enum_name) else {
        out.push(Finding {
            rule: "wire",
            file: enum_file.rel.clone(),
            line: 0,
            col: 0,
            message: format!("enum `{}` not found for wire check", wc.enum_name),
        });
        return;
    };
    for site in &wc.sites {
        check_site(files, wc, site, &variants, enum_line, out);
    }
}

fn check_site(
    files: &[SourceFile],
    wc: &WireCheck,
    site: &WireSite,
    variants: &[(String, u32)],
    enum_line: u32,
    out: &mut Vec<Finding>,
) {
    let Some(sf) = files.iter().find(|f| f.rel.ends_with(&site.file_suffix)) else {
        out.push(Finding {
            rule: "wire",
            file: site.file_suffix.clone(),
            line: 0,
            col: 0,
            message: format!(
                "{} site for `{}` not found: file missing from scan set",
                site.label, wc.enum_name
            ),
        });
        return;
    };
    let decl = sf.fns.iter().find(|f| {
        !f.is_test
            && f.name == site.fn_name
            && match &site.impl_target {
                Some(t) => f.impl_target.as_deref() == Some(t.as_str()),
                None => true,
            }
    });
    let Some(decl) = decl else {
        out.push(Finding {
            rule: "wire",
            file: sf.rel.clone(),
            line: 0,
            col: 0,
            message: format!(
                "{} site fn `{}` for `{}` not found in {}",
                site.label, site.fn_name, wc.enum_name, sf.rel
            ),
        });
        return;
    };
    let Some((open, close)) = decl.body else {
        return;
    };
    let toks = sf.tokens();
    let hi = close.min(toks.len().saturating_sub(1));
    for (variant, vline) in variants {
        let mut found = false;
        for i in open..=hi {
            if toks[i].is_ident(&wc.enum_name)
                && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 3).is_some_and(|t| t.is_ident(variant))
            {
                found = true;
                break;
            }
        }
        if found || sf.allowed("wire", decl.line) {
            continue;
        }
        out.push(Finding {
            rule: "wire",
            file: sf.rel.clone(),
            line: decl.line,
            col: 0,
            message: format!(
                "`{}::{}` (declared at line {}) is not handled in {} (`fn {}`); \
                 variant added at enum line {} must be plumbed through every site",
                wc.enum_name, variant, vline, site.label, site.fn_name, enum_line
            ),
        });
    }
}

/// Extracts `(variant, line)` pairs of `enum <name> { ... }`, skipping
/// attribute groups and variant payloads.
fn enum_variants(sf: &SourceFile, name: &str) -> Option<(Vec<(String, u32)>, u32)> {
    let toks = sf.tokens();
    let start = (0..toks.len())
        .find(|&i| toks[i].is_ident("enum") && toks.get(i + 1).is_some_and(|t| t.is_ident(name)))?;
    let open = (start..toks.len()).find(|&i| toks[i].is_punct('{'))?;
    let mut variants = Vec::new();
    let mut depth = 0i32;
    let mut expect_variant = true; // right after `{` or a depth-1 `,`
    let mut i = open;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if depth == 1 {
            if t.is_punct(',') {
                expect_variant = true;
            } else if t.is_punct('#') {
                // attribute on the next variant: skip `#[ ... ]`
                let mut adepth = 0i32;
                let mut j = i + 1;
                while j < toks.len() {
                    if toks[j].is_punct('[') {
                        adepth += 1;
                    } else if toks[j].is_punct(']') {
                        adepth -= 1;
                        if adepth == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                i = j;
            } else if expect_variant {
                if let Some(id) = t.ident() {
                    if id.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                        variants.push((id.to_string(), t.line));
                    }
                    expect_variant = false;
                }
            }
        }
        i += 1;
    }
    Some((variants, toks[start].line))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    #[test]
    fn variant_extraction_skips_payloads_and_attrs() {
        let sf = SourceFile::parse(
            Path::new("/x/wire.rs"),
            "wire.rs",
            "pub enum Op {\n  #[allow(dead_code)]\n  Install { blob: Vec<u8>, epoch: u64 },\n  \
             Extract(Vec<String>),\n  Shutdown,\n}",
        );
        let (variants, line) = enum_variants(&sf, "Op").unwrap();
        let names: Vec<&str> = variants.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["Install", "Extract", "Shutdown"]);
        assert_eq!(line, 1);
    }
}
