//! The nine rule families plus directive hygiene.

pub mod blocking_lock;
pub mod bounded;
pub mod channel_policy;
pub mod directives;
pub mod lock_order;
pub mod metric_names;
pub mod panic_surface;
pub mod relaxed;
pub mod wire_dispatch;
