//! Metric-name consistency: every metric registered in code (via the
//! telemetry registry's `.counter(..)` / `.gauge(..)` / `.histogram(..)`
//! families) must be `ndpipe_`-prefixed snake_case, counters must end in
//! `_total`, a name must keep one kind everywhere, and the set of names
//! must match DESIGN.md's canonical table in both directions.

use crate::scan::SourceFile;
use crate::{Config, Finding};
use std::collections::BTreeMap;

/// Registry constructor methods, mapped to the metric kind they create.
const METHODS: &[(&str, &str)] = &[
    ("counter", "counter"),
    ("counter_with", "counter"),
    ("gauge", "gauge"),
    ("gauge_with", "gauge"),
    ("histogram", "histogram"),
    ("histogram_with", "histogram"),
];

/// One registration site found in code.
#[derive(Debug, Clone)]
pub struct Registration {
    pub name: String,
    pub kind: &'static str,
    pub file: String,
    pub line: u32,
    pub col: u32,
}

/// Per-file pass: find registrations and flag malformed names in place.
/// Well-formed registrations are kept for the cross-file pass.
pub fn collect(sf: &SourceFile, out: &mut Vec<Finding>) {
    for reg in registrations(sf) {
        if sf.allowed("metric", reg.line) {
            continue;
        }
        if let Some(problem) = name_problem(&reg) {
            out.push(Finding {
                rule: "metric",
                file: reg.file.clone(),
                line: reg.line,
                col: reg.col,
                message: problem,
            });
        }
    }
}

/// Cross-file pass: kind consistency plus the bidirectional DESIGN.md
/// table check.
pub fn check(files: &[SourceFile], cfg: &Config, out: &mut Vec<Finding>) {
    let mut by_name: BTreeMap<String, Vec<Registration>> = BTreeMap::new();
    for sf in files {
        for reg in registrations(sf) {
            if sf.allowed("metric", reg.line) {
                continue;
            }
            by_name.entry(reg.name.clone()).or_default().push(reg);
        }
    }

    for (name, regs) in &by_name {
        let first = &regs[0];
        if let Some(conflict) = regs.iter().find(|r| r.kind != first.kind) {
            out.push(Finding {
                rule: "metric",
                file: conflict.file.clone(),
                line: conflict.line,
                col: conflict.col,
                message: format!(
                    "metric `{name}` registered as {} here but as {} at {}:{}",
                    conflict.kind, first.kind, first.file, first.line
                ),
            });
        }
    }

    let Some(table) = &cfg.metric_table else {
        return;
    };
    let table_kinds: BTreeMap<&str, &str> = table
        .iter()
        .map(|(n, k)| (n.as_str(), k.as_str()))
        .collect();

    for (name, regs) in &by_name {
        let first = &regs[0];
        match table_kinds.get(name.as_str()) {
            None => out.push(Finding {
                rule: "metric",
                file: first.file.clone(),
                line: first.line,
                col: first.col,
                message: format!(
                    "metric `{name}` is not listed in DESIGN.md's canonical metric table"
                ),
            }),
            Some(kind) if *kind != first.kind => out.push(Finding {
                rule: "metric",
                file: first.file.clone(),
                line: first.line,
                col: first.col,
                message: format!(
                    "metric `{name}` registered as {} but DESIGN.md lists it as {kind}",
                    first.kind
                ),
            }),
            Some(_) => {}
        }
    }
    for (name, _) in table {
        if !by_name.contains_key(name) {
            out.push(Finding {
                rule: "metric",
                file: "DESIGN.md".into(),
                line: 0,
                col: 0,
                message: format!(
                    "metric `{name}` is listed in DESIGN.md but never registered in code"
                ),
            });
        }
    }
}

fn name_problem(reg: &Registration) -> Option<String> {
    let name = &reg.name;
    if !name.starts_with("ndpipe_") {
        return Some(format!("metric `{name}` must use the `ndpipe_` prefix"));
    }
    let snake = name
        .chars()
        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_');
    if !snake || name.contains("__") || name.ends_with('_') {
        return Some(format!(
            "metric `{name}` is not snake_case ([a-z0-9_], no doubled/trailing underscore)"
        ));
    }
    if reg.kind == "counter" && !name.ends_with("_total") {
        return Some(format!(
            "counter `{name}` must end in `_total` (Prometheus convention)"
        ));
    }
    None
}

/// All non-test metric registrations in a file: `.method("name", ...)`
/// where `method` is a registry constructor and the first argument is a
/// string literal.
pub fn registrations(sf: &SourceFile) -> Vec<Registration> {
    let toks = sf.tokens();
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_punct('.') {
            continue;
        }
        let Some(method) = toks.get(i + 1).and_then(|t| t.ident()) else {
            continue;
        };
        let Some((_, kind)) = METHODS.iter().find(|(m, _)| *m == method) else {
            continue;
        };
        if !toks.get(i + 2).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        let Some(name) = toks.get(i + 3).and_then(|t| t.str_lit()) else {
            continue;
        };
        if sf.in_test(i) {
            continue;
        }
        out.push(Registration {
            name: name.to_string(),
            kind,
            file: sf.rel.clone(),
            line: toks[i + 3].line,
            col: toks[i + 3].col,
        });
    }
    out
}
