//! Lock-order rule: extract the sequence of `.lock()` / `.read()` /
//! `.write()` acquisitions in each function, build the inter-class
//! acquisition graph (class = receiver field/binding name), and fail on
//! cycles — the classic two-function AB/BA deadlock shape.
//!
//! Heuristics, chosen to stay sound-ish without type information:
//! - only zero-argument calls count (`io::Read::read(&mut buf)` has an
//!   argument, `Mutex::lock()` does not);
//! - the receiver class is the identifier token directly before the `.`;
//!   calls on temporaries (`foo().lock()`) are skipped;
//! - same-class pairs are ignored (re-acquiring the same lock is a
//!   different bug class, and guards are usually dropped in between);
//! - an edge can be suppressed at its later acquisition site with
//!   `// ndlint: allow(lock_order, reason = ...)`.

use crate::scan::{SourceFile, KEYWORDS};
use crate::Finding;
use std::collections::{BTreeMap, BTreeSet};

const LOCK_METHODS: &[&str] = &["lock", "read", "write"];

/// One acquisition site.
#[derive(Debug, Clone)]
struct Acq {
    class: String,
    file: String,
    line: u32,
    col: u32,
    fn_name: String,
    method: String,
}

pub fn check(files: &[SourceFile], out: &mut Vec<Finding>) {
    // Collect ordered edges: (earlier class -> later class) with the later
    // acquisition site as the anchor.
    let mut edges: Vec<(String, String, Acq, Acq)> = Vec::new();
    for sf in files {
        for f in &sf.fns {
            if f.is_test {
                continue;
            }
            let Some((open, close)) = f.body else {
                continue;
            };
            let acqs = acquisitions(sf, &f.name, open, close);
            for a in 0..acqs.len() {
                for b in (a + 1)..acqs.len() {
                    if acqs[a].class == acqs[b].class {
                        continue;
                    }
                    if sf.allowed("lock_order", acqs[b].line) {
                        continue;
                    }
                    edges.push((
                        acqs[a].class.clone(),
                        acqs[b].class.clone(),
                        acqs[a].clone(),
                        acqs[b].clone(),
                    ));
                }
            }
        }
    }

    // Adjacency over classes.
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (from, to, _, _) in &edges {
        adj.entry(from).or_default().insert(to);
    }

    // An edge (u, v) participates in a cycle iff v reaches u.
    let mut seen_msgs: BTreeSet<String> = BTreeSet::new();
    for (from, to, first, second) in &edges {
        if !reaches(&adj, to, from) {
            continue;
        }
        let msg = format!(
            "lock-order cycle: `{from}` -> `{to}` (fn `{}` acquires `{to}`.{}() at \
             {}:{} while `{from}`.{}() from {}:{} may be held); another path acquires \
             them in the opposite order",
            second.fn_name,
            second.method,
            first.file,
            second.line,
            first.method,
            first.file,
            first.line,
        );
        if !seen_msgs.insert(msg.clone()) {
            continue;
        }
        out.push(Finding {
            rule: "lock_order",
            file: second.file.clone(),
            line: second.line,
            col: second.col,
            message: msg,
        });
    }
}

fn reaches(adj: &BTreeMap<&str, BTreeSet<&str>>, from: &str, target: &str) -> bool {
    let mut stack = vec![from];
    let mut visited: BTreeSet<&str> = BTreeSet::new();
    while let Some(node) = stack.pop() {
        if node == target {
            return true;
        }
        if !visited.insert(node) {
            continue;
        }
        if let Some(next) = adj.get(node) {
            stack.extend(next.iter().copied());
        }
    }
    false
}

/// Ordered `.lock()`/`.read()`/`.write()` acquisitions inside a fn body.
fn acquisitions(sf: &SourceFile, fn_name: &str, open: usize, close: usize) -> Vec<Acq> {
    let toks = sf.tokens();
    let mut out = Vec::new();
    let hi = close.min(toks.len().saturating_sub(1));
    for i in open..=hi {
        if !toks[i].is_punct('.') || i == open {
            continue;
        }
        let Some(method) = toks.get(i + 1).and_then(|t| t.ident()) else {
            continue;
        };
        if !LOCK_METHODS.contains(&method) {
            continue;
        }
        // Zero-arg call: `( )` directly after the method name.
        if !(toks.get(i + 2).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 3).is_some_and(|t| t.is_punct(')')))
        {
            continue;
        }
        // Receiver class: identifier directly before the `.`.
        let Some(class) = toks[i - 1].ident() else {
            continue;
        };
        if KEYWORDS.contains(&class) {
            continue;
        }
        if sf.in_test(i) {
            continue;
        }
        out.push(Acq {
            class: class.to_string(),
            file: sf.rel.clone(),
            line: toks[i + 1].line,
            col: toks[i + 1].col,
            fn_name: fn_name.to_string(),
            method: method.to_string(),
        });
    }
    out
}
