//! Lock-order rule: build the inter-class lock acquisition graph
//! (class = receiver field/binding name) and fail on cycles — the
//! classic two-function AB/BA deadlock shape.
//!
//! Two edge sources:
//!
//! - **Intra-fn** (the PR 3 pass): the ordered sequence of `.lock()` /
//!   `.read()` / `.write()` acquisitions inside one body contributes an
//!   edge for every earlier→later pair of distinct classes.
//! - **Interprocedural** (v2): a call made while a guard of class `A` is
//!   held contributes edges `A -> B` for every class `B` the callee
//!   *transitively* acquires (per the call-graph summaries) — so the
//!   AB/BA shape is caught even when the two acquisitions sit three
//!   frames apart.
//!
//! Heuristics, chosen to stay sound-ish without type information:
//! - only zero-argument calls count (`io::Read::read(&mut buf)` has an
//!   argument, `Mutex::lock()` does not);
//! - the receiver class is the identifier token directly before the `.`;
//!   calls on temporaries (`foo().lock()`) are skipped;
//! - same-class pairs are ignored (re-acquiring the same lock is a
//!   different bug class, and guards are usually dropped in between);
//! - an edge can be suppressed at its anchor site (the later acquisition,
//!   or the call that imports the callee's acquisitions) with
//!   `// ndlint: allow(lock_order, reason = ...)`.

use crate::callgraph::CallGraph;
use crate::scan::SourceFile;
use crate::summary::{lock_sites, FnSummary};
use crate::Finding;
use std::collections::{BTreeMap, BTreeSet};

/// One acquisition-order edge, with its diagnostic anchor.
#[derive(Debug, Clone)]
struct Edge {
    from: String,
    to: String,
    file: String,
    line: u32,
    col: u32,
    message: String,
}

pub fn check(
    files: &[SourceFile],
    graph: &CallGraph,
    sums: &[FnSummary],
    out: &mut Vec<Finding>,
) {
    let mut edges: Vec<Edge> = Vec::new();

    // Intra-fn ordered pairs.
    for sf in files {
        for f in &sf.fns {
            if f.is_test {
                continue;
            }
            let Some((open, close)) = f.body else {
                continue;
            };
            let acqs = lock_sites(sf, open, close);
            for a in 0..acqs.len() {
                for b in (a + 1)..acqs.len() {
                    if acqs[a].class == acqs[b].class {
                        continue;
                    }
                    if sf.allowed("lock_order", acqs[b].line) {
                        continue;
                    }
                    edges.push(Edge {
                        from: acqs[a].class.clone(),
                        to: acqs[b].class.clone(),
                        file: sf.rel.clone(),
                        line: acqs[b].line,
                        col: acqs[b].col,
                        message: format!(
                            "fn `{}` acquires `{}`.{}() at {}:{} while `{}`.{}() \
                             from {}:{} may be held",
                            f.name,
                            acqs[b].class,
                            acqs[b].method,
                            sf.rel,
                            acqs[b].line,
                            acqs[a].class,
                            acqs[a].method,
                            sf.rel,
                            acqs[a].line,
                        ),
                    });
                }
            }
        }
    }

    // Interprocedural: calls under a held guard import the callee's
    // transitive acquisition classes.
    for (id, node) in graph.nodes.iter().enumerate() {
        let sf = &files[node.file];
        for region in &sums[id].held {
            for site in &graph.calls[id] {
                if site.tok < region.start || site.tok > region.end {
                    continue;
                }
                if sf.allowed("lock_order", site.line) {
                    continue;
                }
                for class in sums[site.callee].lock_classes.keys() {
                    if *class == region.class {
                        continue;
                    }
                    edges.push(Edge {
                        from: region.class.clone(),
                        to: class.clone(),
                        file: sf.rel.clone(),
                        line: site.line,
                        col: site.col,
                        message: format!(
                            "fn `{}` calls `{}` at {}:{}, which transitively \
                             acquires `{}`, while the `{}` guard from line {} \
                             is held",
                            node.name,
                            graph.nodes[site.callee].name,
                            sf.rel,
                            site.line,
                            class,
                            region.class,
                            region.acq_line,
                        ),
                    });
                }
            }
        }
    }

    // Adjacency over classes; an edge (u, v) is a finding iff v reaches u.
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in &edges {
        adj.entry(&e.from).or_default().insert(&e.to);
    }
    let mut seen_msgs: BTreeSet<String> = BTreeSet::new();
    for e in &edges {
        if !reaches(&adj, &e.to, &e.from) {
            continue;
        }
        let msg = format!(
            "lock-order cycle: `{}` -> `{}` ({}); another path acquires them \
             in the opposite order",
            e.from, e.to, e.message
        );
        if !seen_msgs.insert(msg.clone()) {
            continue;
        }
        out.push(Finding {
            rule: "lock_order",
            file: e.file.clone(),
            line: e.line,
            col: e.col,
            message: msg,
        });
    }
}

fn reaches(adj: &BTreeMap<&str, BTreeSet<&str>>, from: &str, target: &str) -> bool {
    let mut stack = vec![from];
    let mut visited: BTreeSet<&str> = BTreeSet::new();
    while let Some(node) = stack.pop() {
        if node == target {
            return true;
        }
        if !visited.insert(node) {
            continue;
        }
        if let Some(next) = adj.get(node) {
            stack.extend(next.iter().copied());
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph;
    use crate::summary;
    use std::path::Path;

    fn lint(src: &str) -> Vec<Finding> {
        let files = vec![SourceFile::parse(Path::new("/x/lo.rs"), "lo.rs", src)];
        let g = callgraph::build(&files);
        let sums = summary::summarize(&files, &g);
        let mut out = Vec::new();
        check(&files, &g, &sums, &mut out);
        out
    }

    #[test]
    fn intra_fn_ab_ba_cycle_still_fires() {
        let out = lint(
            "fn f(a: &L, b: &L) { let x = a.lock(); let y = b.lock(); }\n\
             fn g(a: &L, b: &L) { let y = b.lock(); let x = a.lock(); }",
        );
        assert!(!out.is_empty());
        assert!(out.iter().all(|f| f.rule == "lock_order"));
    }

    #[test]
    fn transitive_ab_ba_cycle_fires_across_fns() {
        let out = lint(
            "fn takes_b() { let g = b_lock.lock(); }\n\
             fn takes_a() { let g = a_lock.lock(); }\n\
             fn f() { let g = a_lock.lock(); takes_b(); }\n\
             fn h() { let g = b_lock.lock(); takes_a(); }",
        );
        assert!(!out.is_empty(), "interprocedural cycle must be seen");
        assert!(
            out.iter().any(|f| f.message.contains("transitively acquires")),
            "{out:?}"
        );
    }

    #[test]
    fn consistent_transitive_order_is_clean() {
        let out = lint(
            "fn takes_b() { let g = b_lock.lock(); }\n\
             fn f() { let g = a_lock.lock(); takes_b(); }\n\
             fn h() { let g = a_lock.lock(); takes_b(); }",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn call_site_suppression_silences_imported_edge() {
        let out = lint(
            "fn takes_b() { let g = b_lock.lock(); }\n\
             fn takes_a() { let g = a_lock.lock(); }\n\
             fn f() {\n\
               let g = a_lock.lock();\n\
               // ndlint: allow(lock_order, reason = \"tested hand-off\")\n\
               takes_b();\n\
             }\n\
             fn h() {\n\
               let g = b_lock.lock();\n\
               // ndlint: allow(lock_order, reason = \"tested hand-off\")\n\
               takes_a();\n\
             }",
        );
        assert!(out.is_empty(), "{out:?}");
    }
}
