//! Directive hygiene: a typo'd `// ndlint:` comment must not silently
//! disable a rule, so malformed directives, unknown rule names, and
//! reason-less allows are all findings in their own right.

use crate::scan::SourceFile;
use crate::{Finding, KNOWN_RULES};

pub fn check(sf: &SourceFile, out: &mut Vec<Finding>) {
    for (line, why) in &sf.lexed.malformed {
        out.push(Finding {
            rule: "directive",
            file: sf.rel.clone(),
            line: *line,
            col: 0,
            message: format!("malformed ndlint directive: {why}"),
        });
    }
    for ann in &sf.lexed.annotations {
        if !KNOWN_RULES.contains(&ann.rule.as_str()) {
            out.push(Finding {
                rule: "directive",
                file: sf.rel.clone(),
                line: ann.line,
                col: 0,
                message: format!(
                    "unknown rule `{}` in ndlint allow (known: {})",
                    ann.rule,
                    KNOWN_RULES.join(", ")
                ),
            });
        } else if !ann.has_reason {
            out.push(Finding {
                rule: "directive",
                file: sf.rel.clone(),
                line: ann.line,
                col: 0,
                message: format!(
                    "allow({}) without a reason; write `// ndlint: allow({}, reason = \"...\")`",
                    ann.rule, ann.rule
                ),
            });
        }
    }
}
