//! Interprocedural blocking rules, built on the call graph + summaries:
//!
//! - `blocking` — no function may perform a blocking operation, directly
//!   or through any callee, while a `Mutex`/`RwLock` guard is live. A
//!   guard held across a channel send, socket read, or file write turns
//!   every other thread that wants the lock into a hostage of the slow
//!   peer on the far side. Findings anchor at the blocking call site
//!   (where the fix or the `// ndlint: allow(blocking, reason = ...)`
//!   suppression belongs), and carry the transitive witness chain.
//! - `event_zone` — hard zones: functions (e.g. the RPC event thread's
//!   `EventLoop::event_loop`) from which *any* transitively reachable blocking
//!   primitive is a finding, held lock or not. The event thread is the
//!   only thread driving every connection; one blocking call stalls the
//!   whole fleet's I/O. Findings anchor at the primitive itself so the
//!   suppression (`allow(event_zone, ...)`) documents the specific site
//!   (e.g. a read on a socket already set nonblocking).

use crate::callgraph::CallGraph;
use crate::scan::SourceFile;
use crate::summary::{blocking_chain, FnSummary};
use crate::{Config, Finding};
use std::collections::BTreeMap;

pub fn check(
    files: &[SourceFile],
    graph: &CallGraph,
    sums: &[FnSummary],
    cfg: &Config,
    out: &mut Vec<Finding>,
) {
    blocking_under_lock(files, graph, sums, out);
    event_zones(files, graph, sums, cfg, out);
}

fn blocking_under_lock(
    files: &[SourceFile],
    graph: &CallGraph,
    sums: &[FnSummary],
    out: &mut Vec<Finding>,
) {
    for (id, node) in graph.nodes.iter().enumerate() {
        let sf = &files[node.file];
        let s = &sums[id];
        for region in &s.held {
            // Direct primitives inside the guard's extent.
            for p in &s.prims {
                if p.tok < region.start || p.tok > region.end {
                    continue;
                }
                if sf.allowed("blocking", p.line) {
                    continue;
                }
                out.push(Finding {
                    rule: "blocking",
                    file: sf.rel.clone(),
                    line: p.line,
                    col: p.col,
                    message: format!(
                        "{} (`{}`) while `{}` guard from line {} is held; \
                         snapshot-then-drop the guard first, or annotate \
                         `// ndlint: allow(blocking, reason = ...)`",
                        p.kind.label(),
                        p.what,
                        region.class,
                        region.acq_line,
                    ),
                });
            }
            // Calls inside the extent whose callee (transitively) blocks.
            for site in &graph.calls[id] {
                if site.tok < region.start || site.tok > region.end {
                    continue;
                }
                let callee = &sums[site.callee];
                let Some((&kind, _)) = callee.blocking.iter().next() else {
                    continue;
                };
                if sf.allowed("blocking", site.line) {
                    continue;
                }
                let chain = blocking_chain(graph, files, sums, site.callee, kind);
                out.push(Finding {
                    rule: "blocking",
                    file: sf.rel.clone(),
                    line: site.line,
                    col: site.col,
                    message: format!(
                        "call to `{}` may block ({} via {}) while `{}` guard \
                         from line {} is held; drop the guard before the call, \
                         or annotate `// ndlint: allow(blocking, reason = ...)`",
                        graph.nodes[site.callee].name,
                        kind.label(),
                        chain,
                        region.class,
                        region.acq_line,
                    ),
                });
            }
        }
    }
}

fn event_zones(
    files: &[SourceFile],
    graph: &CallGraph,
    sums: &[FnSummary],
    cfg: &Config,
    out: &mut Vec<Finding>,
) {
    for zone in &cfg.event_zones {
        // Resolve the entry node.
        let entries: Vec<usize> = graph
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| {
                files[n.file].rel.ends_with(&zone.file_suffix)
                    && n.name == zone.fn_name
                    && match &zone.impl_target {
                        Some(t) => n.impl_target.as_deref() == Some(t),
                        None => n.impl_target.is_none(),
                    }
            })
            .map(|(id, _)| id)
            .collect();
        if entries.is_empty() {
            out.push(Finding {
                rule: "event_zone",
                file: zone.file_suffix.clone(),
                line: 0,
                col: 0,
                message: format!(
                    "event zone entry `{}` not found — the zone config is \
                     stale and the {} is unprotected",
                    zone.fn_name, zone.label,
                ),
            });
            continue;
        }
        // BFS over call edges, tracking one parent per node for chains.
        let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue: Vec<usize> = entries.clone();
        let mut seen: Vec<bool> = vec![false; graph.nodes.len()];
        for &e in &entries {
            seen[e] = true;
        }
        while let Some(id) = queue.pop() {
            for site in &graph.calls[id] {
                if !seen[site.callee] {
                    seen[site.callee] = true;
                    parent.insert(site.callee, id);
                    queue.push(site.callee);
                }
            }
        }
        for (id, node) in graph.nodes.iter().enumerate() {
            if !seen[id] {
                continue;
            }
            let sf = &files[node.file];
            for p in &sums[id].prims {
                if sf.allowed("event_zone", p.line) {
                    continue;
                }
                let path = chain_to(graph, &parent, id);
                out.push(Finding {
                    rule: "event_zone",
                    file: sf.rel.clone(),
                    line: p.line,
                    col: p.col,
                    message: format!(
                        "{} (`{}`) is reachable from the {} ({}); the event \
                         thread must never block — hand the work to a worker \
                         queue, or annotate \
                         `// ndlint: allow(event_zone, reason = ...)`",
                        p.kind.label(),
                        p.what,
                        zone.label,
                        path,
                    ),
                });
            }
        }
        // Contended `.lock()` calls also stall the zone, but flagging
        // every acquisition would make it unusable — the runtime witness
        // sanitizer covers lock stalls dynamically instead.
    }
}

/// Renders `entry -> ... -> node` from the BFS parent map.
fn chain_to(graph: &CallGraph, parent: &BTreeMap<usize, usize>, mut id: usize) -> String {
    let mut names = vec![format!("`{}`", graph.nodes[id].name)];
    for _ in 0..32 {
        let Some(&p) = parent.get(&id) else { break };
        names.push(format!("`{}`", graph.nodes[p].name));
        id = p;
    }
    names.reverse();
    names.join(" -> ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph;
    use crate::summary;
    use crate::EventZone;
    use std::path::Path;

    fn lint(src: &str, cfg: &Config) -> Vec<Finding> {
        let files = vec![SourceFile::parse(Path::new("/x/bl.rs"), "bl.rs", src)];
        let g = callgraph::build(&files);
        let sums = summary::summarize(&files, &g);
        let mut out = Vec::new();
        check(&files, &g, &sums, cfg, &mut out);
        out
    }

    #[test]
    fn transitive_blocking_under_guard_fires_with_chain() {
        let out = lint(
            "fn leaf(tx: &S) { tx.send(1).ok(); }\n\
             fn mid() { leaf(t); }\n\
             fn top(m: &L) { let g = m.lock(); mid(); }",
            &Config::default(),
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "blocking");
        assert!(out[0].message.contains("`mid` -> `leaf`"), "{}", out[0].message);
    }

    #[test]
    fn snapshot_then_drop_is_clean() {
        let out = lint(
            "fn top(m: &L, tx: &S) { let v = { let g = m.lock(); g.snap() }; \
             tx.send(v).ok(); }",
            &Config::default(),
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn event_zone_flags_all_reachable_primitives() {
        let cfg = Config {
            event_zones: vec![EventZone {
                file_suffix: "bl.rs".into(),
                impl_target: Some("Ev".into()),
                fn_name: "run".into(),
                label: "test event thread".into(),
            }],
            ..Config::default()
        };
        let out = lint(
            "struct Ev;\n\
             impl Ev { fn run(&self) { self.step(); }\n\
                       fn step(&self) { helper(); } }\n\
             fn helper() { std::thread::sleep(d); }\n\
             fn unrelated(tx: &S) { tx.send(1).ok(); }",
            &cfg,
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "event_zone");
        assert!(
            out[0].message.contains("`run` -> `step` -> `helper`"),
            "{}",
            out[0].message
        );
    }

    #[test]
    fn missing_zone_entry_is_itself_a_finding() {
        let cfg = Config {
            event_zones: vec![EventZone {
                file_suffix: "bl.rs".into(),
                impl_target: None,
                fn_name: "no_such_fn".into(),
                label: "test zone".into(),
            }],
            ..Config::default()
        };
        let out = lint("fn f() {}", &cfg);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("stale"));
    }
}
