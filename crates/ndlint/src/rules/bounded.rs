//! Bounded-queue audit: channel construction inside the designated
//! backpressure zones (the RPC front door and the NPE pipeline) must
//! name a capacity. An unbounded queue between stages turns a slow
//! consumer into silent memory growth instead of backpressure, so
//! `mpsc::channel()` / `crossbeam::channel::unbounded()` are findings
//! there; `sync_channel(cap)` / `bounded(cap)` are the sanctioned
//! constructors. Escape hatch: `// ndlint: allow(bounded, reason = ...)`.

use crate::lexer::Token;
use crate::scan::SourceFile;
use crate::{Config, Finding};

pub fn check(sf: &SourceFile, cfg: &Config, out: &mut Vec<Finding>) {
    if !cfg
        .bounded_paths
        .iter()
        .any(|p| sf.rel.contains(p.as_str()))
    {
        return;
    }
    let toks = sf.tokens();
    for i in 0..toks.len() {
        let Some(name) = toks[i].ident() else {
            continue;
        };
        // `sync_channel` and `bounded` are distinct identifier tokens and
        // never match; `crossbeam::channel::bounded` has `channel`
        // followed by `::`, not a call.
        let fires = match name {
            "channel" | "unbounded" => is_call(toks, i + 1),
            _ => false,
        };
        if !fires || sf.in_test(i) {
            continue;
        }
        let (line, col) = (toks[i].line, toks[i].col);
        if sf.allowed("bounded", line) {
            continue;
        }
        out.push(Finding {
            rule: "bounded",
            file: sf.rel.clone(),
            line,
            col,
            message: format!(
                "unbounded channel constructor `{name}` in a backpressure zone; \
                 use `sync_channel(cap)` / `bounded(cap)` so a slow consumer \
                 stalls its producer instead of growing the queue, or annotate \
                 `// ndlint: allow(bounded, reason = ...)`"
            ),
        });
    }
}

/// Whether the tokens at `j` begin a call: `(` directly, or a turbofish
/// `::<...>` followed by `(`.
pub(crate) fn is_call(toks: &[Token], mut j: usize) -> bool {
    if toks.get(j).is_some_and(|t| t.is_punct('(')) {
        return true;
    }
    let turbofish = toks.get(j).is_some_and(|t| t.is_punct(':'))
        && toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(j + 2).is_some_and(|t| t.is_punct('<'));
    if !turbofish {
        return false;
    }
    j += 3;
    let mut depth = 1i32;
    while j < toks.len() && depth > 0 {
        if toks[j].is_punct('<') {
            depth += 1;
        } else if toks[j].is_punct('>') {
            depth -= 1;
        }
        j += 1;
    }
    toks.get(j).is_some_and(|t| t.is_punct('('))
}
