//! Atomic-ordering audit: every `Ordering::Relaxed` outside `#[cfg(test)]`
//! must be annotated `// ndlint: allow(relaxed, reason = "...")`. Pure
//! monotonic counters earn the annotation; cross-stage signalling must be
//! rewritten to Acquire/Release instead.

use crate::scan::SourceFile;
use crate::Finding;

pub fn check(sf: &SourceFile, out: &mut Vec<Finding>) {
    let toks = sf.tokens();
    for i in 3..toks.len() {
        if !toks[i].is_ident("Relaxed") {
            continue;
        }
        if !(toks[i - 1].is_punct(':')
            && toks[i - 2].is_punct(':')
            && toks[i - 3].is_ident("Ordering"))
        {
            continue;
        }
        if sf.in_test(i) {
            continue;
        }
        let (line, col) = (toks[i].line, toks[i].col);
        if sf.allowed("relaxed", line) {
            continue;
        }
        out.push(Finding {
            rule: "relaxed",
            file: sf.rel.clone(),
            line,
            col,
            message: "Ordering::Relaxed without `// ndlint: allow(relaxed, reason = ...)`; \
                      use Acquire/Release for cross-thread handoff, or annotate a pure counter"
                .into(),
        });
    }
}
