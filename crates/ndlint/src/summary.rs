//! Per-function behaviour summaries, propagated transitively over the
//! call graph.
//!
//! Two facts are summarized per fn:
//!
//! - **Blocking primitives** performed directly in the body: channel
//!   send/recv, `thread::sleep`, `.join()`, socket `connect`, buffered
//!   socket/file reads & writes, and `std::fs` operations (the table in
//!   [`prim_of`]). Everything a fn *transitively* blocks on is the union
//!   of its own primitives and its callees' sets, computed to fixpoint —
//!   monotone by construction, so adding a call can only grow a summary.
//! - **Lock classes acquired** (`recv.lock()` / `.read()` / `.write()`
//!   zero-arg calls, classed by receiver identifier exactly like the
//!   `lock_order` rule), again closed transitively.
//!
//! For diagnostics each transitive fact carries a *witness*: the direct
//! call site it entered through, so a finding can print the chain
//! `handle -> extract_features_batched -> run_pipeline: recv()`.
//!
//! The module also computes **held regions**: token ranges of a body
//! during which a lock guard is live. Guard extent heuristics:
//! temporaries (`x.lock().push(..)`) end at the statement's `;`;
//! let-bound guards end at the enclosing block's `}` or at an explicit
//! `drop(name)`, whichever comes first; guards created in `if let` /
//! `match` heads end with the statement (≈ the construct's block).

use crate::callgraph::CallGraph;
use crate::scan::{SourceFile, KEYWORDS};
use std::collections::BTreeMap;

/// Kinds of blocking primitives the analysis models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum BlockKind {
    /// Blocking bounded-channel send (`.send(..)`).
    ChanSend,
    /// Blocking channel receive (`.recv()` / `.recv_timeout(..)`).
    ChanRecv,
    /// `thread::sleep` (any `sleep(..)` call).
    Sleep,
    /// Thread join (`.join()` zero-arg).
    Join,
    /// Socket connect (`connect(..)` / `TcpStream::connect`).
    Connect,
    /// Buffered stream I/O: `.read(buf)` / `.write(buf)` with args,
    /// `.read_exact` / `.write_all` / `.flush()` / `.read_to_end`.
    SocketIo,
    /// Filesystem I/O: `fs::*`, `File::open/create`, `.sync_all()`.
    FileIo,
}

impl BlockKind {
    /// Short label used in diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            BlockKind::ChanSend => "channel send",
            BlockKind::ChanRecv => "channel recv",
            BlockKind::Sleep => "thread::sleep",
            BlockKind::Join => "thread join",
            BlockKind::Connect => "socket connect",
            BlockKind::SocketIo => "stream I/O",
            BlockKind::FileIo => "file I/O",
        }
    }
}

/// A blocking primitive performed directly in a fn body.
#[derive(Debug, Clone)]
pub struct Primitive {
    pub kind: BlockKind,
    /// Token index of the operation's name.
    pub tok: usize,
    pub line: u32,
    pub col: u32,
    /// The identifier that triggered classification (for messages).
    pub what: String,
}

/// A lock acquisition site directly in a fn body.
#[derive(Debug, Clone)]
pub struct LockSite {
    /// Receiver identifier (the lock "class").
    pub class: String,
    /// `lock` / `read` / `write`.
    pub method: String,
    /// Token index of the method name.
    pub tok: usize,
    pub line: u32,
    pub col: u32,
}

/// A token range of a body during which a lock guard is live.
#[derive(Debug, Clone)]
pub struct HeldRegion {
    pub class: String,
    /// Token index of the acquisition.
    pub acq_tok: usize,
    pub acq_line: u32,
    /// First token index after the acquisition covered by the guard.
    pub start: usize,
    /// Last token index (inclusive) covered by the guard.
    pub end: usize,
}

/// How a transitive fact entered a fn: directly, or through a call.
#[derive(Debug, Clone, Copy)]
pub enum Via {
    /// The fn performs the primitive itself at this token.
    Direct { tok: usize, line: u32, col: u32 },
    /// Inherited from `callee`, first reached through the call at
    /// `(line, col)`.
    Call { callee: usize, line: u32, col: u32 },
}

/// Everything summarized about one call-graph node.
#[derive(Debug, Clone, Default)]
pub struct FnSummary {
    /// Direct blocking primitives, in body order.
    pub prims: Vec<Primitive>,
    /// Direct lock acquisitions, in body order.
    pub locks: Vec<LockSite>,
    /// Guard-held token ranges of the body.
    pub held: Vec<HeldRegion>,
    /// Transitive blocking kinds with one witness each.
    pub blocking: BTreeMap<BlockKind, Via>,
    /// Transitive lock classes acquired, with one witness each.
    pub lock_classes: BTreeMap<String, Via>,
}

/// Summaries for every node of `graph`, fully propagated.
pub fn summarize(files: &[SourceFile], graph: &CallGraph) -> Vec<FnSummary> {
    let mut out: Vec<FnSummary> = Vec::with_capacity(graph.nodes.len());
    for (id, node) in graph.nodes.iter().enumerate() {
        let sf = &files[node.file];
        let decl = &sf.fns[node.decl];
        let mut s = FnSummary::default();
        if let Some((open, close)) = decl.body {
            s.prims = primitives(sf, open, close);
            s.locks = lock_sites(sf, open, close);
            s.held = held_regions(sf, &s.locks, open, close);
        }
        for p in &s.prims {
            s.blocking.entry(p.kind).or_insert(Via::Direct {
                tok: p.tok,
                line: p.line,
                col: p.col,
            });
        }
        for l in &s.locks {
            s.lock_classes.entry(l.class.clone()).or_insert(Via::Direct {
                tok: l.tok,
                line: l.line,
                col: l.col,
            });
        }
        let _ = id;
        out.push(s);
    }
    // Fixpoint: union callee sets into callers until nothing changes.
    // Worst case O(nodes * edges * kinds); the workspace converges in a
    // handful of rounds because chains are shallow.
    loop {
        let mut changed = false;
        for id in 0..graph.nodes.len() {
            for site in &graph.calls[id] {
                if site.callee == id {
                    continue;
                }
                let (callee_blocking, callee_classes) = {
                    let c = &out[site.callee];
                    (
                        c.blocking.keys().copied().collect::<Vec<_>>(),
                        c.lock_classes.keys().cloned().collect::<Vec<_>>(),
                    )
                };
                let caller = &mut out[id];
                for k in callee_blocking {
                    if !caller.blocking.contains_key(&k) {
                        caller.blocking.insert(
                            k,
                            Via::Call {
                                callee: site.callee,
                                line: site.line,
                                col: site.col,
                            },
                        );
                        changed = true;
                    }
                }
                for c in callee_classes {
                    if !caller.lock_classes.contains_key(&c) {
                        caller.lock_classes.insert(
                            c,
                            Via::Call {
                                callee: site.callee,
                                line: site.line,
                                col: site.col,
                            },
                        );
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            return out;
        }
    }
}

/// Renders the witness chain for `kind` starting at node `id`, e.g.
/// `extract_features_batched -> run_pipeline: channel recv at engine.rs:258`.
pub fn blocking_chain(
    graph: &CallGraph,
    files: &[SourceFile],
    sums: &[FnSummary],
    mut id: usize,
    kind: BlockKind,
) -> String {
    let mut hops: Vec<String> = Vec::new();
    for _ in 0..32 {
        let Some(via) = sums[id].blocking.get(&kind) else {
            break;
        };
        match *via {
            Via::Direct { line, .. } => {
                let n = &graph.nodes[id];
                hops.push(format!(
                    "`{}` ({}:{})",
                    n.name, files[n.file].rel, line
                ));
                break;
            }
            Via::Call { callee, .. } => {
                hops.push(format!("`{}`", graph.nodes[id].name));
                id = callee;
            }
        }
    }
    hops.join(" -> ")
}

const IO_METHODS: &[&str] = &["read_exact", "write_all", "read_to_end", "read_to_string"];
const FS_METHODS: &[&str] = &["sync_all", "sync_data", "set_len"];

/// Classifies the token at `i` as a blocking primitive, if it is one.
fn prim_of(sf: &SourceFile, i: usize) -> Option<BlockKind> {
    let toks = sf.tokens();
    let name = toks[i].ident()?;
    let after_dot = i > 0 && toks[i - 1].is_punct('.');
    let is_call = toks.get(i + 1).is_some_and(|t| t.is_punct('('));
    if !is_call {
        return None;
    }
    let zero_arg = toks.get(i + 2).is_some_and(|t| t.is_punct(')'));
    let after_path = i >= 2 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':');
    let path_head = |back: usize| {
        i.checked_sub(back)
            .and_then(|j| toks.get(j))
            .and_then(|t| t.ident())
    };
    match name {
        "send" if after_dot && !zero_arg => Some(BlockKind::ChanSend),
        "recv" if after_dot && zero_arg => Some(BlockKind::ChanRecv),
        "recv_timeout" if after_dot => Some(BlockKind::ChanRecv),
        "sleep" => Some(BlockKind::Sleep),
        "join" if after_dot && zero_arg => Some(BlockKind::Join),
        "connect" | "connect_timeout" => Some(BlockKind::Connect),
        "read" | "write" if after_dot && !zero_arg => Some(BlockKind::SocketIo),
        "flush" if after_dot && zero_arg => Some(BlockKind::SocketIo),
        n if IO_METHODS.contains(&n) && after_dot => Some(BlockKind::SocketIo),
        n if FS_METHODS.contains(&n) && after_dot && zero_arg => Some(BlockKind::FileIo),
        "open" | "create" | "create_new" if after_path && path_head(3) == Some("File") => {
            Some(BlockKind::FileIo)
        }
        _ if after_path && path_head(3) == Some("fs") => Some(BlockKind::FileIo),
        _ => None,
    }
}

/// Direct blocking primitives inside a body, test regions excluded.
fn primitives(sf: &SourceFile, open: usize, close: usize) -> Vec<Primitive> {
    let toks = sf.tokens();
    let hi = close.min(toks.len().saturating_sub(1));
    let mut out = Vec::new();
    for i in (open + 1)..hi {
        if sf.in_test(i) {
            continue;
        }
        if let Some(kind) = prim_of(sf, i) {
            out.push(Primitive {
                kind,
                tok: i,
                line: toks[i].line,
                col: toks[i].col,
                what: toks[i].ident().unwrap_or("?").to_string(),
            });
        }
    }
    out
}

/// Direct lock acquisitions inside a body (the `lock_order` heuristics:
/// zero-arg `.lock()` / `.read()` / `.write()` with an identifier
/// receiver), test regions excluded.
pub fn lock_sites(sf: &SourceFile, open: usize, close: usize) -> Vec<LockSite> {
    const LOCK_METHODS: &[&str] = &["lock", "read", "write"];
    let toks = sf.tokens();
    let hi = close.min(toks.len().saturating_sub(1));
    let mut out = Vec::new();
    for i in (open + 1)..hi {
        if !toks[i].is_punct('.') {
            continue;
        }
        let Some(method) = toks.get(i + 1).and_then(|t| t.ident()) else {
            continue;
        };
        if !LOCK_METHODS.contains(&method) {
            continue;
        }
        if !(toks.get(i + 2).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 3).is_some_and(|t| t.is_punct(')')))
        {
            continue;
        }
        let Some(class) = i.checked_sub(1).and_then(|j| toks[j].ident()) else {
            continue;
        };
        if KEYWORDS.contains(&class) || sf.in_test(i) {
            continue;
        }
        out.push(LockSite {
            class: class.to_string(),
            method: method.to_string(),
            tok: i + 1,
            line: toks[i + 1].line,
            col: toks[i + 1].col,
        });
    }
    out
}

/// Computes the guard-held token range for each acquisition.
fn held_regions(
    sf: &SourceFile,
    locks: &[LockSite],
    open: usize,
    close: usize,
) -> Vec<HeldRegion> {
    let toks = sf.tokens();
    let mut out = Vec::new();
    for l in locks {
        // The acquisition expression ends at the `)` of the zero-arg
        // call: tok is the method name, +2 is `)`.
        let acq_end = (l.tok + 2).min(close);
        // Statement start: walk back to the nearest `;`, `{` or `}`.
        let mut start = l.tok;
        while start > open {
            let t = &toks[start - 1];
            if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
                break;
            }
            start -= 1;
        }
        let binding = binding_name(toks, start, l.tok);
        let block_close = sf
            .enclosing_block(l.tok)
            .map(|(_, c)| c)
            .unwrap_or(close)
            .min(close);
        let end = match &binding {
            Some(name) => {
                // Held to `drop(name)` inside the block, else block end.
                let mut e = block_close;
                let mut j = acq_end;
                while j + 2 <= block_close {
                    if toks[j].is_ident("drop")
                        && toks[j + 1].is_punct('(')
                        && toks[j + 2].is_ident(name)
                    {
                        e = j;
                        break;
                    }
                    j += 1;
                }
                e
            }
            None => {
                // Temporary: held to the end of the statement. Besides
                // `;`, a `,` at depth 0 ends it (a match-arm body or an
                // argument position — under-approximating the tail of
                // the statement beats leaking the guard into the next
                // arm), as does leaving the enclosing brace or paren.
                let mut brace = 0i32;
                let mut paren = 0i32;
                let mut e = block_close;
                let mut j = acq_end + 1;
                while j < block_close {
                    let t = &toks[j];
                    if t.is_punct('{') {
                        brace += 1;
                    } else if t.is_punct('}') {
                        brace -= 1;
                        if brace < 0 {
                            e = j;
                            break;
                        }
                    } else if t.is_punct('(') {
                        paren += 1;
                    } else if t.is_punct(')') {
                        paren -= 1;
                        if paren < 0 {
                            e = j;
                            break;
                        }
                    } else if (t.is_punct(';') || t.is_punct(',')) && brace == 0 && paren <= 0 {
                        e = j;
                        break;
                    }
                    j += 1;
                }
                e
            }
        };
        if end > acq_end {
            out.push(HeldRegion {
                class: l.class.clone(),
                acq_tok: l.tok,
                acq_line: l.line,
                start: acq_end + 1,
                end,
            });
        }
    }
    out
}

/// If the statement starting at `start` binds the acquisition at
/// `acq_tok` with `let [mut] name = <receiver-path>.lock()`, the binding
/// name. The RHS up to the acquisition must be a bare receiver path — a
/// `(` in between (`let r = Arc::clone(m.lock().x())`) means the guard
/// is a temporary inside a larger expression, not the bound value.
fn binding_name(toks: &[crate::lexer::Token], start: usize, acq_tok: usize) -> Option<String> {
    if !toks.get(start).is_some_and(|t| t.is_ident("let")) {
        return None;
    }
    let mut j = start + 1;
    if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
        j += 1;
    }
    let name = toks.get(j).and_then(|t| t.ident())?;
    // A destructuring pattern (`let (a, b) = ..` / `let Some(x) = ..`)
    // is not a simple guard binding; treat as temporary.
    if toks.get(j + 1).is_some_and(|t| t.is_punct('(')) || name.chars().next()?.is_uppercase() {
        return None;
    }
    // The `=` must come before the acquisition...
    let eq = (j + 1..acq_tok).find(|&k| toks[k].is_punct('='))?;
    // ...and the receiver path between them must be call-free. The
    // receiver ident sits at `acq_tok - 2` (before the `.method`).
    let recv = acq_tok.checked_sub(2)?;
    if (eq + 1..recv).any(|k| toks[k].is_punct('(')) {
        return None;
    }
    // A method chain continuing past the acquisition
    // (`let s = m.lock().clone()`) binds the derived value; the guard
    // itself is a temporary dropped at the statement's end.
    if toks.get(acq_tok + 3).is_some_and(|t| t.is_punct('.')) {
        return None;
    }
    Some(name.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph;
    use std::path::Path;

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse(Path::new("/x/sum.rs"), "sum.rs", src)
    }

    fn summary_of<'a>(
        files: &[SourceFile],
        g: &'a CallGraph,
        sums: &'a [FnSummary],
        name: &str,
    ) -> &'a FnSummary {
        let _ = files;
        let id = g.nodes.iter().position(|n| n.name == name).unwrap();
        &sums[id]
    }

    #[test]
    fn direct_primitives_classify() {
        let files = vec![parse(
            "fn f(tx: &S, rx: &R, s: &mut T) {\n\
               tx.send(1).ok(); let _ = rx.recv();\n\
               std::thread::sleep(d); h.join().ok();\n\
               s.write_all(b).ok(); s.flush().ok();\n\
               let m = std::fs::read(p); File::open(p).ok();\n\
             }",
        )];
        let g = callgraph::build(&files);
        let sums = summarize(&files, &g);
        let s = summary_of(&files, &g, &sums, "f");
        let kinds: Vec<BlockKind> = s.blocking.keys().copied().collect();
        assert_eq!(
            kinds,
            vec![
                BlockKind::ChanSend,
                BlockKind::ChanRecv,
                BlockKind::Sleep,
                BlockKind::Join,
                BlockKind::SocketIo,
                BlockKind::FileIo,
            ]
        );
    }

    #[test]
    fn lock_read_write_zero_arg_is_not_io() {
        let files = vec![parse(
            "fn f(m: &L) { let g = m.read(); let h = m.write(); }",
        )];
        let g = callgraph::build(&files);
        let sums = summarize(&files, &g);
        let s = summary_of(&files, &g, &sums, "f");
        assert!(s.blocking.is_empty());
        assert_eq!(s.locks.len(), 2);
    }

    #[test]
    fn blocking_propagates_transitively() {
        let files = vec![parse(
            "fn a() { b(); }\nfn b() { c(); }\nfn c() { std::thread::sleep(d); }",
        )];
        let g = callgraph::build(&files);
        let sums = summarize(&files, &g);
        let a = summary_of(&files, &g, &sums, "a");
        assert!(a.blocking.contains_key(&BlockKind::Sleep));
        let chain = blocking_chain(&g, &files, &sums, 0, BlockKind::Sleep);
        assert!(chain.contains("`a`") && chain.contains("`c`"), "{chain}");
    }

    #[test]
    fn temporary_guard_ends_at_statement() {
        let files = vec![parse(
            "fn f(m: &L, tx: &S) { m.write().push(1); tx.send(2).ok(); }",
        )];
        let g = callgraph::build(&files);
        let sums = summarize(&files, &g);
        let s = summary_of(&files, &g, &sums, "f");
        assert_eq!(s.held.len(), 1);
        // The send's token must be outside the held region.
        let send_tok = s.prims.iter().find(|p| p.kind == BlockKind::ChanSend).unwrap().tok;
        assert!(send_tok > s.held[0].end);
    }

    #[test]
    fn let_bound_guard_ends_at_drop_or_block() {
        let files = vec![parse(
            "fn f(m: &L, tx: &S) { let g = m.lock(); drop(g); tx.send(1).ok(); }\n\
             fn h(m: &L, tx: &S) { let g = m.lock(); tx.send(1).ok(); }",
        )];
        let g = callgraph::build(&files);
        let sums = summarize(&files, &g);
        let f = summary_of(&files, &g, &sums, "f");
        let send_tok = f.prims.iter().find(|p| p.kind == BlockKind::ChanSend).unwrap().tok;
        assert!(send_tok > f.held[0].end, "drop(g) releases before send");
        let h = summary_of(&files, &g, &sums, "h");
        let send_tok = h.prims.iter().find(|p| p.kind == BlockKind::ChanSend).unwrap().tok;
        assert!(
            send_tok <= h.held[0].end,
            "no drop: guard held to block end"
        );
    }
}
