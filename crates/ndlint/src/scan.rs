//! Block/expression scanning on top of the lexer: brace matching,
//! `#[cfg(test)]` region discovery, `impl` targets, function extents,
//! and annotation (suppression) resolution.

use crate::lexer::{lex, Lexed, PolicyNote, Token};
use std::path::{Path, PathBuf};

/// Rust keywords that can directly precede `[` without it being an
/// index expression (`let [a, b] = ...`, `match x { [..] => ... }`).
pub const KEYWORDS: &[&str] = &[
    "as", "box", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "fn",
    "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "self", "static", "struct", "super", "trait", "type", "unsafe", "use", "where",
    "while", "yield",
];

/// One `fn` item found in a file.
#[derive(Debug, Clone)]
pub struct FnDecl {
    /// Function name.
    pub name: String,
    /// Enclosing `impl` target type (innermost), if any.
    pub impl_target: Option<String>,
    /// Token index of the `fn` keyword.
    pub kw_idx: usize,
    /// Token-index range of the body: `(open_brace, close_brace)`,
    /// inclusive. `None` for bodyless declarations (trait methods).
    pub body: Option<(usize, usize)>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Whether the fn sits inside a `#[cfg(test)]` region or carries
    /// `#[test]`.
    pub is_test: bool,
}

/// A lexed-and-scanned source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Absolute path on disk.
    pub path: PathBuf,
    /// Workspace-relative path with forward slashes (diagnostics).
    pub rel: String,
    /// Lexer output.
    pub lexed: Lexed,
    /// All functions, in source order.
    pub fns: Vec<FnDecl>,
    /// Token-index ranges (inclusive) covered by `#[cfg(test)]`.
    pub test_ranges: Vec<(usize, usize)>,
    /// For each `{` token index, the index of its matching `}`.
    pub braces: Vec<Option<usize>>,
}

impl SourceFile {
    /// Lexes and scans one file's source text.
    pub fn parse(path: &Path, rel: &str, src: &str) -> SourceFile {
        let lexed = lex(src);
        let matches = match_braces(&lexed.tokens);
        let test_ranges = find_test_ranges(&lexed.tokens, &matches);
        let impls = find_impls(&lexed.tokens, &matches);
        let fns = find_fns(&lexed.tokens, &matches, &impls, &test_ranges);
        SourceFile {
            path: path.to_path_buf(),
            rel: rel.to_string(),
            lexed,
            fns,
            test_ranges,
            braces: matches,
        }
    }

    /// Tokens of this file.
    pub fn tokens(&self) -> &[Token] {
        &self.lexed.tokens
    }

    /// Whether token index `i` lies inside a `#[cfg(test)]` region.
    pub fn in_test(&self, i: usize) -> bool {
        self.test_ranges.iter().any(|&(a, b)| i >= a && i <= b)
    }

    /// Whether a finding of `rule` at `line` is suppressed by an
    /// `ndlint: allow(rule, reason = ...)` directive on the same line or
    /// the directly preceding comment line(s).
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        self.lexed.annotations.iter().any(|a| {
            a.rule == rule && a.has_reason && {
                // Trailing on the flagged line, or a standalone comment
                // line (no code tokens of its own) directly above it.
                a.line == line
                    || (a.line < line
                        && !self.has_code(a.line)
                        && self.next_code_line(a.line) == Some(line))
            }
        })
    }

    /// The `ndlint: policy(...)` directive governing `line`, if any: a
    /// policy on the same line, or on a standalone comment line directly
    /// above it (the same placement rule as [`SourceFile::allowed`]).
    pub fn policy_at(&self, line: u32) -> Option<&PolicyNote> {
        self.lexed.policies.iter().find(|p| {
            p.line == line
                || (p.line < line
                    && !self.has_code(p.line)
                    && self.next_code_line(p.line) == Some(line))
        })
    }

    /// The innermost `{` block strictly containing token `i`, as
    /// `(open, close)` token indices — `None` at item level.
    pub fn enclosing_block(&self, i: usize) -> Option<(usize, usize)> {
        self.braces
            .iter()
            .enumerate()
            .filter_map(|(open, close)| close.map(|c| (open, c)))
            .filter(|&(open, close)| open < i && i < close)
            .max_by_key(|&(open, _)| open)
    }

    /// The code line a directive on `line` governs: the line itself when
    /// it holds code (trailing comment), else the next line with code.
    pub fn directive_target_line(&self, line: u32) -> Option<u32> {
        if self.has_code(line) {
            Some(line)
        } else {
            self.next_code_line(line)
        }
    }

    /// Whether any token sits on `line` (i.e. the line holds code, not
    /// just a comment).
    fn has_code(&self, line: u32) -> bool {
        self.lexed.tokens.iter().any(|t| t.line == line)
    }

    /// First line strictly after `line` that has any token on it.
    fn next_code_line(&self, line: u32) -> Option<u32> {
        self.lexed
            .tokens
            .iter()
            .map(|t| t.line)
            .filter(|&l| l > line)
            .min()
    }
}

/// For each `{` token index, the index of its matching `}`. Unbalanced
/// input matches to the last token.
fn match_braces(tokens: &[Token]) -> Vec<Option<usize>> {
    let mut map = vec![None; tokens.len()];
    let mut stack: Vec<usize> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.is_punct('{') {
            stack.push(i);
        } else if t.is_punct('}') {
            if let Some(open) = stack.pop() {
                map[open] = Some(i);
            }
        }
    }
    let last = tokens.len().saturating_sub(1);
    for open in stack {
        map[open] = Some(last);
    }
    map
}

/// Finds `#[cfg(test)]` attributes and marks the token range of the item
/// body that follows (its first brace block).
fn find_test_ranges(tokens: &[Token], matches: &[Option<usize>]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 6 < tokens.len() {
        let hit = tokens[i].is_punct('#')
            && tokens[i + 1].is_punct('[')
            && tokens[i + 2].is_ident("cfg")
            && tokens[i + 3].is_punct('(')
            && tokens[i + 4].is_ident("test")
            && tokens[i + 5].is_punct(')')
            && tokens[i + 6].is_punct(']');
        if hit {
            // The guarded item's body: the next `{` before any `;`.
            let mut j = i + 7;
            let mut guard = 0usize;
            while j < tokens.len() && guard < 4096 {
                if tokens[j].is_punct('{') {
                    if let Some(close) = matches[j] {
                        out.push((i, close));
                    }
                    break;
                }
                if tokens[j].is_punct(';') {
                    break; // `#[cfg(test)] mod tests;` — no inline body
                }
                j += 1;
                guard += 1;
            }
        }
        i += 1;
    }
    out
}

/// `impl` blocks: `(body_open, body_close, target type name)`.
fn find_impls(tokens: &[Token], matches: &[Option<usize>]) -> Vec<(usize, usize, String)> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if !t.is_ident("impl") {
            continue;
        }
        // Header runs to the block `{`; generics live in <...>.
        let mut angle = 0i32;
        let mut after_for = false;
        let mut head: Vec<&str> = Vec::new();
        let mut tail: Vec<&str> = Vec::new();
        let mut j = i + 1;
        while j < tokens.len() {
            let tok = &tokens[j];
            if tok.is_punct('{') && angle <= 0 {
                let Some(close) = matches[j] else { break };
                let target = if after_for { tail.last() } else { head.last() };
                if let Some(name) = target {
                    out.push((j, close, name.to_string()));
                }
                break;
            }
            if tok.is_punct(';') {
                break;
            }
            if tok.is_punct('<') {
                angle += 1;
            } else if tok.is_punct('>') {
                angle -= 1;
            } else if tok.is_ident("for") {
                after_for = true;
            } else if tok.is_ident("where") {
                // `impl<T> Foo<T> where T: Bar {` — stop collecting names.
            } else if let Some(id) = tok.ident() {
                if angle <= 0 {
                    if after_for {
                        tail.push(id);
                    } else {
                        head.push(id);
                    }
                }
            }
            j += 1;
        }
    }
    out
}

fn find_fns(
    tokens: &[Token],
    matches: &[Option<usize>],
    impls: &[(usize, usize, String)],
    test_ranges: &[(usize, usize)],
) -> Vec<FnDecl> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if !t.is_ident("fn") {
            continue;
        }
        let Some(name_tok) = tokens.get(i + 1) else {
            continue;
        };
        let Some(name) = name_tok.ident() else {
            continue;
        };
        // Body: first `{` after the signature at paren depth 0, stopping
        // at `;` (bodyless) — angle depth is ignored because `->` types
        // keep parens balanced.
        let mut paren = 0i32;
        let mut body = None;
        let mut j = i + 2;
        while j < tokens.len() {
            let tok = &tokens[j];
            if tok.is_punct('(') {
                paren += 1;
            } else if tok.is_punct(')') {
                paren -= 1;
            } else if tok.is_punct('{') && paren <= 0 {
                if let Some(close) = matches[j] {
                    body = Some((j, close));
                }
                break;
            } else if tok.is_punct(';') && paren <= 0 {
                break;
            }
            j += 1;
        }
        // Innermost impl containing this fn.
        let impl_target = impls
            .iter()
            .filter(|&&(open, close, _)| i > open && i < close)
            .max_by_key(|&&(open, _, _)| open)
            .map(|(_, _, name)| name.clone());
        let in_cfg_test = test_ranges.iter().any(|&(a, b)| i >= a && i <= b);
        // `#[test]` attribute directly above.
        let has_test_attr = i >= 3
            && tokens[i - 3].is_punct('#')
            && tokens[i - 2].is_punct('[')
            && tokens[i - 1].is_ident("test");
        out.push(FnDecl {
            name: name.to_string(),
            impl_target,
            kw_idx: i,
            body,
            line: t.line,
            is_test: in_cfg_test || has_test_attr,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse(Path::new("/x/test.rs"), "test.rs", src)
    }

    #[test]
    fn finds_fns_with_impl_targets() {
        let sf = parse(
            "impl<'a> Cursor<'a> { fn take(&mut self) {} }\n\
             impl std::fmt::Display for DeflateError { fn fmt(&self) {} }\n\
             fn free() {}",
        );
        let names: Vec<(String, Option<String>)> = sf
            .fns
            .iter()
            .map(|f| (f.name.clone(), f.impl_target.clone()))
            .collect();
        assert_eq!(names[0], ("take".into(), Some("Cursor".into())));
        assert_eq!(names[1], ("fmt".into(), Some("DeflateError".into())));
        assert_eq!(names[2], ("free".into(), None));
    }

    #[test]
    fn cfg_test_regions_cover_mod_bodies() {
        let sf = parse(
            "fn live() { x.unwrap(); }\n\
             #[cfg(test)]\nmod tests {\n  fn helper() {}\n  #[test]\n  fn t() {}\n}",
        );
        assert_eq!(sf.test_ranges.len(), 1);
        let live = sf.fns.iter().find(|f| f.name == "live").unwrap();
        assert!(!live.is_test);
        for name in ["helper", "t"] {
            let f = sf.fns.iter().find(|f| f.name == name).unwrap();
            assert!(f.is_test, "{name} must be in the test region");
        }
    }

    #[test]
    fn fn_bodies_span_their_braces() {
        let sf = parse("fn f(a: u32) -> Vec<(u32, u32)> { if a > 0 { } }");
        let f = &sf.fns[0];
        let (open, close) = f.body.unwrap();
        assert!(sf.tokens()[open].is_punct('{'));
        assert!(sf.tokens()[close].is_punct('}'));
        assert_eq!(close, sf.tokens().len() - 1);
    }

    #[test]
    fn bodyless_trait_fns() {
        let sf = parse("trait T { fn sig(&self) -> u32; fn with_body(&self) {} }");
        assert_eq!(sf.fns[0].body, None);
        assert!(sf.fns[1].body.is_some());
    }

    #[test]
    fn suppression_applies_to_same_and_next_line() {
        let sf = parse(
            "// ndlint: allow(relaxed, reason = \"why\")\n\
             let a = x.load(Ordering::Relaxed);\n\
             let b = y.load(Ordering::Relaxed); // ndlint: allow(relaxed, reason = \"why\")\n\
             let c = z.load(Ordering::Relaxed);",
        );
        assert!(sf.allowed("relaxed", 2));
        assert!(sf.allowed("relaxed", 3));
        assert!(!sf.allowed("relaxed", 4));
        assert!(!sf.allowed("panic", 2), "rule name must match");
    }
}
