//! Workspace-wide call graph over the scanned file set.
//!
//! Name resolution is lint-grade, not compiler-grade: it works from the
//! lexer/scan layer only, so it cannot see types. The resolution rules,
//! chosen to stay *conservative* (an edge we are unsure about is added,
//! so transitive summaries over-approximate rather than miss):
//!
//! - **Free calls** `foo(...)` resolve to every free fn named `foo` in
//!   the workspace (module paths are invisible to the scanner).
//! - **Path calls** `Type::foo(...)` resolve to the fns named `foo`
//!   inside an `impl Type`; an unknown `Type` resolves to nothing (it is
//!   std or a vendored dep, whose blocking behaviour is modelled by the
//!   primitive table in [`crate::summary`], not by edges).
//! - **Method calls** `recv.foo(...)` resolve by receiver heuristics:
//!   `self.foo(...)` prefers the enclosing `impl`'s own `foo`; a
//!   receiver whose identifier matches an impl target name (modulo
//!   case/underscores, e.g. `decoder` → `Decoder`) narrows to that type;
//!   anything else widens to *every* impl fn named `foo` — the
//!   trait-object/dyn-call treatment.
//! - **Ubiquitous std method names** (`len`, `push`, `get`, `clone`,
//!   ...) are never widened: without type information, `.get(...)` on a
//!   slab would otherwise grow an edge to every workspace type that
//!   happens to define `get`, and the graph would drown in false paths.
//!   They still resolve exactly through `self.` and `Type::` calls.
//!
//! Every edge targets a *defined* workspace fn by construction — calls
//! into std/vendored code produce no edges (the proptests in
//! `tests/callgraph_props.rs` pin this down).

use crate::scan::{SourceFile, KEYWORDS};
use std::collections::BTreeMap;

/// Method names too generic to widen across impls (std collection / trait
/// vocabulary). Exact `self.`/`Type::` resolution still applies to them.
pub const UBIQUITOUS_METHODS: &[&str] = &[
    "all", "any", "as_mut", "as_ref", "chain", "clear", "clone", "cloned", "cmp", "collect",
    "contains", "contains_key", "count", "default", "drain", "enumerate", "eq", "extend",
    "filter", "filter_map", "find", "first", "flatten", "fmt", "get", "get_mut", "hash", "insert",
    "into", "into_iter", "is_empty", "iter", "iter_mut", "keys", "last", "len", "map", "max",
    "max_by_key", "min", "min_by_key", "name", "new", "next", "pop", "position", "push", "read",
    "remove", "rev", "set", "sort", "sort_unstable", "split", "sum", "take", "to_string",
    "to_vec", "trim", "values", "with_capacity", "write", "zip",
];

/// One fn definition in the graph.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Index into the scanned file slice.
    pub file: usize,
    /// Index into that file's `fns`.
    pub decl: usize,
    /// Fn name (duplicated out of the decl for cheap lookups).
    pub name: String,
    /// Enclosing impl target, if any.
    pub impl_target: Option<String>,
}

/// One resolved call site inside a caller's body.
#[derive(Debug, Clone, Copy)]
pub struct CallSite {
    /// Node id of the callee.
    pub callee: usize,
    /// Token index of the callee name in the caller's file.
    pub tok: usize,
    /// 1-based line of the call.
    pub line: u32,
    /// 1-based column of the call.
    pub col: u32,
}

/// The workspace call graph: nodes in deterministic (file, decl) order,
/// plus per-node resolved call sites in body token order.
#[derive(Debug, Default)]
pub struct CallGraph {
    pub nodes: Vec<FnNode>,
    /// `calls[n]` = resolved call sites inside node `n`'s body.
    pub calls: Vec<Vec<CallSite>>,
}

impl CallGraph {
    /// Node id of the fn declared at `(file, decl)`, if it was indexed.
    pub fn node_of(&self, file: usize, decl: usize) -> Option<usize> {
        // Nodes are pushed in (file, decl) order; binary search works.
        self.nodes
            .binary_search_by_key(&(file, decl), |n| (n.file, n.decl))
            .ok()
    }

    /// Total number of resolved edges (call sites).
    pub fn edge_count(&self) -> usize {
        self.calls.iter().map(Vec::len).sum()
    }
}

/// Case/underscore-insensitive key for the receiver-name → type-name
/// heuristic: `frame_decoder` matches `FrameDecoder`.
fn loose_key(s: &str) -> String {
    s.chars()
        .filter(|c| *c != '_')
        .map(|c| c.to_ascii_lowercase())
        .collect()
}

/// Builds the call graph over `files`. Deterministic: nodes follow the
/// input file order, candidate lists are sorted by node id.
pub fn build(files: &[SourceFile]) -> CallGraph {
    let mut g = CallGraph::default();
    // Indexes: name -> free-fn nodes, name -> method nodes,
    // (type, name) -> nodes, loose(type) -> type.
    let mut free_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut methods_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut by_type_method: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    let mut loose_types: BTreeMap<String, &str> = BTreeMap::new();

    for (fi, sf) in files.iter().enumerate() {
        for (di, f) in sf.fns.iter().enumerate() {
            if f.is_test {
                continue; // test-only fns are neither callers nor callees
            }
            g.nodes.push(FnNode {
                file: fi,
                decl: di,
                name: f.name.clone(),
                impl_target: f.impl_target.clone(),
            });
        }
    }
    for (id, n) in g.nodes.iter().enumerate() {
        match &n.impl_target {
            None => free_by_name.entry(n.name.as_str()).or_default().push(id),
            Some(t) => {
                methods_by_name.entry(n.name.as_str()).or_default().push(id);
                by_type_method
                    .entry((t.as_str(), n.name.as_str()))
                    .or_default()
                    .push(id);
                loose_types.entry(loose_key(t)).or_insert(t.as_str());
            }
        }
    }

    g.calls = vec![Vec::new(); g.nodes.len()];
    for (id, node) in g.nodes.iter().enumerate() {
        let sf = &files[node.file];
        let decl = &sf.fns[node.decl];
        let Some((open, close)) = decl.body else {
            continue;
        };
        let toks = sf.tokens();
        let hi = close.min(toks.len().saturating_sub(1));
        let mut sites = Vec::new();
        for i in (open + 1)..hi {
            let Some(name) = toks[i].ident() else { continue };
            if KEYWORDS.contains(&name) || sf.in_test(i) {
                continue;
            }
            // Must be a call: `(` directly after (turbofish is rare in
            // this workspace's call sites and is handled as non-call).
            if !toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
                continue;
            }
            // Not a macro (`name!(`), not a definition (`fn name(`).
            if toks.get(i.wrapping_sub(1)).is_some_and(|t| t.is_ident("fn")) {
                continue;
            }
            let prev = i.checked_sub(1).map(|j| &toks[j]);
            let prev2 = i.checked_sub(2).map(|j| &toks[j]);
            let prev3 = i.checked_sub(3).map(|j| &toks[j]);
            let candidates: Vec<usize> = if prev.is_some_and(|t| t.is_punct('.')) {
                // Method call: receiver heuristics.
                let recv = prev2.and_then(|t| t.ident());
                if recv == Some("self") {
                    match &node.impl_target {
                        Some(t) => by_type_method
                            .get(&(t.as_str(), name))
                            .cloned()
                            .unwrap_or_else(|| widened(&methods_by_name, name)),
                        None => widened(&methods_by_name, name),
                    }
                } else if let Some(t) =
                    recv.and_then(|r| loose_types.get(&loose_key(r)).copied())
                {
                    by_type_method
                        .get(&(t, name))
                        .cloned()
                        .unwrap_or_else(|| widened(&methods_by_name, name))
                } else {
                    widened(&methods_by_name, name)
                }
            } else if prev.is_some_and(|t| t.is_punct(':')) && prev2.is_some_and(|t| t.is_punct(':'))
            {
                // Path call `Seg::name(...)`: exact when `Seg` is a known
                // impl target, otherwise no edge (std / module path).
                match prev3.and_then(|t| t.ident()) {
                    Some(seg) => by_type_method.get(&(seg, name)).cloned().unwrap_or_default(),
                    None => Vec::new(),
                }
            } else {
                free_by_name.get(name).cloned().unwrap_or_default()
            };
            for callee in candidates {
                sites.push(CallSite {
                    callee,
                    tok: i,
                    line: toks[i].line,
                    col: toks[i].col,
                });
            }
        }
        g.calls[id] = sites;
    }
    g
}

/// Widened method resolution: every impl fn with this name, except for
/// ubiquitous std vocabulary (see [`UBIQUITOUS_METHODS`]).
fn widened(methods_by_name: &BTreeMap<&str, Vec<usize>>, name: &str) -> Vec<usize> {
    if UBIQUITOUS_METHODS.contains(&name) {
        return Vec::new();
    }
    methods_by_name.get(name).cloned().unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse(Path::new("/x/cg.rs"), "cg.rs", src)
    }

    fn names_called_by(g: &CallGraph, files: &[SourceFile], caller: &str) -> Vec<String> {
        let id = g
            .nodes
            .iter()
            .position(|n| n.name == caller)
            .expect("caller defined");
        let mut out: Vec<String> = g.calls[id]
            .iter()
            .map(|c| g.nodes[c.callee].name.clone())
            .collect();
        let _ = files;
        out.sort();
        out.dedup();
        out
    }

    #[test]
    fn free_and_path_and_self_calls_resolve() {
        let files = vec![parse(
            "fn helper() {}\n\
             struct S;\n\
             impl S { fn m(&self) { self.inner(); helper(); S::assoc(); }\n\
                      fn inner(&self) {} fn assoc() {} }\n\
             fn top() { helper(); std::thread::sleep(d); }",
        )];
        let g = build(&files);
        assert_eq!(names_called_by(&g, &files, "m"), ["assoc", "helper", "inner"]);
        // `sleep` is not defined in the workspace: no edge.
        assert_eq!(names_called_by(&g, &files, "top"), ["helper"]);
    }

    #[test]
    fn unknown_receiver_widens_but_ubiquitous_names_do_not() {
        let files = vec![parse(
            "struct A; struct B;\n\
             impl A { fn refresh(&self) {} fn get(&self) {} }\n\
             impl B { fn refresh(&self) {} }\n\
             fn top(x: &X) { x.refresh(); x.get(); }",
        )];
        let g = build(&files);
        let top = g.nodes.iter().position(|n| n.name == "top").unwrap();
        // refresh widens to both impls; `get` is ubiquitous -> no edge.
        assert_eq!(g.calls[top].len(), 2);
        assert_eq!(names_called_by(&g, &files, "top"), ["refresh"]);
    }

    #[test]
    fn receiver_name_matching_a_type_narrows() {
        let files = vec![parse(
            "struct Decoder; struct Encoder;\n\
             impl Decoder { fn step(&self) {} }\n\
             impl Encoder { fn step(&self) {} }\n\
             fn top(decoder: &Decoder) { decoder.step(); }",
        )];
        let g = build(&files);
        let top = g.nodes.iter().position(|n| n.name == "top").unwrap();
        assert_eq!(g.calls[top].len(), 1);
        let callee = &g.nodes[g.calls[top][0].callee];
        assert_eq!(callee.impl_target.as_deref(), Some("Decoder"));
    }

    #[test]
    fn macros_and_definitions_are_not_calls() {
        let files = vec![parse(
            "fn helper() {}\nfn top() { println!(\"helper()\"); format!(\"{}\", 1); }",
        )];
        let g = build(&files);
        let top = g.nodes.iter().position(|n| n.name == "top").unwrap();
        assert!(g.calls[top].is_empty());
    }

    #[test]
    fn every_edge_targets_a_defined_node() {
        let files = vec![parse(
            "fn a() { b(); missing(); }\nfn b() { a(); x.undefined_method(); }",
        )];
        let g = build(&files);
        for sites in &g.calls {
            for s in sites {
                assert!(s.callee < g.nodes.len());
            }
        }
    }
}
