//! Machine-readable output: the JSON report, and the checked-in finding
//! baseline that lets CI fail on *new* findings while keeping
//! grandfathered ones explicit and visible.
//!
//! Everything here is hand-rolled — ndlint stays zero-dependency so it
//! can never be broken by the code it audits. The report is rendered
//! from already-sorted data and contains no timestamps or absolute
//! paths, so two runs over the same tree are byte-identical (pinned by
//! `tests/ndlint_workspace.rs`).
//!
//! Baseline format: a JSON array with one object per line, each keyed by
//! `(rule, file, message)` — line numbers are deliberately excluded so
//! unrelated edits above a grandfathered finding do not churn the file.

use crate::{rule_id, Finding, Report};
use std::collections::BTreeSet;

/// Escapes a string for inclusion in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn finding_json(f: &Finding) -> String {
    format!(
        "{{\"id\":\"{}\",\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\"}}",
        rule_id(f.rule),
        f.rule,
        escape(&f.file),
        f.line,
        f.col,
        escape(&f.message),
    )
}

/// Renders the full report as deterministic, pretty-enough JSON.
pub fn render_report(r: &Report) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"tool\": \"ndlint\",\n");
    out.push_str("  \"schema_version\": 2,\n");
    out.push_str(&format!("  \"files_scanned\": {},\n", r.files_scanned));
    out.push_str(&format!(
        "  \"call_graph\": {{\"functions\": {}, \"edges\": {}}},\n",
        r.graph_stats.0, r.graph_stats.1
    ));
    out.push_str("  \"findings\": [");
    for (i, f) in r.findings.iter().enumerate() {
        out.push_str(if i == 0 { "\n    " } else { ",\n    " });
        out.push_str(&finding_json(f));
    }
    out.push_str(if r.findings.is_empty() { "],\n" } else { "\n  ],\n" });
    out.push_str("  \"suppressions\": [");
    for (i, s) in r.suppressions.iter().enumerate() {
        out.push_str(if i == 0 { "\n    " } else { ",\n    " });
        out.push_str(&format!(
            "{{\"form\":\"{}\",\"target\":\"{}\",\"file\":\"{}\",\"line\":{},\"reason\":\"{}\"}}",
            s.form,
            escape(&s.target),
            escape(&s.file),
            s.line,
            escape(&s.reason),
        ));
    }
    out.push_str(if r.suppressions.is_empty() { "]\n" } else { "\n  ]\n" });
    out.push_str("}\n");
    out
}

/// Baseline entry key: `(rule, file, message)`.
pub type BaselineKey = (String, String, String);

/// Renders the baseline for the current findings.
pub fn render_baseline(findings: &[Finding]) -> String {
    let mut keys: Vec<&Finding> = findings.iter().collect();
    keys.sort_by(|a, b| (a.rule, &a.file, &a.message).cmp(&(b.rule, &b.file, &b.message)));
    keys.dedup_by(|a, b| (a.rule, &a.file, &a.message) == (b.rule, &b.file, &b.message));
    let mut out = String::from("[");
    for (i, f) in keys.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "{{\"id\":\"{}\",\"rule\":\"{}\",\"file\":\"{}\",\"message\":\"{}\"}}",
            rule_id(f.rule),
            f.rule,
            escape(&f.file),
            escape(&f.message),
        ));
    }
    out.push_str(if keys.is_empty() { "]\n" } else { "\n]\n" });
    out
}

/// Parses a baseline file back into its key set. The parser accepts
/// exactly what [`render_baseline`] emits (one object per line); a
/// malformed line is skipped rather than a panic — a corrupt baseline
/// then surfaces as "new" findings, which is the safe direction.
pub fn parse_baseline(text: &str) -> BTreeSet<BaselineKey> {
    let mut out = BTreeSet::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        if !line.starts_with('{') {
            continue;
        }
        let (Some(rule), Some(file), Some(message)) = (
            str_field(line, "rule"),
            str_field(line, "file"),
            str_field(line, "message"),
        ) else {
            continue;
        };
        out.insert((rule, file, message));
    }
    out
}

/// Findings not covered by the baseline — the ones that fail CI.
pub fn new_findings<'a>(r: &'a Report, baseline: &BTreeSet<BaselineKey>) -> Vec<&'a Finding> {
    r.findings
        .iter()
        .filter(|f| {
            !baseline.contains(&(f.rule.to_string(), f.file.clone(), f.message.clone()))
        })
        .collect()
}

/// Baseline entries that no longer fire — candidates for removal, so the
/// grandfathered set only ever shrinks.
pub fn stale_baseline(r: &Report, baseline: &BTreeSet<BaselineKey>) -> Vec<BaselineKey> {
    let live: BTreeSet<BaselineKey> = r
        .findings
        .iter()
        .map(|f| (f.rule.to_string(), f.file.clone(), f.message.clone()))
        .collect();
    baseline.iter().filter(|k| !live.contains(*k)).cloned().collect()
}

/// Extracts the string value of `"name":"..."` from a one-line JSON
/// object, undoing the escapes [`escape`] produces.
fn str_field(line: &str, name: &str) -> Option<String> {
    let needle = format!("\"{name}\":\"");
    let start = line.find(&needle)? + needle.len();
    let bytes = line.as_bytes();
    let mut out = String::new();
    let mut i = start;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => return Some(out),
            b'\\' => {
                let esc = *bytes.get(i + 1)?;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = line.get(i + 2..i + 6)?;
                        let v = u32::from_str_radix(hex, 16).ok()?;
                        out.push(char::from_u32(v)?);
                        i += 4;
                    }
                    _ => return None,
                }
                i += 2;
                continue;
            }
            _ => {
                // Advance by one UTF-8 scalar.
                let s = &line[i..];
                let c = s.chars().next()?;
                out.push(c);
                i += c.len_utf8();
                continue;
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, file: &str, msg: &str) -> Finding {
        Finding {
            rule,
            file: file.into(),
            line: 7,
            col: 3,
            message: msg.into(),
        }
    }

    #[test]
    fn baseline_round_trips_with_escapes() {
        let fs = vec![
            finding("blocking", "a/b.rs", "uses `tx` \"quoted\"\npath\\x"),
            finding("bounded", "c.rs", "plain"),
        ];
        let text = render_baseline(&fs);
        let keys = parse_baseline(&text);
        assert_eq!(keys.len(), 2);
        assert!(keys.contains(&(
            "blocking".into(),
            "a/b.rs".into(),
            "uses `tx` \"quoted\"\npath\\x".into()
        )));
    }

    #[test]
    fn diff_splits_new_and_stale() {
        let old = vec![finding("bounded", "c.rs", "plain")];
        let baseline = parse_baseline(&render_baseline(&old));
        let r = Report {
            findings: vec![finding("blocking", "a.rs", "fresh")],
            ..Report::default()
        };
        let new = new_findings(&r, &baseline);
        assert_eq!(new.len(), 1);
        assert_eq!(new[0].message, "fresh");
        let stale = stale_baseline(&r, &baseline);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].2, "plain");
    }

    #[test]
    fn report_json_contains_stable_ids() {
        let r = Report {
            findings: vec![finding("event_zone", "a.rs", "m")],
            files_scanned: 1,
            ..Report::default()
        };
        let j = render_report(&r);
        assert!(j.contains("\"id\":\"NDL008\""), "{j}");
        assert!(j.contains("\"schema_version\": 2"));
    }
}
