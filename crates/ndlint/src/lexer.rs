//! A hand-rolled Rust lexer: enough fidelity for lint-grade scanning.
//!
//! The goal is not a full grammar — it is to tokenize identifiers,
//! punctuation and literals with correct **comment/string/char/lifetime
//! disambiguation**, so the rule passes never mistake the inside of a
//! string (or a doc-comment code example) for live code. The lexer is
//! total: any byte sequence lexes without panicking, unterminated
//! constructs are closed at end of input, and every token carries a
//! 1-based line/column span for diagnostics.
//!
//! `// ndlint: allow(<rule>, reason = "...")` directives are recognized
//! while comments are consumed and surface as [`Annotation`]s; malformed
//! directives are reported rather than silently ignored.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (keywords are not distinguished).
    Ident(String),
    /// String literal (normal, byte, or raw); payload is the raw
    /// *contents* between the quotes, escapes unprocessed.
    Str(String),
    /// Character literal (`'a'`, `'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Numeric literal (integer or float, suffix included).
    Num,
    /// Any other single character.
    Punct(char),
}

/// A token plus its 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// What was lexed.
    pub kind: TokKind,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (in chars).
    pub col: u32,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// The string-literal contents, if this token is a string.
    pub fn str_lit(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }

    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        matches!(&self.kind, TokKind::Ident(i) if i == s)
    }
}

/// A parsed `// ndlint: allow(<rule>, reason = "...")` directive.
#[derive(Debug, Clone)]
pub struct Annotation {
    /// Line the directive comment sits on.
    pub line: u32,
    /// The rule name inside `allow(...)`.
    pub rule: String,
    /// Whether a non-empty `reason = "..."` was given.
    pub has_reason: bool,
    /// The reason text between the quotes (empty when absent).
    pub reason: String,
}

/// Overload policies a bounded queue may declare.
pub const POLICY_KINDS: &[&str] = &["drop", "block", "reject"];

/// A parsed `// ndlint: policy(drop|block|reject, reason = "...")`
/// directive: the declared overload behaviour of a bounded queue
/// constructed on (or directly below) the directive's line.
#[derive(Debug, Clone)]
pub struct PolicyNote {
    /// Line the directive comment sits on.
    pub line: u32,
    /// One of [`POLICY_KINDS`].
    pub kind: String,
    /// The reason text between the quotes.
    pub reason: String,
}

/// Lexer output: tokens, ndlint directives, and malformed directives.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All tokens, in source order.
    pub tokens: Vec<Token>,
    /// Well-formed `ndlint: allow(...)` directives found in line comments.
    pub annotations: Vec<Annotation>,
    /// Well-formed `ndlint: policy(...)` directives found in line comments.
    pub policies: Vec<PolicyNote>,
    /// `(line, problem)` for comments that mention `ndlint:` but do not
    /// parse as a directive.
    pub malformed: Vec<(u32, String)>,
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    out: Lexed,
}

/// Lexes `src` completely. Total: never panics, always terminates.
pub fn lex(src: &str) -> Lexed {
    let mut lx = Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        col: 1,
        out: Lexed::default(),
    };
    lx.run();
    lx.out
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Consumes one char, maintaining line/col.
    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokKind, line: u32, col: u32) {
        self.out.tokens.push(Token { kind, line, col });
    }

    fn run(&mut self) {
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            match c {
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => {
                    self.bump();
                    let s = self.string_body();
                    self.push(TokKind::Str(s), line, col);
                }
                'b' | 'r' if self.raw_or_byte_string(line, col) => {}
                '\'' => self.char_or_lifetime(line, col),
                c if c.is_ascii_digit() => self.number(line, col),
                c if c.is_alphabetic() || c == '_' => self.ident(line, col),
                c if c.is_whitespace() => {
                    self.bump();
                }
                other => {
                    self.bump();
                    self.push(TokKind::Punct(other), line, col);
                }
            }
        }
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        // A directive is a whole-comment construct: a plain `//` comment
        // (not a `///` / `//!` doc comment, which is documentation and may
        // quote the grammar) whose content starts with `ndlint:`.
        let body = &text[2..];
        if body.starts_with('/') || body.starts_with('!') {
            return;
        }
        if let Some(rest) = body.trim_start().strip_prefix("ndlint:") {
            self.directive(line, rest);
        }
    }

    /// Parses the tail of an `ndlint:` comment. Grammar:
    /// `allow(<rule>, reason = "<non-empty>")` or
    /// `policy(drop|block|reject, reason = "<non-empty>")`.
    fn directive(&mut self, line: u32, tail: &str) {
        let tail = tail.trim();
        let (verb, rest) = if let Some(r) = tail.strip_prefix("allow") {
            ("allow", r)
        } else if let Some(r) = tail.strip_prefix("policy") {
            ("policy", r)
        } else {
            self.out.malformed.push((
                line,
                format!("expected `allow(...)` or `policy(...)`, got `{tail}`"),
            ));
            return;
        };
        let Some(args) = rest.trim_start().strip_prefix('(') else {
            self.out
                .malformed
                .push((line, format!("expected `{verb}(...)`, got `{tail}`")));
            return;
        };
        let Some(close) = args.rfind(')') else {
            self.out
                .malformed
                .push((line, format!("unclosed `{verb}(` directive")));
            return;
        };
        let args = &args[..close];
        let head = args.split(',').next().unwrap_or("").trim().to_string();
        if head.is_empty() || !head.chars().all(|c| c.is_ascii_lowercase() || c == '_') {
            self.out
                .malformed
                .push((line, format!("bad name `{head}` in {verb}(...)")));
            return;
        }
        // reason = "..." with at least one char between the quotes.
        let reason = args
            .split_once("reason")
            .map(|(_, r)| r.trim_start())
            .and_then(|r| r.strip_prefix('='))
            .map(str::trim_start)
            .and_then(|r| r.strip_prefix('"'))
            .and_then(|r| r.find('"').filter(|&end| end > 0).map(|end| &r[..end]))
            .unwrap_or("")
            .to_string();
        if reason.is_empty() {
            self.out.malformed.push((
                line,
                format!("{verb}({head}) needs a non-empty reason = \"...\""),
            ));
            return;
        }
        match verb {
            "allow" => self.out.annotations.push(Annotation {
                line,
                rule: head,
                has_reason: true,
                reason,
            }),
            _ => {
                if !POLICY_KINDS.contains(&head.as_str()) {
                    self.out.malformed.push((
                        line,
                        format!(
                            "unknown overload policy `{head}` (one of: {})",
                            POLICY_KINDS.join(", ")
                        ),
                    ));
                    return;
                }
                self.out.policies.push(PolicyNote {
                    line,
                    kind: head,
                    reason,
                });
            }
        }
    }

    fn block_comment(&mut self) {
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break, // unterminated: tolerate
            }
        }
    }

    /// Contents of a normal (escaped) string; the opening quote is
    /// already consumed. Consumes through the closing quote.
    fn string_body(&mut self) -> String {
        let mut s = String::new();
        while let Some(c) = self.peek(0) {
            match c {
                '\\' => {
                    self.bump();
                    if let Some(e) = self.bump() {
                        s.push('\\');
                        s.push(e);
                    }
                }
                '"' => {
                    self.bump();
                    break;
                }
                other => {
                    s.push(other);
                    self.bump();
                }
            }
        }
        s
    }

    /// Handles `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#` when the
    /// cursor sits on `b`/`r`. Returns false (consuming nothing) when
    /// what follows is a plain identifier.
    fn raw_or_byte_string(&mut self, line: u32, col: u32) -> bool {
        // Work out the literal prefix without consuming.
        let mut i;
        let mut raw = false;
        match self.peek(0) {
            Some('b') => {
                i = 1;
                if self.peek(1) == Some('r') {
                    raw = true;
                    i = 2;
                }
            }
            Some('r') => {
                raw = true;
                i = 1;
            }
            _ => return false,
        }
        let mut hashes = 0usize;
        if raw {
            while self.peek(i) == Some('#') {
                hashes += 1;
                i += 1;
            }
        }
        if self.peek(i) != Some('"') {
            return false; // `b` / `r` starts an ordinary identifier
        }
        if raw && hashes == 0 && self.peek(0) == Some('r') && self.peek(1) != Some('"') {
            return false;
        }
        for _ in 0..=i {
            self.bump(); // prefix + opening quote
        }
        let s = if raw {
            self.raw_string_body(hashes)
        } else {
            self.string_body()
        };
        self.push(TokKind::Str(s), line, col);
        true
    }

    /// Contents of a raw string with `hashes` hash marks; consumes
    /// through the terminator. No escapes inside raw strings.
    fn raw_string_body(&mut self, hashes: usize) -> String {
        let mut s = String::new();
        while let Some(c) = self.peek(0) {
            if c == '"' {
                let mut ok = true;
                for k in 0..hashes {
                    if self.peek(1 + k) != Some('#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    for _ in 0..=hashes {
                        self.bump();
                    }
                    break;
                }
            }
            s.push(c);
            self.bump();
        }
        s
    }

    /// Disambiguates `'a'` (char) from `'a` (lifetime) from `'\n'`.
    fn char_or_lifetime(&mut self, line: u32, col: u32) {
        self.bump(); // opening quote
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: consume escape then to the quote.
                self.bump();
                self.bump(); // the escaped char (or first of \u{...})
                while let Some(c) = self.peek(0) {
                    if c == '\'' {
                        self.bump();
                        break;
                    }
                    if c == '\n' {
                        break; // unterminated; tolerate
                    }
                    self.bump();
                }
                self.push(TokKind::Char, line, col);
            }
            Some(c) if c.is_alphanumeric() || c == '_' => {
                if self.peek(1) == Some('\'') {
                    // 'x'
                    self.bump();
                    self.bump();
                    self.push(TokKind::Char, line, col);
                } else {
                    // lifetime: consume ident chars, no closing quote
                    while let Some(c) = self.peek(0) {
                        if c.is_alphanumeric() || c == '_' {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.push(TokKind::Lifetime, line, col);
                }
            }
            Some(c) => {
                // Punctuation char literal like '(' or ' '.
                self.bump();
                if self.peek(0) == Some('\'') {
                    self.bump();
                    self.push(TokKind::Char, line, col);
                } else {
                    // Stray quote: emit as punct, re-lex what followed.
                    self.push(TokKind::Punct('\''), line, col);
                    let _ = c;
                }
            }
            None => self.push(TokKind::Punct('\''), line, col),
        }
    }

    fn number(&mut self, line: u32, col: u32) {
        let mut prev = '0';
        while let Some(c) = self.peek(0) {
            let take = if c.is_ascii_alphanumeric() || c == '_' {
                true
            } else if c == '.' {
                // `0..10` must leave `..` alone; `1.5` continues.
                self.peek(1).is_some_and(|n| n.is_ascii_digit()) && prev != '.'
            } else if c == '+' || c == '-' {
                // exponent sign: 1e-3
                matches!(prev, 'e' | 'E') && self.peek(1).is_some_and(|n| n.is_ascii_digit())
            } else {
                false
            };
            if !take {
                break;
            }
            prev = c;
            self.bump();
        }
        self.push(TokKind::Num, line, col);
    }

    fn ident(&mut self, line: u32, col: u32) {
        let mut s = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Ident(s), line, col);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn strings_hide_code() {
        let l = lex(r#"let x = "fn fake() { unwrap() }"; y.unwrap();"#);
        let ids = idents(r#"let x = "fn fake() { unwrap() }"; y.unwrap();"#);
        assert_eq!(ids, ["let", "x", "y", "unwrap"]);
        assert_eq!(l.tokens.iter().filter(|t| t.str_lit().is_some()).count(), 1);
    }

    #[test]
    fn comments_hide_code() {
        assert_eq!(idents("// x.unwrap()\nreal"), ["real"]);
        assert_eq!(idents("/* x.unwrap() /* nested */ still */ real"), ["real"]);
        assert_eq!(
            idents("/// doc with \"quote\n///and `panic!`\nfn f() {}"),
            ["fn", "f"]
        );
    }

    #[test]
    fn raw_strings_with_quotes() {
        let l = lex(r##"let s = r#"contains " quote and // slashes"#; after"##);
        assert!(idents(r##"let s = r#"contains " quote"#; after"##).contains(&"after".to_string()));
        assert_eq!(l.tokens.iter().filter(|t| t.str_lit().is_some()).count(), 1);
    }

    #[test]
    fn lifetimes_vs_chars() {
        let ids = idents("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert!(ids.contains(&"str".to_string()));
        let l = lex("'a 'x' '\\u{1F600}'");
        let kinds: Vec<_> = l.tokens.iter().map(|t| &t.kind).collect();
        assert!(matches!(kinds[0], TokKind::Lifetime));
        assert!(matches!(kinds[1], TokKind::Char));
        assert!(matches!(kinds[2], TokKind::Char));
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let l = lex("for i in 0..10 { a[i]; 1.5e-3; }");
        let dots = l.tokens.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2, "0..10 keeps both range dots");
        let nums = l.tokens.iter().filter(|t| t.kind == TokKind::Num).count();
        assert_eq!(nums, 3); // 0, 10, 1.5e-3
    }

    #[test]
    fn directives_parse() {
        let l = lex(concat!(
            "// ndlint: allow(relaxed, reason = \"pure counter\")\n",
            "x.load(Ordering::Relaxed);\n",
            "// ndlint: allow(panic)\n", // missing reason -> malformed
        ));
        assert_eq!(l.annotations.len(), 1);
        assert_eq!(l.annotations[0].rule, "relaxed");
        assert_eq!(l.annotations[0].line, 1);
        assert_eq!(l.malformed.len(), 1);
        assert_eq!(l.malformed[0].0, 3);
    }

    #[test]
    fn policy_directives_parse() {
        let l = lex(concat!(
            "// ndlint: policy(block, reason = \"cap is backpressure\")\n",
            "let (tx, rx) = mpsc::sync_channel(8);\n",
            "// ndlint: policy(spill, reason = \"nope\")\n", // unknown kind
            "// ndlint: policy(drop)\n",                    // missing reason
        ));
        assert_eq!(l.policies.len(), 1);
        assert_eq!(l.policies[0].kind, "block");
        assert_eq!(l.policies[0].reason, "cap is backpressure");
        assert_eq!(l.policies[0].line, 1);
        assert_eq!(l.malformed.len(), 2);
    }

    #[test]
    fn allow_reason_text_is_captured() {
        let l = lex("// ndlint: allow(relaxed, reason = \"pure counter\")\n");
        assert_eq!(l.annotations[0].reason, "pure counter");
    }

    #[test]
    fn doc_comments_and_prose_are_not_directives() {
        let l = lex(concat!(
            "/// write `// ndlint: allow(<rule>, reason = \"...\")` to suppress\n",
            "//! the grammar is ndlint: allow(panic)\n",
            "// see the ndlint: allow(...) docs\n", // prose, not anchored
        ));
        assert!(l.annotations.is_empty());
        assert!(l.malformed.is_empty());
    }

    #[test]
    fn positions_are_one_based() {
        let l = lex("a\n  b");
        assert_eq!((l.tokens[0].line, l.tokens[0].col), (1, 1));
        assert_eq!((l.tokens[1].line, l.tokens[1].col), (2, 3));
    }

    #[test]
    fn unterminated_constructs_are_tolerated() {
        for src in ["\"never closed", "/* never closed", "r#\"never closed", "'"] {
            let _ = lex(src); // must not panic or hang
        }
    }
}
