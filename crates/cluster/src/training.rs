//! FT-DMP training timelines (Figs 9, 11, 15, 17).

use dnn::ModelProfile;
use hw::{GpuSpec, InstanceSpec, LinkSpec, COMPRESSED_IMAGE_BYTES};
use simkit::{Resource, SimTime};

/// Fixed per-batch overhead on the Tuner (optimizer step, kernel launch,
/// host bookkeeping), seconds. Calibrated so the Store/Tuner stages of
/// ResNet50 balance in the high single digits of PipeStores (Fig 11's
/// APO pick of 8).
pub const TUNER_BATCH_OVERHEAD_SECS: f64 = 1.5e-3;

/// Tuner-local NVMe bandwidth for caching/replaying extracted features.
pub const TUNER_NVME_BPS: f64 = 8.0e9;

/// Per-synchronization-round network latency overhead (all-reduce style
/// barrier across PipeStores), seconds.
pub const SYNC_ROUND_LATENCY_SECS: f64 = 2.0e-3;

/// A distributed fine-tuning configuration.
#[derive(Debug, Clone)]
pub struct TrainSetup {
    /// The model being fine-tuned.
    pub model: ModelProfile,
    /// Training-set size, images.
    pub images: u64,
    /// Head-training epochs over the cached features.
    pub epochs: usize,
    /// Training batch size.
    pub batch: usize,
    /// Number of PipeStores extracting features.
    pub n_pipestores: usize,
    /// Partition point `k`: stages `0..k` run on PipeStores (see
    /// [`ModelProfile::partition_points`]).
    pub partition: usize,
    /// Pipeline runs (`N_run` of §5.2); 1 = unpipelined.
    pub n_run: usize,
    /// Fabric between PipeStores and Tuner.
    pub link: LinkSpec,
    /// PipeStore hardware (T4 or Inferentia).
    pub store: InstanceSpec,
}

impl TrainSetup {
    /// The paper's default training setup: 1.2 M ImageNet-1K images,
    /// batch 512, 20 head epochs, 10 Gbps, T4 PipeStores, the deepest
    /// weight-freeze cut, `N_run = 3`.
    ///
    /// # Panics
    ///
    /// Panics if `n_pipestores` is zero.
    pub fn paper_default(model: ModelProfile, n_pipestores: usize) -> Self {
        assert!(n_pipestores > 0, "need at least one PipeStore");
        let partition = model.first_trainable_stage();
        TrainSetup {
            model,
            images: 1_200_000,
            epochs: 20,
            batch: 512,
            n_pipestores,
            partition,
            n_run: 3,
            link: LinkSpec::ethernet_gbps(10.0),
            store: InstanceSpec::pipestore(),
        }
    }
}

/// Timing breakdown of one fine-tuning job.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingReport {
    /// Feature extraction on PipeStores (aggregate across runs), seconds.
    pub store_stage_secs: f64,
    /// Feature shipping to the Tuner, seconds.
    pub transfer_secs: f64,
    /// Tuner-side work (residual forward + head training), seconds.
    pub tuner_stage_secs: f64,
    /// Inter-PipeStore weight synchronization, seconds (only when
    /// trainable layers are replicated on PipeStores).
    pub weight_sync_secs: f64,
    /// End-to-end wall time including `N_run` overlap, seconds.
    pub total_secs: f64,
    /// Feature/data bytes moved over the fabric.
    pub data_traffic_bytes: f64,
    /// Weight-synchronization bytes moved over the fabric.
    pub sync_traffic_bytes: f64,
}

impl TrainingReport {
    /// `|T_ps − T_tuner|` — the pipeline imbalance APO minimizes
    /// (Algorithm 1, line 4).
    pub fn stage_imbalance(&self) -> f64 {
        ((self.store_stage_secs + self.transfer_secs)
            - (self.tuner_stage_secs + self.weight_sync_secs))
            .abs()
    }

    /// Throughput in images/sec of the whole fine-tuning job.
    pub fn ips(&self, images: u64) -> f64 {
        images as f64 / self.total_secs
    }
}

/// Estimates the FT-DMP fine-tuning timeline for `setup`.
///
/// Per pipeline run: PipeStores stream-extract features for their local
/// shard (disk → decompress → forward through the weight-freeze prefix),
/// ship them to the Tuner, and the Tuner runs the residual weight-freeze
/// suffix once plus `epochs` of trainable-tail training over the cached
/// features. Runs overlap Store-stage and Tuner-stage as in Fig 10(b).
///
/// If the partition places trainable stages on the PipeStores (the
/// paper's `+FC` extreme), per-iteration weight synchronization across
/// stores is charged instead of Tuner work — the §4.1 pathology.
///
/// # Panics
///
/// Panics if counts are zero or the partition point is out of range.
pub fn training_report(setup: &TrainSetup) -> TrainingReport {
    assert!(setup.images > 0, "no images to train on");
    assert!(setup.epochs > 0, "need at least one epoch");
    assert!(setup.batch > 0, "batch size must be positive");
    assert!(setup.n_pipestores > 0, "need at least one PipeStore");
    assert!(setup.n_run > 0, "need at least one run");
    let model = &setup.model;
    assert!(
        setup.partition < model.partition_points(),
        "partition point out of range"
    );

    let k = setup.partition;
    let first_trainable = model.first_trainable_stage();
    let images = setup.images as f64;
    let n = setup.n_pipestores as f64;

    let t4 = &setup.store.gpus[0];
    let v100 = GpuSpec::tesla_v100();
    let store_eff = model.effective_flops(t4.dnn_factor);
    let tuner_eff = model.effective_flops(v100.dnn_factor);

    // --- Store-stage rate per PipeStore (streamed 3-stage pipeline). ---
    let prefix_flops = model.flops_before(k);
    let gpu_rate = if prefix_flops > 0.0 {
        store_eff / prefix_flops
    } else {
        f64::INFINITY
    };
    let disk_rate = setup.store.disk.read_bps / COMPRESSED_IMAGE_BYTES;
    let decomp_rate = setup.store.cpu.decompress_bps(2) / COMPRESSED_IMAGE_BYTES;
    let store_rate = gpu_rate.min(disk_rate).min(decomp_rate);
    let store_secs = images / (n * store_rate);

    // --- Feature transfer into the Tuner's shared ingress. ---
    let effective_cut = k.min(first_trainable);
    let cut_bytes = model.cut_bytes(effective_cut);
    let data_traffic = if k > first_trainable {
        0.0 // model fully local to stores; only labels/grads move (below)
    } else {
        images * cut_bytes
    };
    let transfer_secs = data_traffic / setup.link.effective_bps();

    // --- Tuner-stage / distributed-head work. ---
    let trainable_flops: f64 = model.stages()[first_trainable..]
        .iter()
        .map(|s| s.flops)
        .sum();
    let iterations = setup.epochs as f64 * (images / setup.batch as f64).ceil();

    let (tuner_secs, sync_secs, sync_traffic) = if k > first_trainable {
        // §4.1 naive-NDP pathology: the trainable tail is replicated on
        // PipeStores; every iteration synchronizes its weights.
        let head_train = setup.epochs as f64 * images * 3.0 * trainable_flops / (n * store_eff);
        let sync_bytes = iterations * model.trainable_param_bytes() * 2.0 * n;
        let sync_secs =
            sync_bytes / setup.link.effective_bps() + iterations * SYNC_ROUND_LATENCY_SECS;
        (head_train, sync_secs, sync_bytes)
    } else {
        // Residual weight-freeze suffix runs once per image on the Tuner.
        let suffix_freeze_flops = model.flops_after(k) - trainable_flops;
        let suffix_secs = images * suffix_freeze_flops / tuner_eff;
        // Head training over cached features, every epoch.
        let head_secs = setup.epochs as f64 * images * 3.0 * trainable_flops / tuner_eff;
        let overhead = iterations * TUNER_BATCH_OVERHEAD_SECS;
        let replay = setup.epochs as f64 * images * cut_bytes / TUNER_NVME_BPS;
        (suffix_secs + head_secs + overhead + replay, 0.0, 0.0)
    };

    // --- N_run pipelined timeline (Fig 10b) over simkit resources. ---
    let runs = setup.n_run;
    let mut store_res = Resource::new("store-stage");
    let mut tuner_res = Resource::new("tuner-stage");
    let per_run_store = SimTime::from_secs((store_secs + transfer_secs) / runs as f64);
    let per_run_tuner = SimTime::from_secs((tuner_secs + sync_secs) / runs as f64);
    let mut end = SimTime::ZERO;
    for _ in 0..runs {
        let s = store_res.serve(SimTime::ZERO, per_run_store);
        let t = tuner_res.serve(s.end, per_run_tuner);
        end = t.end;
    }

    TrainingReport {
        store_stage_secs: store_secs,
        transfer_secs,
        tuner_stage_secs: tuner_secs,
        weight_sync_secs: sync_secs,
        total_secs: end.as_secs(),
        data_traffic_bytes: data_traffic,
        sync_traffic_bytes: sync_traffic,
    }
}

/// Fine-tuning time on the centralized SRV-C baseline: the host streams
/// compressed binaries from storage servers, runs the full weight-freeze
/// forward on its two V100s, caches features, then trains the head.
pub fn srv_training_report(
    model: &ModelProfile,
    images: u64,
    epochs: usize,
    batch: usize,
    link: &LinkSpec,
) -> TrainingReport {
    let host = InstanceSpec::srv_host();
    let images_f = images as f64;
    let host_eff = model.effective_flops(host.total_dnn_factor());

    let trainable_flops: f64 = model.stages()[model.first_trainable_stage()..]
        .iter()
        .map(|s| s.flops)
        .sum();
    let freeze_flops = model.total_flops() - trainable_flops;

    // Streaming ingest: network, decompression (8 cores) and forward
    // compute overlap; the slowest governs.
    let net_rate = link.effective_bps() / COMPRESSED_IMAGE_BYTES;
    let decomp_rate = host.cpu.decompress_bps(8) / COMPRESSED_IMAGE_BYTES;
    let fwd_rate = host_eff / freeze_flops;
    let ingest_secs = images_f / net_rate.min(decomp_rate).min(fwd_rate);

    let iterations = epochs as f64 * (images_f / batch as f64).ceil();
    let head_secs = epochs as f64 * images_f * 3.0 * trainable_flops / host_eff;
    let feature_bytes = model.cut_bytes(model.first_trainable_stage());
    let replay = epochs as f64 * images_f * feature_bytes / TUNER_NVME_BPS;
    let tuner_secs = head_secs + iterations * TUNER_BATCH_OVERHEAD_SECS + replay;

    TrainingReport {
        store_stage_secs: ingest_secs,
        transfer_secs: 0.0,
        tuner_stage_secs: tuner_secs,
        weight_sync_secs: 0.0,
        total_secs: ingest_secs + tuner_secs,
        data_traffic_bytes: images_f * COMPRESSED_IMAGE_BYTES,
        sync_traffic_bytes: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resnet_setup(n: usize) -> TrainSetup {
        TrainSetup::paper_default(ModelProfile::resnet50(), n)
    }

    #[test]
    fn more_pipestores_reduce_training_time_until_tuner_binds() {
        let t1 = training_report(&resnet_setup(1)).total_secs;
        let t8 = training_report(&resnet_setup(8)).total_secs;
        let t20 = training_report(&resnet_setup(20)).total_secs;
        assert!(t8 < t1 / 4.0, "1 store {t1}s vs 8 stores {t8}s");
        // Beyond the balance point gains are marginal (Fig 11/15).
        let gain_late = (t8 - t20) / t8;
        assert!(gain_late < 0.35, "late gain {gain_late}");
        assert!(t20 <= t8);
    }

    #[test]
    fn deepest_freeze_cut_minimizes_time_for_resnet50() {
        // Fig 9: +Conv5 (k = 5) is the best cut; +FC explodes on sync.
        let times: Vec<f64> = (0..=6)
            .map(|k| {
                let mut s = resnet_setup(4);
                s.partition = k;
                training_report(&s).total_secs
            })
            .collect();
        let best = times
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, 5, "times {times:?}");
        assert!(times[6] > times[5] * 3.0, "+FC should blow up: {times:?}");
    }

    #[test]
    fn fc_offload_pays_weight_sync_traffic() {
        let mut s = resnet_setup(4);
        s.partition = 6; // +FC
        let r = training_report(&s);
        assert!(r.sync_traffic_bytes > 1e12, "sync {}", r.sync_traffic_bytes);
        assert_eq!(r.data_traffic_bytes, 0.0);
        assert!(r.weight_sync_secs > 0.0);
    }

    #[test]
    fn conv5_cut_traffic_matches_fig9_annotation() {
        // Paper annotates +Conv5 data traffic at 9.16 GB for 1.2 M images.
        let s = resnet_setup(4);
        let r = training_report(&s);
        let gb = r.data_traffic_bytes / 1e9;
        assert!((8.0..11.0).contains(&gb), "traffic {gb} GB");
    }

    #[test]
    fn traffic_decreases_with_deeper_cuts_until_fc() {
        let traffic: Vec<f64> = (0..=5)
            .map(|k| {
                let mut s = resnet_setup(4);
                s.partition = k;
                training_report(&s).data_traffic_bytes
            })
            .collect();
        // Conv2 inflates activations (3.2 MB > 0.59 MB input) — the paper's
        // point that shallow cuts can be worse than shipping inputs.
        assert!(traffic[2] > traffic[0]);
        // The deep cut is orders of magnitude smaller.
        assert!(traffic[5] < traffic[0] / 50.0);
    }

    #[test]
    fn pipelining_reduces_wall_time_as_fig17() {
        // With balanced stages, N_run = 2 saves ~25 %, N_run = 3 ~33 %.
        let mut s = resnet_setup(8);
        s.n_run = 1;
        let t1 = training_report(&s).total_secs;
        s.n_run = 2;
        let t2 = training_report(&s).total_secs;
        s.n_run = 3;
        let t3 = training_report(&s).total_secs;
        let save2 = 1.0 - t2 / t1;
        let save3 = 1.0 - t3 / t1;
        assert!(save2 > 0.10 && save2 < 0.35, "save2 {save2}");
        assert!(save3 > save2, "save3 {save3} <= save2 {save2}");
        assert!(save3 < 0.45, "save3 {save3}");
    }

    #[test]
    fn ndpipe_crosses_srv_c_at_few_stores_fig15() {
        let link = LinkSpec::ethernet_gbps(10.0);
        let srv = srv_training_report(&ModelProfile::resnet50(), 1_200_000, 20, 512, &link);
        let crossover = (1..=20)
            .find(|&n| training_report(&resnet_setup(n)).total_secs <= srv.total_secs)
            .unwrap_or(99);
        assert!((2..=5).contains(&crossover), "crossover at {crossover}");
    }

    #[test]
    fn resnext_needs_more_stores_than_resnet() {
        let link = LinkSpec::ethernet_gbps(10.0);
        let cross = |model: ModelProfile| {
            let srv = srv_training_report(&model, 1_200_000, 20, 512, &link);
            (1..=30)
                .find(|&n| {
                    training_report(&TrainSetup::paper_default(model.clone(), n)).total_secs
                        <= srv.total_secs
                })
                .unwrap_or(99)
        };
        let r50 = cross(ModelProfile::resnet50());
        let rx = cross(ModelProfile::resnext101());
        assert!(rx >= r50, "resnext {rx} vs resnet {r50}");
    }

    #[test]
    fn stage_imbalance_has_a_minimum_in_n() {
        // Fig 11: T_diff falls toward a balance point then rises.
        let imb: Vec<f64> = (1..=20)
            .map(|n| training_report(&resnet_setup(n)).stage_imbalance())
            .collect();
        let best = imb
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0
            + 1;
        assert!((4..=14).contains(&best), "balance at {best}: {imb:?}");
    }
}
