//! Fleet-level performance simulation of photo-storage clusters.
//!
//! Composes the `hw` device models and `dnn` architecture profiles into
//! throughput / latency / energy / cost estimates for every system the
//! paper measures:
//!
//! - the centralized baselines **SRV-I / SRV-P / SRV-C** (§6.2) and the
//!   *unoptimized* Typical/Ideal hosts of the §3.4 bottleneck analysis,
//! - **naive NDP** (§4) with its weight-synchronization and preprocessing
//!   pathologies,
//! - **NDPipe** itself: PipeStore fleets running the NPE-optimized
//!   inference path and the FT-DMP training timeline with `N_run`
//!   pipelining (the `ndpipe` crate drives these primitives from APO).
//!
//! Every estimate is *derived* from the calibrated device parameters —
//! bandwidths, per-model throughput anchors, power curves — so parameter
//! sweeps (Figs 13, 15, 18, 19, 20) move for the same reasons the paper's
//! do. Timelines with cross-run overlap use the `simkit` event kernel.

pub mod baseline;
pub mod energy;
pub mod inference;
pub mod training;

pub use energy::{fleet_power, EnergyReport};
pub use inference::{InferenceReport, InferenceVariant};
pub use training::{TrainSetup, TrainingReport};

/// Slowdown of the §3 *unoptimized* host engine (TensorFlow eager path)
/// relative to the optimized TensorRT-style engine used everywhere in §6.
/// Calibrated so the Ideal host of Fig 5(b) lands at ≈123 IPS and the
/// Typical/Ideal fine-tuning gap at ≈3.7×.
pub const UNOPTIMIZED_ENGINE_FACTOR: f64 = 3.0;

/// A throughput bottleneck identified by a capacity model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bottleneck {
    /// GPU / accelerator compute.
    Compute,
    /// The network fabric between storage and host.
    Network,
    /// Disk read bandwidth.
    Disk,
    /// CPU preprocessing.
    Preprocess,
    /// CPU decompression.
    Decompress,
}

impl std::fmt::Display for Bottleneck {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Bottleneck::Compute => "compute",
            Bottleneck::Network => "network",
            Bottleneck::Disk => "disk",
            Bottleneck::Preprocess => "preprocess",
            Bottleneck::Decompress => "decompress",
        };
        f.write_str(s)
    }
}

/// Picks the minimum capacity and names it.
pub(crate) fn min_cap(caps: &[(Bottleneck, f64)]) -> (Bottleneck, f64) {
    let mut best = caps[0];
    for &c in &caps[1..] {
        if c.1 < best.1 {
            best = c;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_cap_picks_smallest() {
        let caps = [
            (Bottleneck::Compute, 100.0),
            (Bottleneck::Network, 50.0),
            (Bottleneck::Disk, 75.0),
        ];
        let (b, v) = min_cap(&caps);
        assert_eq!(b, Bottleneck::Network);
        assert_eq!(v, 50.0);
    }

    #[test]
    fn bottleneck_display() {
        assert_eq!(Bottleneck::Decompress.to_string(), "decompress");
    }
}
