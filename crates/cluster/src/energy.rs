//! Fleet power and energy integration (Figs 14, 16, 18, 20).

use crate::inference::{inference_report, InferenceSetup, InferenceVariant};
use crate::training::{training_report, TrainSetup};
use hw::{ComponentPower, EnergyMeter, InstanceSpec};

/// Energy outcome of a job on a fleet.
#[derive(Debug, Clone)]
pub struct EnergyReport {
    /// Total energy, joules.
    pub joules: f64,
    /// Wall time, seconds.
    pub secs: f64,
    /// Items (images) processed.
    pub items: f64,
    /// Mean fleet power split by component.
    pub mean_power: ComponentPower,
}

impl EnergyReport {
    /// The paper's training-efficiency metric, images per kilojoule.
    pub fn ips_per_kilojoule(&self) -> f64 {
        self.items / (self.joules / 1e3)
    }

    /// The paper's inference-efficiency metric, images/sec per watt.
    pub fn ips_per_watt(&self) -> f64 {
        (self.items / self.secs) / self.mean_power.total()
    }
}

/// Steady-state fleet power of an offline-inference deployment at its
/// operating point (Fig 14's bars).
pub fn fleet_power(variant: InferenceVariant, setup: &InferenceSetup) -> ComponentPower {
    let report = inference_report(variant, setup);
    match variant {
        InferenceVariant::SrvIdeal
        | InferenceVariant::SrvPreproc
        | InferenceVariant::SrvCompressed => {
            let host = InstanceSpec::srv_host();
            let mut p = host.power_at(report.gpu_util, report.cpu_util);
            if variant != InferenceVariant::SrvIdeal {
                // Storage servers serve reads: disks busy, GPU absent.
                let storage = InstanceSpec::storage_server();
                p = p.plus(&storage.power_at(0.0, 0.15).scaled(setup.n_servers as f64));
            }
            p
        }
        InferenceVariant::NdPipe | InferenceVariant::NdPipeInf1 => {
            let store = if variant == InferenceVariant::NdPipe {
                InstanceSpec::pipestore()
            } else {
                InstanceSpec::pipestore_inf1()
            };
            store
                .power_at(report.gpu_util, report.cpu_util.max(0.2))
                .scaled(setup.n_servers as f64)
        }
    }
}

/// Energy of one offline-inference pass over `images` photos.
pub fn inference_energy(
    variant: InferenceVariant,
    setup: &InferenceSetup,
    images: u64,
) -> EnergyReport {
    let report = inference_report(variant, setup);
    let secs = images as f64 / report.ips;
    let power = fleet_power(variant, setup);
    let mut meter = EnergyMeter::new();
    meter.record(power, secs);
    EnergyReport {
        joules: meter.energy_joules(),
        secs,
        items: images as f64,
        mean_power: meter.mean_power(),
    }
}

/// Energy of one NDPipe fine-tuning job (PipeStore fleet + Tuner).
///
/// PipeStores are busy during the store stage and idle afterwards; the
/// Tuner is the reverse; with `N_run > 1` the stages overlap, which is
/// exactly why energy efficiency peaks near the APO balance point
/// (Fig 11b / Fig 16).
pub fn training_energy(setup: &TrainSetup) -> EnergyReport {
    let r = training_report(setup);
    let total = r.total_secs;
    let store_busy = (r.store_stage_secs + r.transfer_secs).min(total);
    let tuner_busy = (r.tuner_stage_secs + r.weight_sync_secs).min(total);

    let store = &setup.store;
    let tuner = InstanceSpec::tuner();
    let mut meter = EnergyMeter::new();
    // PipeStore fleet: busy at high GPU util, otherwise idling.
    meter.record(
        store.power_at(0.9, 0.3).scaled(setup.n_pipestores as f64),
        store_busy,
    );
    meter.record(
        store.power_at(0.0, 0.05).scaled(setup.n_pipestores as f64),
        (total - store_busy).max(0.0),
    );
    // Tuner.
    meter.record(tuner.power_at(0.9, 0.4), tuner_busy);
    meter.record(tuner.power_at(0.0, 0.05), (total - tuner_busy).max(0.0));

    EnergyReport {
        joules: meter.energy_joules(),
        secs: total,
        items: setup.images as f64,
        mean_power: meter.mean_power(),
    }
}

/// Energy of the SRV-C fine-tuning baseline (host + storage servers).
pub fn srv_training_energy(
    model: &dnn::ModelProfile,
    images: u64,
    epochs: usize,
    batch: usize,
    link: &hw::LinkSpec,
    n_storage: usize,
) -> EnergyReport {
    let r = crate::training::srv_training_report(model, images, epochs, batch, link);
    let host = InstanceSpec::srv_host();
    let storage = InstanceSpec::storage_server();
    let mut meter = EnergyMeter::new();
    meter.record(host.power_at(0.9, 0.5), r.total_secs);
    meter.record(
        storage.power_at(0.0, 0.15).scaled(n_storage as f64),
        r.total_secs,
    );
    EnergyReport {
        joules: meter.energy_joules(),
        secs: r.total_secs,
        items: images as f64,
        mean_power: meter.mean_power(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn::ModelProfile;

    fn setup(n: usize) -> InferenceSetup {
        InferenceSetup::paper_default(ModelProfile::resnet50(), n)
    }

    #[test]
    fn ndpipe_beats_srv_c_efficiency_at_matched_throughput() {
        // Fig 14: at P2 (NDPipe ≈ SRV-C throughput), NDPipe draws less
        // power per image.
        let srv_c = inference_report(InferenceVariant::SrvCompressed, &setup(4));
        let n_match = (1..=20)
            .find(|&n| inference_report(InferenceVariant::NdPipe, &setup(n)).ips >= srv_c.ips)
            .unwrap();
        let e_srv = inference_energy(InferenceVariant::SrvCompressed, &setup(4), 1_000_000);
        let e_ndp = inference_energy(InferenceVariant::NdPipe, &setup(n_match), 1_000_000);
        let gain = e_ndp.ips_per_watt() / e_srv.ips_per_watt();
        assert!(gain > 1.1, "efficiency gain {gain}");
        assert!(gain < 3.0, "implausible gain {gain}");
    }

    #[test]
    fn srv_power_magnitude_matches_fig14() {
        // Fig 14 charts the host at ~600 W; the fleet number here also
        // includes the four storage servers.
        let p = fleet_power(InferenceVariant::SrvCompressed, &setup(4));
        assert!((800.0..2200.0).contains(&p.total()), "{p}");
        assert!(p.gpu > 0.0 && p.cpu > 0.0 && p.other > 0.0);
        let host_only = InstanceSpec::srv_host().power_at(0.6, 0.5);
        assert!((450.0..900.0).contains(&host_only.total()), "{host_only}");
    }

    #[test]
    fn training_energy_efficiency_peaks_then_falls() {
        // Fig 11(b): IPS/kJ rises to the balance point then decays as
        // extra PipeStores idle.
        let eff: Vec<f64> = (1..=20)
            .map(|n| {
                let s = crate::training::TrainSetup::paper_default(ModelProfile::resnet50(), n);
                training_energy(&s).ips_per_kilojoule()
            })
            .collect();
        let best = eff
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0
            + 1;
        assert!((3..=14).contains(&best), "peak at {best}");
        assert!(eff[19] < eff[best - 1], "tail should decay: {eff:?}");
    }

    #[test]
    fn ndpipe_training_more_efficient_than_srv_fig16() {
        let link = hw::LinkSpec::ethernet_gbps(10.0);
        let model = ModelProfile::resnet50();
        let srv = srv_training_energy(&model, 1_200_000, 20, 512, &link, 4);
        // BEST = the store count with max IPS/kJ.
        let best = (1..=20)
            .map(|n| {
                let s = crate::training::TrainSetup::paper_default(model.clone(), n);
                training_energy(&s)
            })
            .max_by(|a, b| {
                a.ips_per_kilojoule()
                    .partial_cmp(&b.ips_per_kilojoule())
                    .unwrap()
            })
            .unwrap();
        let gain = best.ips_per_kilojoule() / srv.ips_per_kilojoule();
        assert!(gain > 1.3, "training efficiency gain {gain}");
        assert!(gain < 5.0, "implausible gain {gain}");
    }

    #[test]
    fn inf1_fleet_is_more_power_efficient_fig20() {
        // Match SRV-C throughput with each accelerator type and compare
        // IPS/W: Inferentia should win on efficiency despite needing
        // more stores.
        let srv_c = inference_report(InferenceVariant::SrvCompressed, &setup(4)).ips;
        let match_n = |v: InferenceVariant| {
            (1..=40)
                .find(|&n| inference_report(v, &setup(n)).ips >= srv_c)
                .unwrap()
        };
        let n_inf1 = match_n(InferenceVariant::NdPipeInf1);
        let e_srv = inference_energy(InferenceVariant::SrvCompressed, &setup(4), 1_000_000);
        let e_inf1 = inference_energy(InferenceVariant::NdPipeInf1, &setup(n_inf1), 1_000_000);
        let gain = e_inf1.ips_per_watt() / e_srv.ips_per_watt();
        assert!(gain > 1.0, "inf1 gain {gain}");
    }

    #[test]
    fn energy_report_metrics_are_consistent() {
        let e = inference_energy(InferenceVariant::NdPipe, &setup(4), 100_000);
        let manual = (e.items / e.secs) / e.mean_power.total();
        assert!((e.ips_per_watt() - manual).abs() < 1e-9);
        assert!(e.joules > 0.0);
    }
}
