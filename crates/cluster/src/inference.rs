//! Offline-inference throughput models (Figs 13, 18, 19, 20).

use crate::{min_cap, Bottleneck};
use dnn::ModelProfile;
use hw::{InstanceSpec, LinkSpec, COMPRESSED_IMAGE_BYTES, LABEL_BYTES, PREPROC_IMAGE_BYTES};

/// Which offline-inference system is being modeled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InferenceVariant {
    /// Ideal centralized host: preprocessed binaries in host-local NVMe,
    /// no network involvement (not deployable; upper bound).
    SrvIdeal,
    /// Centralized host loading *uncompressed* preprocessed binaries from
    /// storage servers over the network.
    SrvPreproc,
    /// Centralized host loading *compressed* binaries; eight host cores
    /// decompress.
    SrvCompressed,
    /// NDPipe: inference inside T4 PipeStores, labels over the network.
    NdPipe,
    /// NDPipe on Inferentia (NeuronCoreV1) PipeStores.
    NdPipeInf1,
}

impl InferenceVariant {
    /// Short label as the paper prints it.
    pub fn label(&self) -> &'static str {
        match self {
            InferenceVariant::SrvIdeal => "SRV-I",
            InferenceVariant::SrvPreproc => "SRV-P",
            InferenceVariant::SrvCompressed => "SRV-C",
            InferenceVariant::NdPipe => "NDPipe",
            InferenceVariant::NdPipeInf1 => "NDPipe-Inf1",
        }
    }
}

/// The outcome of an inference capacity analysis.
#[derive(Debug, Clone)]
pub struct InferenceReport {
    /// Sustained throughput, images/sec.
    pub ips: f64,
    /// The limiting resource.
    pub bottleneck: Bottleneck,
    /// GPU utilization implied by the bottleneck, `[0, 1]`.
    pub gpu_util: f64,
    /// CPU utilization implied by the bottleneck, `[0, 1]`.
    pub cpu_util: f64,
    /// All capacity terms considered (for diagnostics).
    pub caps: Vec<(Bottleneck, f64)>,
}

/// Offline-inference cluster configuration.
#[derive(Debug, Clone)]
pub struct InferenceSetup {
    /// Model being served.
    pub model: ModelProfile,
    /// Number of storage servers (SRV-*) or PipeStores (NDPipe).
    pub n_servers: usize,
    /// Fabric between storage and host.
    pub link: LinkSpec,
    /// Inference batch size.
    pub batch: usize,
    /// Host cores dedicated to decompression (SRV-C).
    pub decompress_cores: usize,
}

impl InferenceSetup {
    /// The paper's default: 10 Gbps fabric, batch 128, 8 decompress cores.
    pub fn paper_default(model: ModelProfile, n_servers: usize) -> Self {
        InferenceSetup {
            model,
            n_servers,
            link: LinkSpec::ethernet_gbps(10.0),
            batch: 128,
            decompress_cores: 8,
        }
    }
}

/// Computes sustained offline-inference throughput for a variant.
///
/// All variants assume the §5.4 NPE-style optimizations (3-stage
/// pipelining, preprocessed binaries, batching), as §6.1 applies them to
/// the baselines "for a fair comparison" — so throughput is the minimum
/// of the independent stage capacities.
///
/// # Panics
///
/// Panics if `n_servers` is zero.
pub fn inference_report(variant: InferenceVariant, setup: &InferenceSetup) -> InferenceReport {
    assert!(setup.n_servers > 0, "need at least one server");
    let model = &setup.model;
    let batch_eff = ModelProfile::batch_efficiency(setup.batch);
    let host = InstanceSpec::srv_host();
    let host_cpu = &host.cpu;

    let caps: Vec<(Bottleneck, f64)> = match variant {
        InferenceVariant::SrvIdeal => {
            let compute = model.t4_inference_ips() * host.total_dnn_factor() * batch_eff;
            // Host-local NVMe: 8 GB/s of preprocessed binaries.
            let disk = 8.0e9 / PREPROC_IMAGE_BYTES;
            vec![(Bottleneck::Compute, compute), (Bottleneck::Disk, disk)]
        }
        InferenceVariant::SrvPreproc => {
            let compute = model.t4_inference_ips() * host.total_dnn_factor() * batch_eff;
            let net = setup.link.items_per_sec(PREPROC_IMAGE_BYTES);
            let disk = storage_disk_cap(setup.n_servers, PREPROC_IMAGE_BYTES);
            vec![
                (Bottleneck::Compute, compute),
                (Bottleneck::Network, net),
                (Bottleneck::Disk, disk),
            ]
        }
        InferenceVariant::SrvCompressed => {
            let compute = model.t4_inference_ips() * host.total_dnn_factor() * batch_eff;
            let net = setup.link.items_per_sec(COMPRESSED_IMAGE_BYTES);
            let disk = storage_disk_cap(setup.n_servers, COMPRESSED_IMAGE_BYTES);
            let decomp = host_cpu.decompress_bps(setup.decompress_cores) / COMPRESSED_IMAGE_BYTES;
            vec![
                (Bottleneck::Compute, compute),
                (Bottleneck::Network, net),
                (Bottleneck::Disk, disk),
                (Bottleneck::Decompress, decomp),
            ]
        }
        InferenceVariant::NdPipe | InferenceVariant::NdPipeInf1 => {
            let store = if variant == InferenceVariant::NdPipe {
                InstanceSpec::pipestore()
            } else {
                InstanceSpec::pipestore_inf1()
            };
            let n = setup.n_servers as f64;
            let compute = model.t4_inference_ips() * store.total_dnn_factor() * batch_eff * n;
            // Each PipeStore reads its own compressed binaries locally and
            // decompresses on two reserved cores (§5.4).
            let disk = n * store.disk.read_bps / COMPRESSED_IMAGE_BYTES;
            let decomp = n * store.cpu.decompress_bps(2) / COMPRESSED_IMAGE_BYTES;
            // Only tiny labels cross the network.
            let net = setup.link.items_per_sec(LABEL_BYTES);
            vec![
                (Bottleneck::Compute, compute),
                (Bottleneck::Disk, disk),
                (Bottleneck::Decompress, decomp),
                (Bottleneck::Network, net),
            ]
        }
    };

    let (bottleneck, ips) = min_cap(&caps);
    let compute_cap = caps
        .iter()
        .find(|(b, _)| *b == Bottleneck::Compute)
        .map(|&(_, v)| v)
        .unwrap_or(ips);
    let cpu_cap = caps
        .iter()
        .find(|(b, _)| matches!(b, Bottleneck::Decompress | Bottleneck::Preprocess))
        .map(|&(_, v)| v);
    InferenceReport {
        ips,
        bottleneck,
        gpu_util: (ips / compute_cap).min(1.0),
        cpu_util: cpu_cap.map(|c| (ips / c).min(1.0)).unwrap_or(0.1),
        caps,
    }
}

/// Aggregate read capacity (items/sec) of `n` st1 storage servers for
/// items of `bytes` each.
fn storage_disk_cap(n: usize, bytes: f64) -> f64 {
    n as f64 * hw::DiskSpec::st1_raid5().read_bps / bytes
}

/// Whether the model fits on the PipeStore accelerator at `batch`
/// (the Fig 19 OOM guard).
pub fn batch_fits(model: &ModelProfile, store: &InstanceSpec, batch: usize) -> bool {
    store.gpus.iter().all(|g| {
        g.fits_batch(
            model.total_param_bytes(),
            model.activation_bytes_per_image(),
            batch,
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(n: usize) -> InferenceSetup {
        InferenceSetup::paper_default(ModelProfile::resnet50(), n)
    }

    #[test]
    fn srv_variants_are_ordered_i_c_p() {
        // Fig 13: SRV-I ≥ SRV-C ≥ SRV-P for bandwidth-sensitive models.
        let i = inference_report(InferenceVariant::SrvIdeal, &setup(4)).ips;
        let c = inference_report(InferenceVariant::SrvCompressed, &setup(4)).ips;
        let p = inference_report(InferenceVariant::SrvPreproc, &setup(4)).ips;
        assert!(i >= c && c >= p, "I {i} C {c} P {p}");
    }

    #[test]
    fn srv_p_is_network_bound_at_10g() {
        let r = inference_report(InferenceVariant::SrvPreproc, &setup(4));
        assert_eq!(r.bottleneck, Bottleneck::Network);
        assert!((1800.0..2100.0).contains(&r.ips), "ips {}", r.ips);
    }

    #[test]
    fn ndpipe_scales_linearly() {
        let one = inference_report(InferenceVariant::NdPipe, &setup(1)).ips;
        let ten = inference_report(InferenceVariant::NdPipe, &setup(10)).ips;
        assert!((ten / one - 10.0).abs() < 1e-6);
        // Per-store ResNet50 anchor at batch 128.
        assert!((one - 2129.0).abs() < 1.0, "per-store ips {one}");
    }

    #[test]
    fn crossovers_match_fig13_for_resnet50() {
        // P1 (≥ SRV-P) at 1 store, P2 (≥ SRV-C) within 4–7, P3 (≥ SRV-I)
        // within 5–7.
        let at = |n: usize| inference_report(InferenceVariant::NdPipe, &setup(n)).ips;
        let srv_p = inference_report(InferenceVariant::SrvPreproc, &setup(4)).ips;
        let srv_c = inference_report(InferenceVariant::SrvCompressed, &setup(4)).ips;
        let srv_i = inference_report(InferenceVariant::SrvIdeal, &setup(4)).ips;
        let first_ge = |target: f64| (1..=20).find(|&n| at(n) >= target).unwrap_or(99);
        assert_eq!(first_ge(srv_p), 1, "P1");
        let p2 = first_ge(srv_c);
        assert!((4..=7).contains(&p2), "P2 = {p2}");
        let p3 = first_ge(srv_i);
        assert!((5..=7).contains(&p3), "P3 = {p3}");
    }

    #[test]
    fn big_models_make_srv_variants_converge() {
        // Fig 13 ViT: compute-bound host ⇒ SRV-I ≈ SRV-C ≈ SRV-P.
        let s = InferenceSetup::paper_default(ModelProfile::vit_b16(), 4);
        let i = inference_report(InferenceVariant::SrvIdeal, &s).ips;
        let p = inference_report(InferenceVariant::SrvPreproc, &s).ips;
        assert!((i - p).abs() / i < 0.05, "I {i} vs P {p}");
        assert_eq!(
            inference_report(InferenceVariant::SrvPreproc, &s).bottleneck,
            Bottleneck::Compute
        );
        // ResNeXt101's SRV gap is also small compared to ResNet50's.
        let rx = InferenceSetup::paper_default(ModelProfile::resnext101(), 4);
        let gap_rx = inference_report(InferenceVariant::SrvIdeal, &rx).ips
            / inference_report(InferenceVariant::SrvPreproc, &rx).ips;
        let r50 = InferenceSetup::paper_default(ModelProfile::resnet50(), 4);
        let gap_r50 = inference_report(InferenceVariant::SrvIdeal, &r50).ips
            / inference_report(InferenceVariant::SrvPreproc, &r50).ips;
        assert!(gap_rx < gap_r50 / 2.0, "rx {gap_rx} vs r50 {gap_r50}");
    }

    #[test]
    fn srv_c_plateaus_past_20g_on_decompression() {
        // Fig 18: growing bandwidth past 20 Gbps stops helping SRV-C.
        let mut s = setup(8);
        s.link = LinkSpec::ethernet_gbps(40.0);
        let r = inference_report(InferenceVariant::SrvCompressed, &s);
        assert!(
            matches!(r.bottleneck, Bottleneck::Decompress | Bottleneck::Compute),
            "unexpected bottleneck {}",
            r.bottleneck
        );
    }

    #[test]
    fn inferentia_needs_more_stores_fig20() {
        // Fig 20(a): NDPipe-Inf1 matches SRV-C at 11–16 stores (T4: 4–7).
        let srv_c = inference_report(InferenceVariant::SrvCompressed, &setup(4)).ips;
        let first_ge = |v: InferenceVariant| {
            (1..=30)
                .find(|&n| inference_report(v, &setup(n)).ips >= srv_c)
                .unwrap_or(99)
        };
        let t4 = first_ge(InferenceVariant::NdPipe);
        let inf1 = first_ge(InferenceVariant::NdPipeInf1);
        assert!((4..=7).contains(&t4), "t4 {t4}");
        assert!((11..=16).contains(&inf1), "inf1 {inf1}");
    }

    #[test]
    fn batch_one_is_far_below_batch_128() {
        let mut s1 = setup(4);
        s1.batch = 1;
        let low = inference_report(InferenceVariant::NdPipe, &s1).ips;
        let high = inference_report(InferenceVariant::NdPipe, &setup(4)).ips;
        assert!(low < high * 0.1, "batch1 {low} vs batch128 {high}");
    }

    #[test]
    fn vit_oom_guard() {
        let vit = ModelProfile::vit_b16();
        let store = InstanceSpec::pipestore();
        assert!(batch_fits(&vit, &store, 128));
        assert!(!batch_fits(&vit, &store, 512));
        // CNNs fit even at 512.
        assert!(batch_fits(&ModelProfile::resnet50(), &store, 512));
    }

    #[test]
    fn labels_never_bottleneck_ndpipe() {
        for n in [1, 5, 20] {
            let r = inference_report(InferenceVariant::NdPipe, &setup(n));
            assert_ne!(r.bottleneck, Bottleneck::Network, "n = {n}");
        }
    }
}
