//! The §3.4 / §4 motivation experiments: unoptimized Typical/Ideal hosts
//! (Fig 5) and the naive-NDP per-phase breakdown (Fig 6).
//!
//! These systems predate the NPE optimizations: stages run serially per
//! batch (no 3-stage pipelining), images are raw 2.7 MB JPEGs, and the
//! host engine is the unoptimized TensorFlow-style path
//! ([`crate::UNOPTIMIZED_ENGINE_FACTOR`] slower than TensorRT).

use crate::UNOPTIMIZED_ENGINE_FACTOR;
use dnn::ModelProfile;
use hw::{GpuSpec, InstanceSpec, LinkSpec, PREPROC_IMAGE_BYTES, RAW_IMAGE_BYTES};

/// Which §3.4 host configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineHost {
    /// Host networked to storage servers (reads every image remotely).
    Typical,
    /// Same host with data already in local memory (no network, no read).
    Ideal,
}

/// Per-phase time breakdown of an *offline inference* batch on the
/// unoptimized pipeline, seconds per image.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct InferencePhases {
    /// Reading raw images from storage-server disks.
    pub read: f64,
    /// Shipping raw images over the network.
    pub data_trans: f64,
    /// JPEG decode / resize / normalize on CPUs.
    pub preproc: f64,
    /// Feature extraction + classification on the GPU(s).
    pub fe_cl: f64,
}

impl InferencePhases {
    /// Total serial time per image.
    pub fn total(&self) -> f64 {
        self.read + self.data_trans + self.preproc + self.fe_cl
    }

    /// Sustained throughput of the serial pipeline, images/sec.
    pub fn ips(&self) -> f64 {
        1.0 / self.total()
    }
}

/// Per-phase time breakdown of *fine-tuning*, seconds per image
/// (preprocessed inputs; no preprocessing phase).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FineTunePhases {
    /// Reading preprocessed binaries from disk.
    pub read: f64,
    /// Network transfer of training data.
    pub data_trans: f64,
    /// Feature extraction and classifier training.
    pub fe_ct: f64,
    /// Weight synchronization across workers.
    pub weight_sync: f64,
}

impl FineTunePhases {
    /// Total serial time per image.
    pub fn total(&self) -> f64 {
        self.read + self.data_trans + self.fe_ct + self.weight_sync
    }
}

/// Offline-inference phase breakdown for the unoptimized §3.4 hosts.
///
/// `n_storage` storage servers hold the photos; the host has two V100s
/// and eight preprocessing cores.
pub fn baseline_inference(
    host: BaselineHost,
    model: &ModelProfile,
    n_storage: usize,
    link: &LinkSpec,
) -> InferencePhases {
    let srv = InstanceSpec::srv_host();
    let gpu_ips = model.t4_inference_ips() * srv.total_dnn_factor() / UNOPTIMIZED_ENGINE_FACTOR;
    let preproc_ips = srv.cpu.preprocess_ips(8);
    let remote = host == BaselineHost::Typical;
    InferencePhases {
        read: if remote {
            RAW_IMAGE_BYTES / (n_storage as f64 * hw::DiskSpec::st1_raid5().read_bps)
        } else {
            0.0
        },
        data_trans: if remote {
            RAW_IMAGE_BYTES / link.effective_bps()
        } else {
            0.0
        },
        preproc: 1.0 / preproc_ips,
        fe_cl: 1.0 / gpu_ips,
    }
}

/// Offline-inference breakdown for *naive NDP* (§4.2): everything local
/// to the storage server, but only one CPU core for preprocessing and the
/// low-end T4 for compute.
pub fn naive_ndp_inference(model: &ModelProfile, n_stores: usize) -> InferencePhases {
    let store = InstanceSpec::pipestore();
    let n = n_stores as f64;
    let gpu_ips = n * model.t4_inference_ips() / UNOPTIMIZED_ENGINE_FACTOR;
    let preproc_ips = n * store.cpu.preprocess_ips(1);
    InferencePhases {
        read: RAW_IMAGE_BYTES / (n * store.disk.read_bps),
        data_trans: 0.0,
        preproc: 1.0 / preproc_ips,
        fe_cl: 1.0 / gpu_ips,
    }
}

/// Fine-tuning phase breakdown for the unoptimized §3.4 hosts, per image,
/// over preprocessed ImageNet binaries.
pub fn baseline_fine_tune(
    host: BaselineHost,
    model: &ModelProfile,
    n_storage: usize,
    link: &LinkSpec,
) -> FineTunePhases {
    let srv = InstanceSpec::srv_host();
    let gpu_ips = model.t4_inference_ips() * srv.total_dnn_factor() / UNOPTIMIZED_ENGINE_FACTOR;
    let remote = host == BaselineHost::Typical;
    FineTunePhases {
        read: if remote {
            PREPROC_IMAGE_BYTES / (n_storage as f64 * hw::DiskSpec::st1_raid5().read_bps)
        } else {
            0.0
        },
        data_trans: if remote {
            PREPROC_IMAGE_BYTES / link.effective_bps()
        } else {
            0.0
        },
        fe_ct: 1.0 / gpu_ips,
        weight_sync: 0.0,
    }
}

/// Fine-tuning breakdown for *naive NDP* (§4.1): full fine-tuning
/// replicated on the storage-server GPUs with per-iteration weight
/// synchronization over the network.
pub fn naive_ndp_fine_tune(
    model: &ModelProfile,
    n_stores: usize,
    link: &LinkSpec,
    batch: usize,
) -> FineTunePhases {
    let store = InstanceSpec::pipestore();
    let t4 = GpuSpec::tesla_t4();
    let n = n_stores as f64;
    let gpu_ips = n * model.t4_inference_ips() * t4.dnn_factor / UNOPTIMIZED_ENGINE_FACTOR;
    // Full model replicated: all trainable, so *all* parameters sync
    // every iteration, amortized per image.
    let sync_bytes_per_image = model.trainable_param_bytes() * 2.0 * n / batch as f64;
    FineTunePhases {
        read: PREPROC_IMAGE_BYTES / (n * store.disk.read_bps),
        data_trans: 0.0,
        fe_ct: 1.0 / gpu_ips * 1.36, // §4.1: FE&CT 36 % longer on low-end GPUs
        weight_sync: sync_bytes_per_image / link.effective_bps()
            + crate::training::SYNC_ROUND_LATENCY_SECS / batch as f64 * n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> LinkSpec {
        LinkSpec::ethernet_gbps(10.0)
    }

    #[test]
    fn fig5b_typical_vs_ideal_inference() {
        let m = ModelProfile::resnet50();
        let typ = baseline_inference(BaselineHost::Typical, &m, 4, &link());
        let ideal = baseline_inference(BaselineHost::Ideal, &m, 4, &link());
        // Paper: Typical 94 IPS, Ideal 123 IPS.
        assert!((75.0..110.0).contains(&typ.ips()), "typical {}", typ.ips());
        assert!(
            (110.0..135.0).contains(&ideal.ips()),
            "ideal {}",
            ideal.ips()
        );
        assert!(ideal.ips() > typ.ips());
    }

    #[test]
    fn fig5a_fine_tune_gap_is_severalfold() {
        let m = ModelProfile::resnet50();
        let typ = baseline_fine_tune(BaselineHost::Typical, &m, 4, &link());
        let ideal = baseline_fine_tune(BaselineHost::Ideal, &m, 4, &link());
        let ratio = typ.total() / ideal.total();
        // Paper: 3.7× slower.
        assert!((2.5..5.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn fig6a_ndp_kills_transfer_but_adds_sync() {
        let m = ModelProfile::resnet50();
        let typ = baseline_fine_tune(BaselineHost::Typical, &m, 4, &link());
        let ndp = naive_ndp_fine_tune(&m, 4, &link(), 512);
        assert_eq!(ndp.data_trans, 0.0);
        assert!(typ.data_trans > 0.0);
        // The new bottleneck: weight sync dominates naive NDP.
        assert!(ndp.weight_sync > 0.0);
        // §4.1: FE&CT only ~36 % slower on the aggregate of low-end GPUs.
        let slowdown = ndp.fe_ct / typ.fe_ct;
        assert!((1.5..2.8).contains(&slowdown), "slowdown {slowdown}");
    }

    #[test]
    fn fig6b_ndp_preprocessing_bottleneck() {
        let m = ModelProfile::resnet50();
        let typ = baseline_inference(BaselineHost::Typical, &m, 4, &link());
        let ndp = naive_ndp_inference(&m, 4);
        assert_eq!(ndp.data_trans, 0.0);
        // One core per store vs eight on the host: preprocessing balloons.
        assert!(
            ndp.preproc > typ.preproc * 1.5,
            "ndp {} vs typ {}",
            ndp.preproc,
            typ.preproc
        );
        // §4.2: computation only ~1.33× longer than Typical's.
        let comp_ratio = ndp.fe_cl / typ.fe_cl;
        assert!((1.0..2.0).contains(&comp_ratio), "comp ratio {comp_ratio}");
    }

    #[test]
    fn phases_total_is_sum() {
        let p = InferencePhases {
            read: 0.1,
            data_trans: 0.2,
            preproc: 0.3,
            fe_cl: 0.4,
        };
        assert!((p.total() - 1.0).abs() < 1e-12);
        assert!((p.ips() - 1.0).abs() < 1e-12);
    }
}
