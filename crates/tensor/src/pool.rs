//! Persistent chunked worker pool shared by every parallel kernel.
//!
//! PR 1 parallelized `matmul`/`conv2d`/the codec by spawning a fresh
//! `crossbeam::thread::scope` per call — a few hundred microseconds of
//! thread creation on every large GEMM. This module replaces those spawns
//! with one process-wide pool of long-lived workers and a chunked
//! self-scheduling job queue:
//!
//! - [`run`] executes `n_tasks` closures; workers (and the caller, which
//!   always participates) claim task indices from a shared atomic counter,
//!   so load balances dynamically ("work stealing" at band granularity)
//!   while the *work itself* stays deterministic: task `i` computes the
//!   same bytes whichever thread runs it.
//! - Per-job seat limits honour `NDPIPE_THREADS`: a job admits at most
//!   `threads - 1` helpers even when the pool has more workers idle.
//! - Worker panics never unwind across the pool: each task runs under
//!   `catch_unwind` and the first failure is reported to the submitting
//!   caller as a typed [`PoolError`] after the job fully drains.
//!
//! Deadlock freedom: the caller of [`run`] participates until its own job
//! is complete and never executes tasks of *other* jobs, so a nested
//! `run` (e.g. a GEMM inside an FT-DMP store-stage task) always makes
//! progress even when every pool worker is busy elsewhere.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};

/// Hard cap on pool workers (the caller thread is extra). Sized for the
/// largest `NDPIPE_THREADS` sweep the benches run, not for real clusters.
pub const MAX_WORKERS: usize = 31;

/// Typed failure of a pool job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// A task panicked; the message is the panic payload (first one wins).
    /// The job still drained completely before this was returned.
    WorkerPanicked(String),
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::WorkerPanicked(msg) => write!(f, "pool worker panicked: {msg}"),
        }
    }
}

impl std::error::Error for PoolError {}

/// Type-erased pointer to the caller's task closure.
///
/// Safety: the pointee lives on the stack of the [`run`] caller, which
/// blocks until every task of the job has completed; tasks are the only
/// code that dereferences the pointer, so it is never used after `run`
/// returns.
struct RawTask(*const (dyn Fn(usize) + Sync));

// Safety: the pointee is `Sync` (shared-callable from any thread) and the
// pointer itself is only a capability to call it; see `RawTask` docs for
// the lifetime argument.
unsafe impl Send for RawTask {}
unsafe impl Sync for RawTask {}

/// One submitted job: a task closure plus chunked-scheduling state.
struct JobState {
    task: RawTask,
    /// Total tasks in the job.
    n_tasks: usize,
    /// Next unclaimed task index.
    next: AtomicUsize,
    /// Helper seats left (caller participation is not counted).
    seats: AtomicUsize,
    /// Tasks not yet completed; guarded so `done` can signal on zero.
    remaining: Mutex<usize>,
    done: Condvar,
    /// First panic payload observed by any participant.
    panic: Mutex<Option<String>>,
}

impl JobState {
    /// Claims one helper seat; `false` means the job wants no more helpers.
    fn claim_seat(&self) -> bool {
        self.seats
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |s| s.checked_sub(1))
            .is_ok()
    }

    /// Whether a scan of the queue should still offer this job to workers.
    fn wants_helpers(&self) -> bool {
        self.seats.load(Ordering::Acquire) > 0 && self.next.load(Ordering::Acquire) < self.n_tasks
    }

    /// Claims task indices and runs them until the job is exhausted,
    /// containing panics per task. Used by workers and the caller alike.
    fn drain(&self) {
        // Safety: see `RawTask` — the closure outlives every task
        // execution because the submitting `run` call blocks on
        // `wait_done` before returning.
        let task: &(dyn Fn(usize) + Sync) = unsafe { &*self.task.0 };
        loop {
            let i = self.next.fetch_add(1, Ordering::AcqRel);
            if i >= self.n_tasks {
                break;
            }
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task(i)));
            if let Err(payload) = result {
                let msg = panic_message(&*payload);
                let mut first = lock_ignoring_poison(&self.panic);
                if first.is_none() {
                    *first = Some(msg);
                }
            }
            let mut rem = lock_ignoring_poison(&self.remaining);
            *rem = rem.saturating_sub(1);
            if *rem == 0 {
                self.done.notify_all();
            }
        }
    }

    /// Blocks until every task has completed.
    fn wait_done(&self) {
        let mut rem = lock_ignoring_poison(&self.remaining);
        while *rem > 0 {
            rem = self.done.wait(rem).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// The process-wide pool: a queue of jobs wanting helpers, plus lazily
/// spawned workers.
struct Pool {
    queue: Mutex<Vec<Arc<JobState>>>,
    work_available: Condvar,
    spawned: AtomicUsize,
}

fn pool() -> &'static Pool {
    static POOL: std::sync::OnceLock<Pool> = std::sync::OnceLock::new();
    POOL.get_or_init(|| Pool {
        queue: Mutex::new(Vec::new()),
        work_available: Condvar::new(),
        spawned: AtomicUsize::new(0),
    })
}

fn lock_ignoring_poison<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    // A panicked task is already reported through `JobState::panic`; the
    // guarded state (counters, queue vec) stays structurally valid.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Pool {
    /// Ensures at least `want` workers exist (capped at [`MAX_WORKERS`]).
    /// Spawn failure degrades parallelism, never correctness: the caller
    /// still drains its own job.
    fn ensure_workers(&'static self, want: usize) {
        let want = want.min(MAX_WORKERS);
        while self.spawned.load(Ordering::Acquire) < want {
            let id = self.spawned.fetch_add(1, Ordering::AcqRel);
            if id >= want {
                // Raced past the target; undo the reservation.
                self.spawned.fetch_sub(1, Ordering::AcqRel);
                break;
            }
            let spawn = std::thread::Builder::new()
                .name(format!("ndpipe-pool-{id}"))
                .spawn(move || self.worker_loop());
            if spawn.is_err() {
                self.spawned.fetch_sub(1, Ordering::AcqRel);
                break;
            }
        }
    }

    /// Publishes a job to the helper queue and wakes workers.
    fn submit(&self, job: Arc<JobState>) {
        let depth = {
            let mut q = lock_ignoring_poison(&self.queue);
            q.push(job);
            q.len()
        };
        if telemetry::enabled() {
            telemetry::global()
                .gauge(
                    "ndpipe_pool_queue_depth",
                    "jobs currently queued for helpers in the shared worker pool",
                )
                .set(depth as f64);
        }
        self.work_available.notify_all();
    }

    /// Worker body: repeatedly find a job that wants helpers, claim a
    /// seat, and drain it.
    fn worker_loop(&self) {
        loop {
            let job = {
                let mut q = lock_ignoring_poison(&self.queue);
                loop {
                    q.retain(|j| j.wants_helpers());
                    if telemetry::enabled() {
                        telemetry::global()
                            .gauge(
                                "ndpipe_pool_queue_depth",
                                "jobs currently queued for helpers in the shared worker pool",
                            )
                            .set(q.len() as f64);
                    }
                    if let Some(j) = q.iter().find(|j| j.claim_seat()) {
                        break j.clone();
                    }
                    q = self
                        .work_available
                        .wait(q)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            };
            job.drain();
        }
    }
}

/// Runs `task(0..n_tasks)` across up to `threads` participants (the
/// caller plus at most `threads - 1` pool workers) and returns once every
/// task has completed.
///
/// Tasks are claimed dynamically from a shared counter, so scheduling is
/// nondeterministic but *assignment-independent*: as long as `task(i)`
/// computes the same result for a given `i` regardless of thread (the
/// contract every kernel in this crate upholds by writing disjoint,
/// index-addressed output bands), results are bit-identical at any
/// `threads` value.
///
/// # Errors
///
/// Returns [`PoolError::WorkerPanicked`] if any task panicked. The job is
/// always fully drained first — remaining tasks still run, so a poisoned
/// output band never wedges sibling bands.
pub fn run(threads: usize, n_tasks: usize, task: &(dyn Fn(usize) + Sync)) -> Result<(), PoolError> {
    if n_tasks == 0 {
        return Ok(());
    }
    let threads = threads.max(1).min(n_tasks);
    if threads == 1 || n_tasks == 1 {
        // Serial fast path: same per-task panic containment, no queue.
        let mut first_panic = None;
        for i in 0..n_tasks {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task(i)));
            if let Err(payload) = result {
                first_panic.get_or_insert_with(|| panic_message(&*payload));
            }
        }
        return match first_panic {
            Some(msg) => Err(PoolError::WorkerPanicked(msg)),
            None => Ok(()),
        };
    }

    // Safety: pure lifetime erasure — `run` blocks on `wait_done` until
    // every task has finished, and tasks are the only users of this
    // pointer, so it never outlives the borrow it came from.
    let task_erased: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(task) };
    let job = Arc::new(JobState {
        task: RawTask(task_erased as *const (dyn Fn(usize) + Sync)),
        n_tasks,
        next: AtomicUsize::new(0),
        seats: AtomicUsize::new(threads - 1),
        remaining: Mutex::new(n_tasks),
        done: Condvar::new(),
        panic: Mutex::new(None),
    });
    let p = pool();
    p.ensure_workers(threads - 1);
    p.submit(job.clone());
    job.drain(); // the caller always participates in its own job
    job.wait_done();

    let first = lock_ignoring_poison(&job.panic).take();
    match first {
        Some(msg) => Err(PoolError::WorkerPanicked(msg)),
        None => Ok(()),
    }
}

/// Parallel indexed map over `0..n`: runs `f(i)` through [`run`] and
/// collects the results in index order.
///
/// # Errors
///
/// Returns [`PoolError::WorkerPanicked`] if any task panicked (the
/// surviving tasks still ran to completion).
pub fn map_indexed<R, F>(threads: usize, n: usize, f: F) -> Result<Vec<R>, PoolError>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    run(threads, n, &|i| {
        let r = f(i);
        if let Some(slot) = slots.get(i) {
            *lock_ignoring_poison(slot) = Some(r);
        }
    })?;
    let mut out = Vec::with_capacity(n);
    for slot in slots {
        match slot.into_inner().unwrap_or_else(PoisonError::into_inner) {
            Some(r) => out.push(r),
            // Unreachable when run() returned Ok, but keep the typed path:
            // a task that produced no result is a worker failure.
            None => {
                return Err(PoolError::WorkerPanicked(
                    "task completed without producing a result".to_string(),
                ))
            }
        }
    }
    Ok(out)
}

/// Number of workers the pool has spawned so far (diagnostics/tests).
pub fn spawned_workers() -> usize {
    pool().spawned.load(Ordering::Acquire)
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_every_task_exactly_once() {
        for threads in [1, 2, 4, 8] {
            let hits: Vec<AtomicU64> = (0..37).map(|_| AtomicU64::new(0)).collect();
            run(threads, hits.len(), &|i| {
                hits[i].fetch_add(1, Ordering::SeqCst);
            })
            .expect("no panics");
            assert!(
                hits.iter().all(|h| h.load(Ordering::SeqCst) == 1),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn zero_tasks_is_a_noop() {
        assert_eq!(run(4, 0, &|_| unreachable!()), Ok(()));
    }

    #[test]
    fn panics_surface_as_typed_errors_after_draining() {
        for threads in [1, 3] {
            let completed: Vec<AtomicU64> = (0..16).map(|_| AtomicU64::new(0)).collect();
            let err = run(threads, 16, &|i| {
                if i == 5 {
                    panic!("band {i} exploded");
                }
                completed[i].fetch_add(1, Ordering::SeqCst);
            })
            .expect_err("task 5 panicked");
            assert_eq!(
                err,
                PoolError::WorkerPanicked("band 5 exploded".to_string()),
                "threads={threads}"
            );
            // Every other task still ran: the job drained fully.
            let done: u64 = completed.iter().map(|c| c.load(Ordering::SeqCst)).sum();
            assert_eq!(done, 15, "threads={threads}");
        }
    }

    #[test]
    fn map_collects_in_index_order() {
        for threads in [1, 2, 8] {
            let out = map_indexed(threads, 25, |i| i * i).expect("no panics");
            let expect: Vec<usize> = (0..25).map(|i| i * i).collect();
            assert_eq!(out, expect, "threads={threads}");
        }
    }

    #[test]
    fn map_propagates_panics() {
        let err = map_indexed(4, 8, |i| {
            if i == 2 {
                panic!("boom");
            }
            i
        })
        .expect_err("task 2 panicked");
        assert_eq!(err, PoolError::WorkerPanicked("boom".to_string()));
    }

    #[test]
    fn nested_runs_complete() {
        // A task that itself calls run() must not deadlock even when the
        // pool is saturated: callers drain their own jobs.
        let total = AtomicU64::new(0);
        run(4, 4, &|_| {
            run(4, 8, &|j| {
                total.fetch_add(j as u64, Ordering::SeqCst);
            })
            .expect("inner job");
        })
        .expect("outer job");
        assert_eq!(total.load(Ordering::SeqCst), 4 * (0..8).sum::<u64>());
    }

    #[test]
    fn error_display_is_informative() {
        let e = PoolError::WorkerPanicked("kernel bug".into());
        assert!(e.to_string().contains("kernel bug"));
    }
}
