//! Panel packing and thread-local scratch for the packed GEMM kernel.
//!
//! The [`crate::linalg`] microkernel multiplies an `MR×k` micro-panel of A
//! by a `k×NR` micro-panel of B into an `MR×NR` register tile. This module
//! produces those panels:
//!
//! - **A panels** (`pack_a_panels`): groups of [`MR`] rows, stored
//!   k-major — for each `kk`, the `MR` row elements are adjacent — so the
//!   microkernel loads one contiguous `[f32; MR]` per k step.
//! - **B panels** (`pack_b_panels`): groups of [`NR`] columns, stored
//!   k-major — for each `kk`, the `NR` column elements are adjacent — so
//!   the inner loop is a contiguous `[f32; NR]` vector op.
//!
//! Edge panels (when `m % MR != 0` or `n % NR != 0`) are zero-padded:
//! the microkernel always computes a full tile and the driver masks the
//! write-back, so there is no scalar edge path.
//!
//! Packing reads the source through [`MatRef`], a strided view. That is
//! what lets one kernel serve `matmul` (both operands natural),
//! `matmul_tn` (A read column-major from a `[k, m]` buffer) and
//! `matmul_nt` (B read column-major from an `[n, k]` buffer): transposes
//! are absorbed into the pack strides and never materialized.
//!
//! Scratch buffers ([`with_pack_a`], [`with_pack_b`], [`with_im2col`])
//! are thread-local and keep their capacity across calls, so steady-state
//! GEMM and conv do no per-call (or per-image) allocation. They are
//! distinct cells because they nest: a conv task holds the im2col buffer
//! while the GEMM inside it borrows the pack buffers.

use crate::Tensor;
use std::cell::RefCell;

/// Micro-tile rows: each microkernel invocation produces `MR` output rows.
pub const MR: usize = 4;
/// Micro-tile columns: the innermost loop is an `NR`-wide f32 vector op.
/// Sized so the `MR×NR` f32 accumulator fits the baseline x86-64 SSE2
/// register file with room for the A broadcast and B row.
pub const NR: usize = 8;

/// Wide micro-tile columns for the fast kernel family: one AVX-512 zmm
/// (or two ymm) per accumulator row. B packed at this width feeds the
/// fast microkernels with a single contiguous load per k step.
pub const WR: usize = 2 * NR;

/// Borrowed strided matrix view: element `(r, c)` is
/// `data[r * rs + c * cs]`. Lets the packers read natural and transposed
/// operands with the same code.
#[derive(Debug, Clone, Copy)]
pub(crate) struct MatRef<'a> {
    pub data: &'a [f32],
    pub rows: usize,
    pub cols: usize,
    pub rs: usize,
    pub cs: usize,
}

impl<'a> MatRef<'a> {
    /// Natural view of a row-major `[rows, cols]` buffer.
    pub fn row_major(data: &'a [f32], rows: usize, cols: usize) -> Self {
        MatRef {
            data,
            rows,
            cols,
            rs: cols,
            cs: 1,
        }
    }

    /// Transposed view of a row-major `[cols, rows]` buffer: the view is
    /// `[rows, cols]` but walks the buffer column-first.
    pub fn transposed(data: &'a [f32], rows: usize, cols: usize) -> Self {
        MatRef {
            data,
            rows,
            cols,
            rs: 1,
            cs: rows,
        }
    }

    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.rs + c * self.cs]
    }
}

/// Packs rows `r0..r1` of `a` into `MR`-row micro-panels, k-major,
/// zero-padding the final panel. `buf` is resized to exactly
/// `ceil((r1-r0)/MR) * MR * a.cols`.
pub(crate) fn pack_a_panels(a: &MatRef<'_>, r0: usize, r1: usize, buf: &mut Vec<f32>) {
    let rows = r1 - r0;
    let k = a.cols;
    let panels = rows.div_ceil(MR);
    buf.clear();
    buf.resize(panels * MR * k, 0.0);
    for p in 0..panels {
        let base = p * MR * k;
        let pr0 = r0 + p * MR;
        let pr_n = MR.min(r1 - pr0);
        if a.cs == 1 {
            // Natural rows are contiguous: walk each row once.
            for r in 0..pr_n {
                let src = &a.data[(pr0 + r) * a.rs..(pr0 + r) * a.rs + k];
                for (kk, &v) in src.iter().enumerate() {
                    buf[base + kk * MR + r] = v;
                }
            }
        } else {
            for kk in 0..k {
                for r in 0..pr_n {
                    buf[base + kk * MR + r] = a.at(pr0 + r, kk);
                }
            }
        }
    }
}

/// Packs all columns of `b` into `NR`-column micro-panels, k-major,
/// zero-padding the final panel. `buf` is resized to exactly
/// `ceil(b.cols/NR) * NR * b.rows`.
pub(crate) fn pack_b_panels(b: &MatRef<'_>, buf: &mut Vec<f32>) {
    let k = b.rows;
    let n = b.cols;
    let panels = n.div_ceil(NR);
    buf.clear();
    buf.resize(panels * NR * k, 0.0);
    for p in 0..panels {
        let base = p * NR * k;
        let pc0 = p * NR;
        let pc_n = NR.min(n - pc0);
        if b.cs == 1 {
            // Natural B: each k step copies a contiguous NR-slice of a row.
            for kk in 0..k {
                let src = &b.data[kk * b.rs + pc0..kk * b.rs + pc0 + pc_n];
                buf[base + kk * NR..base + kk * NR + pc_n].copy_from_slice(src);
            }
        } else {
            // Transposed B (matmul_nt): columns of the view are contiguous
            // source rows, so walk column-first.
            for c in 0..pc_n {
                let col = &b.data[(pc0 + c) * b.cs..(pc0 + c) * b.cs + k];
                for (kk, &v) in col.iter().enumerate() {
                    buf[base + kk * NR + c] = v;
                }
            }
        }
    }
}

/// Packs all columns of `b` into [`WR`]-column micro-panels, k-major,
/// zero-padding the final panel — the fast kernel family's B layout
/// (`buf` sized `ceil(b.cols/WR) * WR * b.rows`).
pub(crate) fn pack_b_panels_wide(b: &MatRef<'_>, buf: &mut Vec<f32>) {
    let k = b.rows;
    let n = b.cols;
    let panels = n.div_ceil(WR);
    buf.clear();
    buf.resize(panels * WR * k, 0.0);
    for p in 0..panels {
        let base = p * WR * k;
        let pc0 = p * WR;
        let pc_n = WR.min(n - pc0);
        if b.cs == 1 {
            for kk in 0..k {
                let src = &b.data[kk * b.rs + pc0..kk * b.rs + pc0 + pc_n];
                buf[base + kk * WR..base + kk * WR + pc_n].copy_from_slice(src);
            }
        } else {
            for c in 0..pc_n {
                let col = &b.data[(pc0 + c) * b.cs..(pc0 + c) * b.cs + k];
                for (kk, &v) in col.iter().enumerate() {
                    buf[base + kk * WR + c] = v;
                }
            }
        }
    }
}

/// An owned, fully packed left operand (`[m, k]`), reusable across calls.
/// Produced once per conv2d call (or cached per frozen layer) so every
/// image/band skips the A-pack pass.
#[derive(Debug, Clone)]
pub struct PackedA {
    pub(crate) buf: Vec<f32>,
    pub(crate) m: usize,
    pub(crate) k: usize,
}

impl PackedA {
    /// Packs a row-major `[m, k]` matrix.
    ///
    /// # Panics
    ///
    /// Panics unless `a` is rank 2.
    pub fn pack(a: &Tensor) -> Self {
        assert_eq!(a.shape().rank(), 2, "PackedA::pack needs a matrix");
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let mut buf = Vec::new();
        pack_a_panels(&MatRef::row_major(a.data(), m, k), 0, m, &mut buf);
        PackedA { buf, m, k }
    }

    /// Logical dimensions `[m, k]`.
    pub fn dims(&self) -> (usize, usize) {
        (self.m, self.k)
    }
}

/// An owned, fully packed right operand (`[k, n]`), reusable across calls.
/// This is what the frozen-layer packed-weight cache stores.
#[derive(Debug, Clone)]
pub struct PackedB {
    pub(crate) buf: Vec<f32>,
    pub(crate) k: usize,
    pub(crate) n: usize,
}

impl PackedB {
    /// Packs a row-major `[k, n]` matrix.
    ///
    /// # Panics
    ///
    /// Panics unless `b` is rank 2.
    pub fn pack(b: &Tensor) -> Self {
        assert_eq!(b.shape().rank(), 2, "PackedB::pack needs a matrix");
        let (k, n) = (b.dims()[0], b.dims()[1]);
        let mut buf = Vec::new();
        pack_b_panels(&MatRef::row_major(b.data(), k, n), &mut buf);
        PackedB { buf, k, n }
    }

    /// Packs the transpose of a row-major `[n, k]` matrix — i.e. packs
    /// `wᵀ` from a linear layer's `[out, in]` weight so `x @ wᵀ`
    /// ([`crate::linalg::matmul_nt`]) can run prepacked.
    ///
    /// # Panics
    ///
    /// Panics unless `w` is rank 2.
    pub fn pack_nt(w: &Tensor) -> Self {
        assert_eq!(w.shape().rank(), 2, "PackedB::pack_nt needs a matrix");
        let (n, k) = (w.dims()[0], w.dims()[1]);
        let mut buf = Vec::new();
        pack_b_panels(&MatRef::transposed(w.data(), k, n), &mut buf);
        PackedB { buf, k, n }
    }

    /// Logical dimensions `[k, n]`.
    pub fn dims(&self) -> (usize, usize) {
        (self.k, self.n)
    }
}

thread_local! {
    static PACK_A_SCRATCH: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    static PACK_B_SCRATCH: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    static IM2COL_SCRATCH: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` with this thread's A-pack scratch buffer (capacity persists).
pub(crate) fn with_pack_a<R>(f: impl FnOnce(&mut Vec<f32>) -> R) -> R {
    PACK_A_SCRATCH.with(|c| f(&mut c.borrow_mut()))
}

/// Runs `f` with this thread's B-pack scratch buffer (capacity persists).
pub(crate) fn with_pack_b<R>(f: impl FnOnce(&mut Vec<f32>) -> R) -> R {
    PACK_B_SCRATCH.with(|c| f(&mut c.borrow_mut()))
}

/// Runs `f` with this thread's im2col scratch buffer (capacity persists).
pub(crate) fn with_im2col<R>(f: impl FnOnce(&mut Vec<f32>) -> R) -> R {
    IM2COL_SCRATCH.with(|c| f(&mut c.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_a_layout_and_padding() {
        // 3×2 matrix, MR=4: one panel, row 3 zero-padded.
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let v = MatRef::row_major(&a, 3, 2);
        let mut buf = Vec::new();
        pack_a_panels(&v, 0, 3, &mut buf);
        assert_eq!(buf.len(), MR * 2);
        // kk = 0 column then kk = 1 column, each MR wide.
        assert_eq!(&buf[..MR], &[1.0, 3.0, 5.0, 0.0]);
        assert_eq!(&buf[MR..], &[2.0, 4.0, 6.0, 0.0]);
    }

    #[test]
    fn pack_b_layout_and_padding() {
        // 2×3 matrix, NR=8: one panel, cols 3..8 zero-padded.
        let b = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let v = MatRef::row_major(&b, 2, 3);
        let mut buf = Vec::new();
        pack_b_panels(&v, &mut buf);
        assert_eq!(buf.len(), NR * 2);
        assert_eq!(&buf[..3], &[1.0, 2.0, 3.0]);
        assert_eq!(&buf[3..NR], &[0.0; 5]);
        assert_eq!(&buf[NR..NR + 3], &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn transposed_view_matches_explicit_transpose() {
        // w: [3, 2] row-major; transposed view is [2, 3].
        let w = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let v = MatRef::transposed(&w, 2, 3);
        assert_eq!(v.at(0, 0), 1.0);
        assert_eq!(v.at(1, 0), 2.0);
        assert_eq!(v.at(0, 2), 5.0);
        assert_eq!(v.at(1, 2), 6.0);
    }

    #[test]
    fn packed_b_nt_equals_packed_transpose() {
        let w = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[4, 3]);
        let wt = crate::linalg::transpose(&w);
        let direct = PackedB::pack(&wt);
        let nt = PackedB::pack_nt(&w);
        assert_eq!(direct.buf, nt.buf);
        assert_eq!(direct.dims(), nt.dims());
    }

    #[test]
    fn scratch_keeps_capacity() {
        with_pack_a(|buf| {
            buf.resize(1024, 1.0);
        });
        with_pack_a(|buf| {
            assert!(buf.capacity() >= 1024);
        });
    }
}
