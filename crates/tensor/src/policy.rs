//! Numerical-policy selection for the compute kernels.
//!
//! Every matrix product in the workspace runs under a [`MathPolicy`]:
//!
//! - [`MathPolicy::Deterministic`] — the bit-exact oracle. Separate
//!   IEEE multiply-then-add in ascending-`k` order, identical across
//!   hosts, thread counts, and dispatch decisions. This is the kernel
//!   family every other policy is tested against.
//! - [`MathPolicy::Fast`] — opt-in FMA / AVX-512 microkernels. Fused
//!   multiply-add contracts the intermediate rounding and the `k` loop
//!   is unrolled into independent accumulator chains, so results differ
//!   from the oracle by bounded rounding noise (tolerance-gated tests).
//! - [`MathPolicy::Int8`] — opt-in symmetric int8 quantized inference
//!   ([`crate::quant`]): per-tensor scales, `i8×i8→i32` accumulation,
//!   dequantize epilogue. For kernels with no integer path (e.g.
//!   convolution, training gradients) this behaves like `Fast`.
//!
//! The process-wide default comes from the `NDPIPE_MATH` environment
//! variable (`deterministic` | `fast` | `int8`, unset ⇒ deterministic),
//! read once and cached; [`set_default_math_policy`] lets a binary pin
//! it from a CLI flag (`ndpipe_node --math`) before first use.

use std::sync::OnceLock;

/// Numerical contract a matrix product is computed under. See the
/// [module docs](self) for what each level guarantees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MathPolicy {
    /// Bit-exact mul-then-add kernels; the test oracle.
    #[default]
    Deterministic,
    /// Runtime-dispatched FMA / AVX-512 f32 kernels, tolerance-gated.
    Fast,
    /// Symmetric int8 quantized path where available, else `Fast`.
    Int8,
}

impl MathPolicy {
    /// Canonical lowercase name (CLI flags, RPC describe output, logs).
    pub fn as_str(self) -> &'static str {
        match self {
            MathPolicy::Deterministic => "deterministic",
            MathPolicy::Fast => "fast",
            MathPolicy::Int8 => "int8",
        }
    }

    /// Parses a policy name as accepted by `NDPIPE_MATH` and
    /// `ndpipe_node --math`. Case-insensitive; `det` is accepted as an
    /// abbreviation of `deterministic`.
    pub fn parse(s: &str) -> Option<MathPolicy> {
        match s.trim().to_ascii_lowercase().as_str() {
            "deterministic" | "det" => Some(MathPolicy::Deterministic),
            "fast" => Some(MathPolicy::Fast),
            "int8" => Some(MathPolicy::Int8),
            _ => None,
        }
    }

    /// Stable wire encoding (RPC `ShardInfo`).
    pub fn to_u8(self) -> u8 {
        match self {
            MathPolicy::Deterministic => 0,
            MathPolicy::Fast => 1,
            MathPolicy::Int8 => 2,
        }
    }

    /// Inverse of [`MathPolicy::to_u8`].
    pub fn from_u8(v: u8) -> Option<MathPolicy> {
        match v {
            0 => Some(MathPolicy::Deterministic),
            1 => Some(MathPolicy::Fast),
            2 => Some(MathPolicy::Int8),
            _ => None,
        }
    }
}

impl std::fmt::Display for MathPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

static DEFAULT_POLICY: OnceLock<MathPolicy> = OnceLock::new();

/// The process-wide default [`MathPolicy`]: the value pinned by
/// [`set_default_math_policy`] if any, else `NDPIPE_MATH` (unset or
/// unparsable ⇒ [`MathPolicy::Deterministic`]). Cached after first read.
pub fn default_math_policy() -> MathPolicy {
    *DEFAULT_POLICY.get_or_init(|| {
        std::env::var("NDPIPE_MATH")
            .ok()
            .and_then(|v| MathPolicy::parse(&v))
            .unwrap_or_default()
    })
}

/// Pins the process-wide default policy (e.g. from `ndpipe_node --math`)
/// before any kernel consults it. Returns `false` if the default was
/// already resolved to a *different* value — callers that care (the CLI)
/// should treat that as a startup-ordering bug and report it.
pub fn set_default_math_policy(policy: MathPolicy) -> bool {
    DEFAULT_POLICY.set(policy).is_ok() || default_math_policy() == policy
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for p in [MathPolicy::Deterministic, MathPolicy::Fast, MathPolicy::Int8] {
            assert_eq!(MathPolicy::parse(p.as_str()), Some(p));
            assert_eq!(MathPolicy::from_u8(p.to_u8()), Some(p));
        }
        assert_eq!(MathPolicy::parse("DET"), Some(MathPolicy::Deterministic));
        assert_eq!(MathPolicy::parse("tensorrt"), None);
        assert_eq!(MathPolicy::from_u8(250), None);
    }

    #[test]
    fn default_is_deterministic_unless_configured() {
        // The test harness never sets NDPIPE_MATH for unit tests of this
        // crate module, and other tests never pin the global here — but a
        // full-suite run under `NDPIPE_MATH=fast` (check.sh) legitimately
        // changes the default, so only assert self-consistency.
        let p = default_math_policy();
        assert_eq!(MathPolicy::parse(p.as_str()), Some(p));
    }
}
