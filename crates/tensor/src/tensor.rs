//! Dense row-major `f32` tensor.

use crate::shape::Shape;
use crate::TensorError;
use rand::distributions::Distribution;
use rand::Rng;

/// A dense, row-major tensor of `f32` values.
///
/// # Example
///
/// ```
/// use tensor::Tensor;
///
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.len(), 6);
/// let u = t.map(|x| x + 1.0);
/// assert_eq!(u.sum(), 6.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from raw data and a dimension list.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the product of `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(
            data.len(),
            shape.len(),
            "data length {} does not match shape {shape}",
            data.len()
        );
        Tensor { shape, data }
    }

    /// A tensor filled with zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let len = shape.len();
        Tensor {
            shape,
            data: vec![0.0; len],
        }
    }

    /// A tensor filled with ones.
    pub fn ones(dims: &[usize]) -> Self {
        Tensor::full(dims, 1.0)
    }

    /// A tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let len = shape.len();
        Tensor {
            shape,
            data: vec![value; len],
        }
    }

    /// The `n`×`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// A tensor of i.i.d. standard-normal samples drawn from `rng`.
    pub fn randn<R: Rng + ?Sized>(dims: &[usize], rng: &mut R) -> Self {
        let normal = StandardNormal;
        let shape = Shape::new(dims);
        let data = (0..shape.len()).map(|_| normal.sample(rng)).collect();
        Tensor { shape, data }
    }

    /// A tensor of i.i.d. uniform samples in `[lo, hi)` drawn from `rng`.
    pub fn rand_uniform<R: Rng + ?Sized>(dims: &[usize], lo: f32, hi: f32, rng: &mut R) -> Self {
        let shape = Shape::new(dims);
        let data = (0..shape.len()).map(|_| rng.gen_range(lo..hi)).collect();
        Tensor { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The dimension list.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements (never true; see [`Shape`]).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the underlying data in row-major order.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying data in row-major order.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its data buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    pub fn at(&self, index: &[usize]) -> f32 {
        let off = self
            .shape
            .offset(index)
            .unwrap_or_else(|| panic!("index {index:?} out of bounds for {}", self.shape));
        self.data[off]
    }

    /// Sets the element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self
            .shape
            .offset(index)
            .unwrap_or_else(|| panic!("index {index:?} out of bounds for {}", self.shape));
        self.data[off] = value;
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::BadReshape`] if the element count changes.
    pub fn reshape(&self, dims: &[usize]) -> Result<Tensor, TensorError> {
        let shape = Shape::new(dims);
        if shape.len() != self.data.len() {
            return Err(TensorError::BadReshape {
                from: self.data.len(),
                to: shape.len(),
            });
        }
        Ok(Tensor {
            shape,
            data: self.data.clone(),
        })
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace<F: Fn(f32) -> f32>(&mut self, f: F) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Elementwise combination of two same-shaped tensors.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip_with<F: Fn(f32, f32) -> f32>(&self, other: &Tensor, f: F) -> Tensor {
        assert!(
            self.shape.same_dims(&other.shape),
            "zip_with shape mismatch: {} vs {}",
            self.shape,
            other.shape
        );
        Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Elementwise sum.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a + b)
    }

    /// Elementwise difference.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a * b)
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, k: f32) -> Tensor {
        self.map(|x| x * k)
    }

    /// Accumulates `k * other` into `self` (axpy). Used by SGD updates.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn axpy(&mut self, k: f32, other: &Tensor) {
        assert!(
            self.shape.same_dims(&other.shape),
            "axpy shape mismatch: {} vs {}",
            self.shape,
            other.shape
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += k * b;
        }
    }

    /// Adds `bias` (shape `[cols]`) to every row of a `[rows, cols]` matrix.
    ///
    /// # Panics
    ///
    /// Panics unless `self` is rank 2 and `bias` is rank 1 with matching width.
    pub fn add_row_bias(&self, bias: &Tensor) -> Tensor {
        assert_eq!(self.shape.rank(), 2, "add_row_bias needs a matrix");
        assert_eq!(bias.shape.rank(), 1, "bias must be a vector");
        let (rows, cols) = (self.dims()[0], self.dims()[1]);
        assert_eq!(cols, bias.dims()[0], "bias width mismatch");
        let mut out = self.clone();
        for r in 0..rows {
            for c in 0..cols {
                out.data[r * cols + c] += bias.data[c];
            }
        }
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        self.sum() / self.data.len() as f32
    }

    /// Maximum element. For the scalar shape this is the single element.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Index of the maximum element in flattened order (first on ties).
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        for (i, &x) in self.data.iter().enumerate() {
            if x > self.data[best] {
                best = i;
            }
        }
        best
    }

    /// Frobenius norm (L2 norm of the flattened data).
    pub fn frobenius_norm(&self) -> f32 {
        self.data
            .iter()
            .map(|&x| x as f64 * x as f64)
            .sum::<f64>()
            .sqrt() as f32
    }

    /// Sums a `[rows, cols]` matrix down its rows, producing `[cols]`.
    ///
    /// # Panics
    ///
    /// Panics unless `self` is rank 2.
    pub fn sum_rows(&self) -> Tensor {
        assert_eq!(self.shape.rank(), 2, "sum_rows needs a matrix");
        let (rows, cols) = (self.dims()[0], self.dims()[1]);
        let mut out = Tensor::zeros(&[cols]);
        for r in 0..rows {
            for c in 0..cols {
                out.data[c] += self.data[r * cols + c];
            }
        }
        out
    }

    /// Extracts row `r` of a `[rows, cols]` matrix as a `[cols]` vector.
    ///
    /// # Panics
    ///
    /// Panics unless `self` is rank 2 and `r` is in range.
    pub fn row(&self, r: usize) -> Tensor {
        assert_eq!(self.shape.rank(), 2, "row needs a matrix");
        let (rows, cols) = (self.dims()[0], self.dims()[1]);
        assert!(r < rows, "row {r} out of bounds for {rows} rows");
        Tensor::from_vec(self.data[r * cols..(r + 1) * cols].to_vec(), &[cols])
    }

    /// Stacks rank-1 tensors of equal length into a `[n, len]` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or lengths differ.
    pub fn stack_rows(rows: &[Tensor]) -> Tensor {
        assert!(!rows.is_empty(), "stack_rows needs at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "stack_rows length mismatch");
            data.extend_from_slice(r.data());
        }
        Tensor::from_vec(data, &[rows.len(), cols])
    }
}

impl Default for Tensor {
    /// The scalar zero tensor.
    fn default() -> Self {
        Tensor {
            shape: Shape::scalar(),
            data: vec![0.0],
        }
    }
}

impl std::fmt::Display for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor{} n={}", self.shape, self.len())
    }
}

/// Standard normal distribution via Box–Muller, avoiding a rand_distr dep.
struct StandardNormal;

impl Distribution<f32> for StandardNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        // Box–Muller transform; u1 in (0,1] to avoid ln(0).
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_and_access() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.at(&[0, 0]), 1.0);
        assert_eq!(t.at(&[1, 2]), 6.0);
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn eye_is_identity() {
        let i = Tensor::eye(3);
        assert_eq!(i.sum(), 3.0);
        assert_eq!(i.at(&[1, 1]), 1.0);
        assert_eq!(i.at(&[0, 1]), 0.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[3, 4]);
        let u = t.reshape(&[2, 6]).unwrap();
        assert_eq!(u.data(), t.data());
        assert!(t.reshape(&[5, 5]).is_err());
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![3.0, 5.0], &[2]);
        assert_eq!(a.add(&b).data(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).data(), &[2.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[3.0, 10.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::ones(&[3]);
        let g = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        a.axpy(-0.5, &g);
        assert_eq!(a.data(), &[0.5, 0.0, -0.5]);
    }

    #[test]
    fn row_bias_broadcasts() {
        let m = Tensor::zeros(&[2, 3]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let out = m.add_row_bias(&b);
        assert_eq!(out.row(0).data(), b.data());
        assert_eq!(out.row(1).data(), b.data());
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![1.0, -2.0, 3.0, 0.0], &[2, 2]);
        assert_eq!(t.sum(), 2.0);
        assert_eq!(t.mean(), 0.5);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.argmax(), 2);
        let frob = t.frobenius_norm();
        assert!((frob - (14.0f32).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn sum_rows_collapses() {
        let m = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(m.sum_rows().data(), &[4.0, 6.0]);
    }

    #[test]
    fn stack_rows_roundtrip() {
        let r0 = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let r1 = Tensor::from_vec(vec![3.0, 4.0], &[2]);
        let m = Tensor::stack_rows(&[r0.clone(), r1.clone()]);
        assert_eq!(m.dims(), &[2, 2]);
        assert_eq!(m.row(0), r0);
        assert_eq!(m.row(1), r1);
    }

    #[test]
    fn randn_is_roughly_standard() {
        let mut rng = StdRng::seed_from_u64(42);
        let t = Tensor::randn(&[10_000], &mut rng);
        assert!(t.mean().abs() < 0.05, "mean {}", t.mean());
        let var = t.map(|x| x * x).mean() - t.mean() * t.mean();
        assert!((var - 1.0).abs() < 0.08, "var {var}");
    }

    #[test]
    fn rand_uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Tensor::rand_uniform(&[1000], -2.0, 3.0, &mut rng);
        assert!(t.data().iter().all(|&x| (-2.0..3.0).contains(&x)));
    }
}
