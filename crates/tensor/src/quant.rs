//! Symmetric int8 quantization and the `i8×i8→i32` inference kernel
//! behind [`MathPolicy::Int8`](crate::MathPolicy::Int8).
//!
//! The paper's PipeStores run inference under TensorRT — a quantized
//! kernel stack — and low-precision arithmetic is the canonical lever
//! for compute-constrained near-data nodes. This module is the
//! reproduction's version of that lever for the *frozen* feature
//! extractor (training gradients stay f32):
//!
//! - **Per-tensor symmetric scale.** `scale = max|x| / 127`; values map
//!   to `q = round(x / scale)` in `[-127, 127]` (−128 unused, so the
//!   grid is symmetric and `x ≈ -x` quantizes to `q ≈ -q`). Weights are
//!   quantized once per `(w_version, policy)` cache entry; activations
//!   are quantized dynamically per batch.
//! - **Integer accumulation.** Each output is an exact `i8×i8→i32` dot
//!   over `k` — integer addition is associative, so the quantized path
//!   is bit-reproducible across hosts and thread counts by
//!   construction. (`k` must stay below ~2^17 to rule out i32 overflow;
//!   every model in this workspace is orders of magnitude smaller.)
//! - **Dequantize epilogue.** The i32 accumulator is scaled by
//!   `scale_a * scale_b` back to f32, then any fused
//!   [`Epilogue`](crate::linalg::Epilogue) is applied.
//!
//! The absolute error of one output element is bounded by
//! `k * (max|a|·s_b/2 + max|b|·s_a/2 + s_a·s_b/4)` — each factor is off
//! by at most half a quantization step. The accuracy gate for the whole
//! path is end-to-end: the mini-model experiments must preserve the
//! paper's accuracy ordering (Base ≥ NDPipe > Outdated) under `Int8`,
//! with the measured delta recorded in `BENCH_gemm_fast.json`.

use crate::linalg::{count_gemm_flops, Epilogue};
use crate::pack::MatRef;
use crate::Tensor;

/// An int8-quantized matrix: row-major `i8` payload plus the per-tensor
/// dequantization scale (`x ≈ q * scale`). This is what the dnn crate's
/// frozen-layer weight cache stores under
/// [`MathPolicy::Int8`](crate::MathPolicy::Int8).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMatrix {
    data: Vec<i8>,
    rows: usize,
    cols: usize,
    scale: f32,
}

impl QuantizedMatrix {
    /// Quantizes a rank-2 tensor with a per-tensor symmetric scale.
    ///
    /// # Panics
    ///
    /// Panics unless `t` is rank 2.
    pub fn quantize(t: &Tensor) -> Self {
        assert_eq!(t.shape().rank(), 2, "QuantizedMatrix::quantize needs a matrix");
        quantize_view(&MatRef::row_major(t.data(), t.dims()[0], t.dims()[1]))
    }

    /// Reconstructs the f32 tensor (`q * scale`); each element is within
    /// half a quantization step of the original.
    pub fn dequantize(&self) -> Tensor {
        let data = self.data.iter().map(|&q| q as f32 * self.scale).collect();
        Tensor::from_vec(data, &[self.rows, self.cols])
    }

    /// Logical dimensions `(rows, cols)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The dequantization scale (`x ≈ q * scale`).
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Bytes of quantized payload (cache accounting: 4× smaller than the
    /// f32 weights it replaces).
    pub fn payload_bytes(&self) -> usize {
        self.data.len()
    }

    fn row(&self, r: usize) -> &[i8] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }
}

/// Quantizes a strided view (rows become contiguous in the output, so a
/// transposed view yields the transposed quantized matrix).
pub(crate) fn quantize_view(v: &MatRef<'_>) -> QuantizedMatrix {
    let max_abs = if v.cs == 1 && v.rs == v.cols {
        // Contiguous row-major: one linear pass.
        v.data.iter().fold(0.0f32, |m, x| m.max(x.abs()))
    } else {
        let mut m = 0.0f32;
        for r in 0..v.rows {
            for c in 0..v.cols {
                m = m.max(v.at(r, c).abs());
            }
        }
        m
    };
    // An all-zero (or empty) matrix has no scale to recover; 1.0 keeps
    // dequantization exact for it.
    let scale = if max_abs > 0.0 { max_abs / 127.0 } else { 1.0 };
    let inv = 1.0 / scale;
    let mut data = Vec::with_capacity(v.rows * v.cols);
    if v.cs == 1 {
        for r in 0..v.rows {
            let row = &v.data[r * v.rs..r * v.rs + v.cols];
            data.extend(row.iter().map(|&x| quantize_one(x, inv)));
        }
    } else {
        for r in 0..v.rows {
            for c in 0..v.cols {
                data.push(quantize_one(v.at(r, c), inv));
            }
        }
    }
    QuantizedMatrix {
        data,
        rows: v.rows,
        cols: v.cols,
        scale,
    }
}

#[inline]
fn quantize_one(x: f32, inv_scale: f32) -> i8 {
    (x * inv_scale).round().clamp(-127.0, 127.0) as i8
}

/// `a @ b` through the int8 path: both operands are dynamically
/// quantized (a row-major, b transposed so its columns become contiguous
/// `k`-vectors), multiplied with exact integer accumulation, and
/// dequantized with the fused epilogue.
pub(crate) fn gemm_int8(a: &MatRef<'_>, b: &MatRef<'_>, epi: &Epilogue<'_>) -> Tensor {
    let (m, k, n) = (a.rows, a.cols, b.cols);
    debug_assert_eq!(b.rows, k);
    let aq = quantize_view(a);
    // Transpose the [k, n] view so row j of bq is column j of b,
    // k-contiguous for the dot kernel.
    let bt = MatRef {
        data: b.data,
        rows: b.cols,
        cols: b.rows,
        rs: b.cs,
        cs: b.rs,
    };
    let bq = quantize_view(&bt);
    count_gemm_flops(m, n, k, true);
    let out = matmul_quantized(&aq, &bq, epi);
    debug_assert_eq!(out.dims(), &[m, n]);
    out
}

/// `x @ wᵀ` with a pre-quantized weight (`wq` holds `[n, k]`, the linear
/// layer's `[out, in]` weight quantized as-is) — the frozen-layer cached
/// fast path under [`MathPolicy::Int8`](crate::MathPolicy::Int8). `x` is
/// quantized dynamically per call.
///
/// # Panics
///
/// Panics unless `x` is rank 2 with `x.dims()[1] == wq.dims().1`.
pub fn matmul_nt_quant(x: &Tensor, wq: &QuantizedMatrix) -> Tensor {
    assert_eq!(x.shape().rank(), 2, "matmul_nt_quant lhs must be a matrix");
    let (m, k) = (x.dims()[0], x.dims()[1]);
    let (n, wk) = wq.dims();
    assert_eq!(k, wk, "matmul_nt_quant inner dimension mismatch");
    let xq = quantize_view(&MatRef::row_major(x.data(), m, k));
    count_gemm_flops(m, n, k, true);
    matmul_quantized(&xq, wq, &Epilogue::None)
}

/// Core kernel: `aq: [m, k]` × `bqᵀ: [n, k]` (both row-major over `k`),
/// i32 accumulation, dequant + epilogue on write-back.
fn matmul_quantized(aq: &QuantizedMatrix, bq: &QuantizedMatrix, epi: &Epilogue<'_>) -> Tensor {
    let (m, k) = aq.dims();
    let (n, _) = bq.dims();
    let rescale = aq.scale() * bq.scale();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let arow = aq.row(i);
        let orow = &mut out[i * n..(i + 1) * n];
        let bias = match epi {
            Epilogue::BiasRelu(b) => {
                debug_assert_eq!(b.len(), m);
                Some(b[i])
            }
            _ => None,
        };
        for (j, o) in orow.iter_mut().enumerate() {
            let brow = bq.row(j);
            let mut acc = 0i32;
            // i8×i8 products fit i16; LLVM turns this widening dot into
            // pmaddwd-style vector code without hand-written intrinsics.
            for kk in 0..k {
                acc += arow[kk] as i32 * brow[kk] as i32;
            }
            let v = acc as f32 * rescale;
            *o = match epi {
                Epilogue::None => v,
                Epilogue::Relu => v.max(0.0),
                Epilogue::BiasRelu(_) => (v + bias.unwrap_or(0.0)).max(0.0),
            };
        }
    }
    Tensor::from_vec(out, &[m, n])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::Gemm;
    use crate::MathPolicy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn round_trip_error_is_within_half_a_step() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Tensor::randn(&[13, 9], &mut rng);
        let q = QuantizedMatrix::quantize(&t);
        let back = q.dequantize();
        let half_step = q.scale() / 2.0 * 1.0001;
        for (&x, &y) in t.data().iter().zip(back.data()) {
            assert!((x - y).abs() <= half_step, "{x} vs {y}");
        }
    }

    #[test]
    fn zero_matrix_quantizes_exactly() {
        let t = Tensor::zeros(&[3, 4]);
        let q = QuantizedMatrix::quantize(&t);
        assert_eq!(q.scale(), 1.0);
        assert_eq!(q.dequantize(), t);
    }

    #[test]
    fn extremes_hit_full_range() {
        let t = Tensor::from_vec(vec![2.0, -2.0, 1.0, 0.0], &[2, 2]);
        let q = QuantizedMatrix::quantize(&t);
        let back = q.dequantize();
        // max|x| maps to exactly ±127 steps, so the extremes round-trip.
        assert_eq!(back.at(&[0, 0]), 2.0);
        assert_eq!(back.at(&[0, 1]), -2.0);
    }

    #[test]
    fn nt_kernel_matches_int8_gemm_builder() {
        let mut rng = StdRng::seed_from_u64(8);
        let x = Tensor::randn(&[6, 20], &mut rng);
        let w = Tensor::randn(&[11, 20], &mut rng); // [out, in]
        let wq = QuantizedMatrix::quantize(&w);
        let cached = matmul_nt_quant(&x, &wq);
        let builder = Gemm::new(&x, &w)
            .transpose_b()
            .policy(MathPolicy::Int8)
            .run();
        // Same quantization decisions on both routes → identical output.
        assert_eq!(cached, builder);
    }

    #[test]
    fn payload_is_quarter_of_f32() {
        let t = Tensor::zeros(&[8, 16]);
        let q = QuantizedMatrix::quantize(&t);
        assert_eq!(q.payload_bytes() * 4, t.len() * 4);
        assert_eq!(q.payload_bytes(), 8 * 16);
    }
}
