//! 2-D convolution (via im2col) and pooling over NCHW tensors.
//!
//! Convolution runs on the same packed GEMM kernel as
//! [`linalg::matmul`]: the `[c_out, c_in*k*k]` weight matrix is packed
//! into micro-panels **once per call** (or once per layer via
//! [`PackedConvWeight`] — the frozen-feature-extractor cache), each
//! image's patches are lowered into a thread-local im2col buffer (no
//! per-image allocation), and batch images band across the shared
//! [`crate::pool`]. Every image is computed by the same serial kernel
//! whichever thread claims it, so results are bit-identical at any
//! worker count.
//!
//! [`conv2d_prepacked_opts`] additionally takes [`ConvOpts`]: a
//! [`MathPolicy`] selecting the GEMM kernel family and an optional fused
//! bias+ReLU epilogue applied inside the GEMM write-back (the
//! conv+ReLU fusion the frozen CNN feature extractor uses). Fusion
//! performs the same IEEE ops in the same order as the unfused
//! bias-then-ReLU sequence, so it never changes bits — only memory
//! traffic. `Int8` has no im2col integer path and runs as `Fast`.

use crate::linalg::Epilogue;
use crate::pack::{self, PackedA};
use crate::{linalg, MathPolicy, Tensor};

/// Work threshold (in multiply-adds) above which [`conv2d`] fans batch
/// images across the worker pool — the same band pattern as
/// [`linalg::matmul`], applied to the batch dimension. Below it,
/// scheduling overhead dominates the kernel itself.
const PAR_THRESHOLD: usize = 1 << 21;

/// Convolution / pooling spatial hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dSpec {
    /// Kernel height and width.
    pub kernel: usize,
    /// Stride in both spatial dimensions.
    pub stride: usize,
    /// Zero padding on each spatial edge.
    pub padding: usize,
}

impl Conv2dSpec {
    /// Creates a spec; `stride` must be nonzero.
    ///
    /// # Panics
    ///
    /// Panics if `kernel == 0` or `stride == 0`.
    pub fn new(kernel: usize, stride: usize, padding: usize) -> Self {
        assert!(kernel > 0, "kernel must be positive");
        assert!(stride > 0, "stride must be positive");
        Conv2dSpec {
            kernel,
            stride,
            padding,
        }
    }

    /// Output spatial size for an input of size `n`.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit in the padded input.
    pub fn out_size(&self, n: usize) -> usize {
        let padded = n + 2 * self.padding;
        assert!(
            padded >= self.kernel,
            "kernel {} larger than padded input {padded}",
            self.kernel
        );
        (padded - self.kernel) / self.stride + 1
    }
}

/// Lowers `[c, h, w]` image patches into a `[c*k*k, oh*ow]` matrix so
/// convolution becomes a single matmul. Writes into `cols` (resized,
/// capacity reused across calls via the thread-local scratch).
fn im2col_into(input: &[f32], c: usize, h: usize, w: usize, spec: Conv2dSpec, cols: &mut Vec<f32>) {
    let oh = spec.out_size(h);
    let ow = spec.out_size(w);
    let k = spec.kernel;
    cols.clear();
    cols.resize(c * k * k * oh * ow, 0.0);
    let row_len = oh * ow;
    for ch in 0..c {
        for ky in 0..k {
            for kx in 0..k {
                let row = (ch * k * k + ky * k + kx) * row_len;
                for oy in 0..oh {
                    let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                    for ox in 0..ow {
                        let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                        let v = if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                            input[ch * h * w + iy as usize * w + ix as usize]
                        } else {
                            0.0
                        };
                        cols[row + oy * ow + ox] = v;
                    }
                }
            }
        }
    }
}

/// A conv2d weight prepacked for the GEMM microkernel: the
/// `[c_out, c_in*k*k]` matrix as A micro-panels. Frozen feature
/// extractors build one per layer and reuse it every batch
/// ([`conv2d_prepacked`]); [`conv2d`] builds one per call.
#[derive(Debug, Clone)]
pub struct PackedConvWeight {
    pa: PackedA,
    c_out: usize,
    c_in: usize,
    kernel: usize,
}

impl PackedConvWeight {
    /// Packs an OIKK `[c_out, c_in, k, k]` weight tensor.
    ///
    /// # Panics
    ///
    /// Panics unless `weight` is rank 4 with a square kernel.
    pub fn pack(weight: &Tensor) -> Self {
        assert_eq!(weight.shape().rank(), 4, "conv2d weight must be OIKK");
        let (c_out, c_in, k, k2) = (
            weight.dims()[0],
            weight.dims()[1],
            weight.dims()[2],
            weight.dims()[3],
        );
        assert_eq!(k, k2, "conv2d kernel must be square");
        let wmat = weight
            .reshape(&[c_out, c_in * k * k])
            .expect("weight reshape is size-preserving");
        PackedConvWeight {
            pa: PackedA::pack(&wmat),
            c_out,
            c_in,
            kernel: k,
        }
    }

    /// `(c_out, c_in, kernel)` of the packed weight.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.c_out, self.c_in, self.kernel)
    }
}

/// 2-D convolution of a batched NCHW input.
///
/// - `input`: `[n, c_in, h, w]`
/// - `weight`: `[c_out, c_in, k, k]`
/// - `bias`: `[c_out]` or `None`
///
/// Returns `[n, c_out, oh, ow]`.
///
/// # Panics
///
/// Panics on rank or channel mismatches.
pub fn conv2d(input: &Tensor, weight: &Tensor, bias: Option<&Tensor>, spec: Conv2dSpec) -> Tensor {
    conv2d_with_threads(input, weight, bias, spec, crate::configured_threads())
}

/// [`conv2d`] with an explicit thread budget (determinism tests, benches).
///
/// # Panics
///
/// Same contract as [`conv2d`].
pub fn conv2d_with_threads(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    spec: Conv2dSpec,
    threads: usize,
) -> Tensor {
    let pw = PackedConvWeight::pack(weight);
    conv2d_prepacked_with_threads(input, &pw, bias, spec, threads)
}

/// [`conv2d`] with a weight packed ahead of time — the frozen-layer fast
/// path: the weight-matrix pack pass is skipped entirely.
///
/// # Panics
///
/// Same contract as [`conv2d`].
pub fn conv2d_prepacked(
    input: &Tensor,
    pw: &PackedConvWeight,
    bias: Option<&Tensor>,
    spec: Conv2dSpec,
) -> Tensor {
    conv2d_prepacked_with_threads(input, pw, bias, spec, crate::configured_threads())
}

/// Execution options for [`conv2d_prepacked_opts`].
#[derive(Debug, Clone, Copy)]
pub struct ConvOpts {
    /// GEMM kernel family; defaults to [`crate::default_math_policy`].
    pub policy: MathPolicy,
    /// Fuse a ReLU (and the bias, when present) into the GEMM
    /// write-back instead of running separate passes.
    pub fuse_relu: bool,
    /// Thread budget; defaults to [`crate::configured_threads`].
    pub threads: usize,
}

impl Default for ConvOpts {
    fn default() -> Self {
        ConvOpts {
            policy: crate::default_math_policy(),
            fuse_relu: false,
            threads: crate::configured_threads(),
        }
    }
}

/// [`conv2d_prepacked`] with an explicit thread budget.
///
/// # Panics
///
/// Same contract as [`conv2d`].
pub fn conv2d_prepacked_with_threads(
    input: &Tensor,
    pw: &PackedConvWeight,
    bias: Option<&Tensor>,
    spec: Conv2dSpec,
    threads: usize,
) -> Tensor {
    conv2d_prepacked_opts(
        input,
        pw,
        bias,
        spec,
        ConvOpts {
            threads,
            ..ConvOpts::default()
        },
    )
}

/// The full-control conv entry point: [`conv2d_prepacked`] plus
/// [`ConvOpts`] (kernel policy, fused bias+ReLU epilogue, threads).
///
/// # Panics
///
/// Same contract as [`conv2d`].
pub fn conv2d_prepacked_opts(
    input: &Tensor,
    pw: &PackedConvWeight,
    bias: Option<&Tensor>,
    spec: Conv2dSpec,
    opts: ConvOpts,
) -> Tensor {
    assert_eq!(input.shape().rank(), 4, "conv2d input must be NCHW");
    let (n, c_in, h, w) = (
        input.dims()[0],
        input.dims()[1],
        input.dims()[2],
        input.dims()[3],
    );
    let (c_out, pc_in, k) = pw.dims();
    assert_eq!(c_in, pc_in, "conv2d channel mismatch");
    assert_eq!(k, spec.kernel, "conv2d spec kernel mismatch");
    if let Some(b) = bias {
        assert_eq!(b.len(), c_out, "conv2d bias length mismatch");
    }

    let oh = spec.out_size(h);
    let ow = spec.out_size(w);
    let mut out = vec![0.0f32; n * c_out * oh * ow];
    let img_out_len = c_out * oh * ow;

    // Each image is an independent im2col + prepacked GEMM, so batch
    // images band across the pool exactly like matmul's output rows:
    // every image is computed by the same serial kernel whichever thread
    // claims it, and the result is bit-identical to the single-threaded
    // path.
    let flops = n * c_out * c_in * k * k * oh * ow;
    if flops >= PAR_THRESHOLD && opts.threads > 1 && n >= 2 {
        let images: Vec<std::sync::Mutex<(usize, &mut [f32])>> = out
            .chunks_mut(img_out_len)
            .enumerate()
            .map(std::sync::Mutex::new)
            .collect();
        crate::pool::run(opts.threads.min(n), images.len(), &|t| {
            if let Some(slot) = images.get(t) {
                let mut guard = slot
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                let (b_idx, dst) = &mut *guard;
                conv2d_image(input, pw, bias, spec, opts, *b_idx, dst);
            }
        })
        .unwrap_or_else(|e| panic!("conv2d: {e}"));
    } else {
        for (b_idx, dst) in out.chunks_mut(img_out_len).enumerate() {
            conv2d_image(input, pw, bias, spec, opts, b_idx, dst);
        }
    }
    Tensor::from_vec(out, &[n, c_out, oh, ow])
}

/// Serial kernel for one batch image: thread-local im2col, then the
/// prepacked-A GEMM (with the fused epilogue when requested) into the
/// image's output plane.
fn conv2d_image(
    input: &Tensor,
    pw: &PackedConvWeight,
    bias: Option<&Tensor>,
    spec: Conv2dSpec,
    opts: ConvOpts,
    b_idx: usize,
    dst: &mut [f32],
) {
    let (c_in, h, w) = (input.dims()[1], input.dims()[2], input.dims()[3]);
    let c_out = pw.c_out;
    let oh = spec.out_size(h);
    let ow = spec.out_size(w);
    let img_len = c_in * h * w;
    let img = &input.data()[b_idx * img_len..(b_idx + 1) * img_len];
    // The GEMM's output rows are the c_out channels, so a fused per-row
    // bias is exactly the conv bias.
    let epi = match (opts.fuse_relu, bias) {
        (true, Some(bvec)) => Epilogue::BiasRelu(bvec.data()),
        (true, None) => Epilogue::Relu,
        (false, _) => Epilogue::None,
    };
    pack::with_im2col(|cols| {
        im2col_into(img, c_in, h, w, spec, cols);
        linalg::matmul_packed_a_into(&pw.pa, cols, oh * ow, dst, opts.policy, &epi);
    });
    if !opts.fuse_relu {
        if let Some(bvec) = bias {
            for co in 0..c_out {
                let add = bvec.data()[co];
                for v in &mut dst[co * oh * ow..(co + 1) * oh * ow] {
                    *v += add;
                }
            }
        }
    }
}

/// Max pooling over an NCHW input. Returns `[n, c, oh, ow]`.
///
/// # Panics
///
/// Panics unless the input is rank 4.
pub fn max_pool2d(input: &Tensor, spec: Conv2dSpec) -> Tensor {
    pool2d(input, spec, true)
}

/// Average pooling over an NCHW input. Padding cells count toward the
/// divisor (the `count_include_pad = true` convention). Returns
/// `[n, c, oh, ow]`.
///
/// # Panics
///
/// Panics unless the input is rank 4.
pub fn avg_pool2d(input: &Tensor, spec: Conv2dSpec) -> Tensor {
    pool2d(input, spec, false)
}

fn pool2d(input: &Tensor, spec: Conv2dSpec, take_max: bool) -> Tensor {
    assert_eq!(input.shape().rank(), 4, "pool2d input must be NCHW");
    let (n, c, h, w) = (
        input.dims()[0],
        input.dims()[1],
        input.dims()[2],
        input.dims()[3],
    );
    let oh = spec.out_size(h);
    let ow = spec.out_size(w);
    let k = spec.kernel;
    let mut out = vec![0.0f32; n * c * oh * ow];
    let data = input.data();
    for b in 0..n {
        for ch in 0..c {
            let plane = &data[(b * c + ch) * h * w..(b * c + ch + 1) * h * w];
            let dst = &mut out[(b * c + ch) * oh * ow..(b * c + ch + 1) * oh * ow];
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut acc = 0.0f32;
                    for ky in 0..k {
                        let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                        for kx in 0..k {
                            let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                            let v = if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                                plane[iy as usize * w + ix as usize]
                            } else {
                                0.0
                            };
                            best = best.max(v);
                            acc += v;
                        }
                    }
                    dst[oy * ow + ox] = if take_max { best } else { acc / (k * k) as f32 };
                }
            }
        }
    }
    Tensor::from_vec(out, &[n, c, oh, ow])
}

/// Global average pooling: `[n, c, h, w]` → `[n, c]`.
///
/// # Panics
///
/// Panics unless the input is rank 4.
pub fn global_avg_pool(input: &Tensor) -> Tensor {
    assert_eq!(
        input.shape().rank(),
        4,
        "global_avg_pool input must be NCHW"
    );
    let (n, c, h, w) = (
        input.dims()[0],
        input.dims()[1],
        input.dims()[2],
        input.dims()[3],
    );
    let mut out = vec![0.0f32; n * c];
    let hw = (h * w) as f32;
    for b in 0..n {
        for ch in 0..c {
            let plane = &input.data()[(b * c + ch) * h * w..(b * c + ch + 1) * h * w];
            out[b * c + ch] = plane.iter().sum::<f32>() / hw;
        }
    }
    Tensor::from_vec(out, &[n, c])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_size_formula() {
        let s = Conv2dSpec::new(3, 1, 1);
        assert_eq!(s.out_size(8), 8); // same padding
        let s2 = Conv2dSpec::new(3, 2, 0);
        assert_eq!(s2.out_size(7), 3);
    }

    #[test]
    fn conv_identity_kernel() {
        // 1x1 kernel with weight 1 should copy the input.
        let input = Tensor::from_vec((0..16).map(|x| x as f32).collect(), &[1, 1, 4, 4]);
        let weight = Tensor::ones(&[1, 1, 1, 1]);
        let out = conv2d(&input, &weight, None, Conv2dSpec::new(1, 1, 0));
        assert_eq!(out.data(), input.data());
    }

    #[test]
    fn conv_known_answer() {
        // 2x2 input, 2x2 all-ones kernel, no padding: single output = sum.
        let input = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let weight = Tensor::ones(&[1, 1, 2, 2]);
        let out = conv2d(&input, &weight, None, Conv2dSpec::new(2, 1, 0));
        assert_eq!(out.dims(), &[1, 1, 1, 1]);
        assert_eq!(out.data()[0], 10.0);
    }

    #[test]
    fn conv_bias_and_channels() {
        // Two output channels differing only by bias.
        let input = Tensor::ones(&[1, 1, 3, 3]);
        let weight = Tensor::ones(&[2, 1, 3, 3]);
        let bias = Tensor::from_vec(vec![0.0, 100.0], &[2]);
        let out = conv2d(&input, &weight, Some(&bias), Conv2dSpec::new(3, 1, 0));
        assert_eq!(out.data(), &[9.0, 109.0]);
    }

    #[test]
    fn conv_padding_zeroes_edges() {
        let input = Tensor::ones(&[1, 1, 2, 2]);
        let weight = Tensor::ones(&[1, 1, 3, 3]);
        let out = conv2d(&input, &weight, None, Conv2dSpec::new(3, 1, 1));
        assert_eq!(out.dims(), &[1, 1, 2, 2]);
        // Every output sees exactly the 4 ones.
        assert_eq!(out.data(), &[4.0, 4.0, 4.0, 4.0]);
    }

    #[test]
    fn max_pool_picks_max() {
        let input = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let out = max_pool2d(&input, Conv2dSpec::new(2, 2, 0));
        assert_eq!(out.data(), &[4.0]);
    }

    #[test]
    fn avg_pool_averages() {
        let input = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let out = avg_pool2d(&input, Conv2dSpec::new(2, 2, 0));
        assert_eq!(out.data(), &[2.5]);
    }

    #[test]
    fn global_avg_pool_per_channel() {
        let input = Tensor::from_vec(
            vec![
                1.0, 1.0, 1.0, 1.0, // channel 0
                2.0, 2.0, 2.0, 2.0, // channel 1
            ],
            &[1, 2, 2, 2],
        );
        let out = global_avg_pool(&input);
        assert_eq!(out.dims(), &[1, 2]);
        assert_eq!(out.data(), &[1.0, 2.0]);
    }

    #[test]
    fn parallel_conv_matches_serial_exactly() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(88);
        // 9 images (not a multiple of typical core counts), 8→16
        // channels, 16×16 with a 3×3 kernel: above PAR_THRESHOLD.
        let (n, c_in, c_out, hw, k) = (9usize, 8usize, 16usize, 16usize, 3usize);
        let spec = Conv2dSpec::new(k, 1, 1);
        let o = spec.out_size(hw);
        assert!(
            n * c_out * c_in * k * k * o * o >= PAR_THRESHOLD,
            "case too small to exercise the parallel path"
        );
        let input = Tensor::randn(&[n, c_in, hw, hw], &mut rng);
        let weight = Tensor::randn(&[c_out, c_in, k, k], &mut rng);
        let bias = Tensor::randn(&[c_out], &mut rng);
        let serial = conv2d_with_threads(&input, &weight, Some(&bias), spec, 1);
        for threads in [2, 3, 8] {
            let fast = conv2d_with_threads(&input, &weight, Some(&bias), spec, threads);
            assert_eq!(fast.data(), serial.data(), "threads={threads}");
        }
        // Prepacked weights take the same kernel path bit-for-bit.
        let pw = PackedConvWeight::pack(&weight);
        let pre = conv2d_prepacked(&input, &pw, Some(&bias), spec);
        assert_eq!(pre.data(), serial.data());
    }

    #[test]
    fn fused_relu_matches_unfused_bit_for_bit() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(89);
        let spec = Conv2dSpec::new(3, 1, 1);
        let input = Tensor::randn(&[3, 4, 8, 8], &mut rng);
        let weight = Tensor::randn(&[6, 4, 3, 3], &mut rng);
        let bias = Tensor::randn(&[6], &mut rng);
        let pw = PackedConvWeight::pack(&weight);
        for policy in [MathPolicy::Deterministic, MathPolicy::Fast] {
            let opts = ConvOpts {
                policy,
                fuse_relu: false,
                threads: 1,
            };
            let unfused = conv2d_prepacked_opts(&input, &pw, Some(&bias), spec, opts);
            let fused = conv2d_prepacked_opts(
                &input,
                &pw,
                Some(&bias),
                spec,
                ConvOpts {
                    fuse_relu: true,
                    ..opts
                },
            );
            for (&f, &u) in fused.data().iter().zip(unfused.data()) {
                assert_eq!(f, u.max(0.0), "policy={policy}");
            }
        }
    }

    #[test]
    fn batch_dimension_is_independent() {
        let a = Tensor::from_vec(vec![1.0; 4], &[1, 1, 2, 2]);
        let b = Tensor::from_vec(vec![2.0; 4], &[1, 1, 2, 2]);
        let mut both = Vec::new();
        both.extend_from_slice(a.data());
        both.extend_from_slice(b.data());
        let batch = Tensor::from_vec(both, &[2, 1, 2, 2]);
        let weight = Tensor::ones(&[1, 1, 2, 2]);
        let spec = Conv2dSpec::new(2, 1, 0);
        let out = conv2d(&batch, &weight, None, spec);
        let oa = conv2d(&a, &weight, None, spec);
        let ob = conv2d(&b, &weight, None, spec);
        assert_eq!(out.data()[0], oa.data()[0]);
        assert_eq!(out.data()[1], ob.data()[0]);
    }
}
