//! Minimal f32 n-dimensional tensor library.
//!
//! This crate is the numerical substrate for the NDPipe reproduction. It
//! provides exactly what fine-tuning a classifier head and running
//! feature-extraction forward passes require:
//!
//! - [`Shape`] — dimension/stride bookkeeping with checked index math,
//! - [`Tensor`] — a dense, row-major `f32` tensor with elementwise and
//!   broadcasting operations,
//! - [`linalg`] — packed-panel (BLIS-style) matrix multiplication behind
//!   the [`linalg::Gemm`] descriptor, plus transposes,
//! - [`policy`] — the [`MathPolicy`] kernel-family selector
//!   (deterministic oracle / opt-in FMA+AVX-512 / int8),
//! - [`quant`] — symmetric int8 quantization and the `i8×i8→i32`
//!   inference kernel behind [`MathPolicy::Int8`],
//! - [`pack`] — panel packing + thread-local scratch feeding the GEMM
//!   microkernel, and the prepacked-operand types the frozen-layer
//!   weight cache stores,
//! - [`pool`] — the persistent worker pool every parallel kernel in the
//!   workspace shares (honours `NDPIPE_THREADS`),
//! - [`conv`] — im2col 2-D convolution and max/average pooling,
//! - [`activation`] — ReLU, GELU, sigmoid, (log-)softmax,
//! - [`init`] — Kaiming/Xavier weight initializers over a seeded RNG.
//!
//! The library is intentionally small: no autograd graph, no views, no
//! generic element types. The NDPipe fine-tuning path only back-propagates
//! through the trainable classifier layers, and those gradients are written
//! by hand in the `dnn` crate on top of these primitives.
//!
//! # Example
//!
//! ```
//! use tensor::{Tensor, linalg::Gemm};
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = Gemm::new(&a, &b).run();
//! assert_eq!(c.data(), a.data());
//! ```

pub mod activation;
pub mod conv;
pub mod init;
pub mod linalg;
pub mod pack;
pub mod policy;
pub mod pool;
pub mod quant;
pub mod shape;
pub mod tensor;

pub use policy::{default_math_policy, set_default_math_policy, MathPolicy};
pub use shape::Shape;
pub use tensor::Tensor;

/// Thread budget for parallel kernels ([`linalg::matmul`],
/// [`conv::conv2d`]): the `NDPIPE_THREADS` environment variable when set
/// (minimum 1), otherwise the machine's available parallelism.
///
/// Every parallel kernel in this crate partitions work into bands that
/// are each computed by the serial kernel, so results are bit-identical
/// at any thread count — `NDPIPE_THREADS=1` is a determinism *check*,
/// not a determinism *requirement*.
pub fn configured_threads() -> usize {
    match std::env::var("NDPIPE_THREADS") {
        Ok(v) => v.trim().parse::<usize>().unwrap_or(1).max(1),
        Err(_) => std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

/// Error type for tensor operations that validate their inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two shapes that were required to match did not.
    ShapeMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// The left-hand shape.
        lhs: Vec<usize>,
        /// The right-hand shape.
        rhs: Vec<usize>,
    },
    /// A reshape changed the total number of elements.
    BadReshape {
        /// Number of elements in the source tensor.
        from: usize,
        /// Number of elements implied by the requested shape.
        to: usize,
    },
    /// An index was out of bounds for the tensor's shape.
    IndexOutOfBounds {
        /// The offending index.
        index: Vec<usize>,
        /// The tensor's dimensions.
        dims: Vec<usize>,
    },
    /// A worker-pool task panicked while computing this operation. The
    /// remaining bands still ran to completion before this was reported
    /// (see [`pool::run`]).
    WorkerPanicked {
        /// The operation whose band failed.
        op: &'static str,
        /// The contained panic message.
        msg: String,
    },
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "shape mismatch in {op}: {lhs:?} vs {rhs:?}")
            }
            TensorError::BadReshape { from, to } => {
                write!(f, "cannot reshape {from} elements into {to} elements")
            }
            TensorError::IndexOutOfBounds { index, dims } => {
                write!(f, "index {index:?} out of bounds for dims {dims:?}")
            }
            TensorError::WorkerPanicked { op, msg } => {
                write!(f, "worker panicked in {op}: {msg}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = TensorError::ShapeMismatch {
            op: "matmul",
            lhs: vec![2, 3],
            rhs: vec![4, 5],
        };
        let s = e.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("[2, 3]"));
    }

    #[test]
    fn error_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
        assert_send_sync::<Tensor>();
    }
}
