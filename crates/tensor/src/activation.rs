//! Activation functions and the softmax family.

use crate::Tensor;

/// Rectified linear unit, elementwise.
pub fn relu(t: &Tensor) -> Tensor {
    t.map(|x| x.max(0.0))
}

/// Derivative mask of ReLU evaluated at the *pre-activation* input:
/// 1 where `x > 0`, else 0.
pub fn relu_grad_mask(pre_activation: &Tensor) -> Tensor {
    pre_activation.map(|x| if x > 0.0 { 1.0 } else { 0.0 })
}

/// Gaussian error linear unit (tanh approximation), elementwise.
pub fn gelu(t: &Tensor) -> Tensor {
    t.map(|x| {
        let c = (2.0f32 / std::f32::consts::PI).sqrt();
        0.5 * x * (1.0 + (c * (x + 0.044715 * x * x * x)).tanh())
    })
}

/// Logistic sigmoid, elementwise.
pub fn sigmoid(t: &Tensor) -> Tensor {
    t.map(|x| 1.0 / (1.0 + (-x).exp()))
}

/// Row-wise softmax of a `[rows, cols]` matrix (numerically stabilized).
///
/// # Panics
///
/// Panics unless the input is rank 2.
pub fn softmax_rows(logits: &Tensor) -> Tensor {
    assert_eq!(logits.shape().rank(), 2, "softmax_rows needs a matrix");
    let (rows, cols) = (logits.dims()[0], logits.dims()[1]);
    let mut out = vec![0.0f32; rows * cols];
    for r in 0..rows {
        let row = &logits.data()[r * cols..(r + 1) * cols];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f32;
        for (o, &x) in out[r * cols..(r + 1) * cols].iter_mut().zip(row) {
            let e = (x - max).exp();
            *o = e;
            denom += e;
        }
        for o in &mut out[r * cols..(r + 1) * cols] {
            *o /= denom;
        }
    }
    Tensor::from_vec(out, &[rows, cols])
}

/// Row-wise log-softmax of a `[rows, cols]` matrix.
///
/// # Panics
///
/// Panics unless the input is rank 2.
pub fn log_softmax_rows(logits: &Tensor) -> Tensor {
    assert_eq!(logits.shape().rank(), 2, "log_softmax_rows needs a matrix");
    let (rows, cols) = (logits.dims()[0], logits.dims()[1]);
    let mut out = vec![0.0f32; rows * cols];
    for r in 0..rows {
        let row = &logits.data()[r * cols..(r + 1) * cols];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let lse = row.iter().map(|&x| (x - max).exp()).sum::<f32>().ln() + max;
        for (o, &x) in out[r * cols..(r + 1) * cols].iter_mut().zip(row) {
            *o = x - lse;
        }
    }
    Tensor::from_vec(out, &[rows, cols])
}

/// Mean cross-entropy of row-wise `logits` against integer `labels`.
///
/// # Panics
///
/// Panics if `labels.len()` differs from the number of rows, or a label is
/// out of range.
pub fn cross_entropy(logits: &Tensor, labels: &[usize]) -> f32 {
    let (rows, cols) = (logits.dims()[0], logits.dims()[1]);
    assert_eq!(labels.len(), rows, "one label per row required");
    let logp = log_softmax_rows(logits);
    let mut loss = 0.0f32;
    for (r, &y) in labels.iter().enumerate() {
        assert!(y < cols, "label {y} out of range for {cols} classes");
        loss -= logp.data()[r * cols + y];
    }
    loss / rows as f32
}

/// Gradient of mean cross-entropy w.r.t. the logits:
/// `(softmax - onehot) / rows`.
///
/// # Panics
///
/// Panics if `labels.len()` differs from the number of rows, or a label is
/// out of range.
pub fn cross_entropy_grad(logits: &Tensor, labels: &[usize]) -> Tensor {
    let (rows, cols) = (logits.dims()[0], logits.dims()[1]);
    assert_eq!(labels.len(), rows, "one label per row required");
    let mut grad = softmax_rows(logits);
    let inv = 1.0 / rows as f32;
    for (r, &y) in labels.iter().enumerate() {
        assert!(y < cols, "label {y} out of range for {cols} classes");
        grad.data_mut()[r * cols + y] -= 1.0;
    }
    grad.map_inplace(|x| x * inv);
    grad
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let t = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]);
        assert_eq!(relu(&t).data(), &[0.0, 0.0, 2.0]);
        assert_eq!(relu_grad_mask(&t).data(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn gelu_fixed_points() {
        let t = Tensor::from_vec(vec![0.0, 10.0, -10.0], &[3]);
        let g = gelu(&t);
        assert_eq!(g.data()[0], 0.0);
        assert!((g.data()[1] - 10.0).abs() < 1e-3);
        assert!(g.data()[2].abs() < 1e-3);
    }

    #[test]
    fn sigmoid_midpoint() {
        let t = Tensor::from_vec(vec![0.0], &[1]);
        assert!((sigmoid(&t).data()[0] - 0.5).abs() < 1e-7);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, -5.0, 0.0, 5.0], &[2, 3]);
        let s = softmax_rows(&t);
        for r in 0..2 {
            let sum: f32 = s.data()[r * 3..(r + 1) * 3].iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // Monotone in the logits.
        assert!(s.data()[2] > s.data()[1]);
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let t = Tensor::from_vec(vec![1000.0, 1001.0, 1002.0], &[1, 3]);
        let s = softmax_rows(&t);
        let t2 = Tensor::from_vec(vec![0.0, 1.0, 2.0], &[1, 3]);
        let s2 = softmax_rows(&t2);
        for (a, b) in s.data().iter().zip(s2.data()) {
            assert!((a - b).abs() < 1e-6);
            assert!(a.is_finite());
        }
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let t = Tensor::from_vec(vec![0.5, -1.5, 2.0, 0.0], &[2, 2]);
        let a = log_softmax_rows(&t);
        let b = softmax_rows(&t).map(f32::ln);
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn cross_entropy_of_perfect_prediction_is_small() {
        let logits = Tensor::from_vec(vec![20.0, 0.0, 0.0, 0.0, 20.0, 0.0], &[2, 3]);
        let loss = cross_entropy(&logits, &[0, 1]);
        assert!(loss < 1e-6, "loss {loss}");
    }

    #[test]
    fn cross_entropy_uniform_is_log_classes() {
        let logits = Tensor::zeros(&[4, 10]);
        let loss = cross_entropy(&logits, &[0, 3, 5, 9]);
        assert!((loss - (10.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn grad_rows_sum_to_zero() {
        let logits = Tensor::from_vec(vec![0.3, -0.2, 0.9, 1.0, 0.0, -1.0], &[2, 3]);
        let g = cross_entropy_grad(&logits, &[2, 0]);
        for r in 0..2 {
            let sum: f32 = g.data()[r * 3..(r + 1) * 3].iter().sum();
            assert!(sum.abs() < 1e-6);
        }
    }

    #[test]
    fn grad_matches_finite_differences() {
        let logits = Tensor::from_vec(vec![0.1, -0.4, 0.7, 0.2, 0.9, -0.3], &[2, 3]);
        let labels = [2usize, 1];
        let g = cross_entropy_grad(&logits, &labels);
        let eps = 1e-3;
        for i in 0..logits.len() {
            let mut plus = logits.clone();
            plus.data_mut()[i] += eps;
            let mut minus = logits.clone();
            minus.data_mut()[i] -= eps;
            let num =
                (cross_entropy(&plus, &labels) - cross_entropy(&minus, &labels)) / (2.0 * eps);
            assert!(
                (num - g.data()[i]).abs() < 1e-3,
                "grad mismatch at {i}: {num} vs {}",
                g.data()[i]
            );
        }
    }
}
