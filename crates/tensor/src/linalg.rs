//! Dense linear algebra: the [`Gemm`] descriptor over a packed-panel
//! kernel, transposes, dot.
//!
//! # One entry point
//!
//! Every matrix product in the workspace is described by a [`Gemm`]
//! builder and executed by one BLIS-style packed driver:
//!
//! ```
//! use tensor::{Tensor, linalg::Gemm, MathPolicy};
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::from_vec(vec![0.0, 1.0, 1.0, 0.0], &[2, 2]);
//! let c = Gemm::new(&a, &b).policy(MathPolicy::Deterministic).run();
//! assert_eq!(c.data(), &[2.0, 1.0, 4.0, 3.0]);
//! ```
//!
//! The descriptor carries operand layouts (`transpose_a`/`transpose_b`
//! absorb transposes into packing strides — nothing is materialized),
//! optional prepacked operands ([`PackedA`]/[`PackedB`]), an explicit
//! thread budget, a fused [`Epilogue`], and a [`MathPolicy`] selecting
//! the kernel family.
//!
//! # Compute kernel
//!
//! 1. B is packed once per call into `NR`-column k-major micro-panels
//!    (thread-local scratch, or a cached [`PackedB`] for frozen weights).
//! 2. The `m` output rows are split into bands of whole `MR`-row panels;
//!    bands are claimed dynamically from the shared [`crate::pool`].
//! 3. Each band packs its rows of A (k-major micro-panels, or slices a
//!    prepacked [`PackedA`]) and runs the register-blocked microkernel
//!    of the selected family over `MR×NR` accumulator tiles.
//!
//! # Policies and determinism
//!
//! Under [`MathPolicy::Deterministic`] every output element is
//! accumulated over `k` in ascending order by the same serial
//! mul-then-add microkernel (no FMA contraction) regardless of which
//! thread computes its band — results are bit-identical across hosts,
//! dispatch decisions, and `NDPIPE_THREADS` values. This family is the
//! oracle the others are tested against.
//!
//! [`MathPolicy::Fast`] dispatches at runtime to FMA or AVX-512 f32
//! microkernels (paired B-panels, unrolled accumulator chains). Those
//! contract rounding steps and re-associate the `k` loop, so outputs
//! differ from the oracle by bounded rounding noise; they are still
//! reproducible run-to-run and across thread counts, because band
//! geometry never changes per-tile arithmetic.
//!
//! [`MathPolicy::Int8`] routes tensor-backed products through
//! [`crate::quant`] (per-tensor symmetric scales, `i8×i8→i32`
//! accumulation, dequantize epilogue); products over prepacked f32
//! panels fall back to the `Fast` family.

use crate::pack::{
    self, pack_a_panels, pack_b_panels, pack_b_panels_wide, MatRef, PackedA, PackedB, MR, NR, WR,
};
use crate::pool::{self, PoolError};
use crate::{MathPolicy, Tensor, TensorError};
use std::sync::{Mutex, OnceLock};

/// Cache-blocking tile size for [`reference_matmul`]. 64×64 f32 tiles
/// (16 KiB) fit comfortably in L1 on every machine this project targets.
const TILE: usize = 64;

/// Work threshold (in multiply-adds) above which the GEMM driver fans
/// output-row bands across the worker pool. Below it, submission overhead
/// dominates the kernel itself.
const PAR_THRESHOLD: usize = 1 << 21;

/// Cached handle for the `ndpipe_gemm_flops_total` counter so the hot
/// path pays one relaxed atomic add, not a registry lookup.
fn flops_counter() -> &'static telemetry::Counter {
    static FLOPS: OnceLock<telemetry::Counter> = OnceLock::new();
    FLOPS.get_or_init(|| {
        telemetry::global().counter(
            "ndpipe_gemm_flops_total",
            "f32 floating-point operations executed by the packed GEMM driver",
        )
    })
}

/// Cached handle for `ndpipe_gemm_fast_flops_total`: the subset of GEMM
/// flops executed under the opt-in `Fast`/`Int8` kernel families.
fn fast_flops_counter() -> &'static telemetry::Counter {
    static FLOPS: OnceLock<telemetry::Counter> = OnceLock::new();
    FLOPS.get_or_init(|| {
        telemetry::global().counter(
            "ndpipe_gemm_fast_flops_total",
            "GEMM flops executed by the opt-in fast/int8 kernel families",
        )
    })
}

pub(crate) fn count_gemm_flops(m: usize, n: usize, k: usize, fast: bool) {
    if telemetry::enabled() {
        let fl = 2 * (m * n * k) as u64;
        flops_counter().add(fl);
        if fast {
            fast_flops_counter().add(fl);
        }
    }
}

// ---------------------------------------------------------------------------
// Kernel families and dispatch
// ---------------------------------------------------------------------------

/// The concrete microkernel family a [`MathPolicy`] resolves to on this
/// host — what `ndpipe_node` logs and the RPC `DescribeNode` reply
/// reports per peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelFamily {
    /// Auto-vectorized mul-then-add loop (the non-x86 oracle).
    Portable,
    /// AVX mul-then-add, bit-identical to [`KernelFamily::Portable`].
    Avx,
    /// AVX2 FMA, paired B-panels, 8 accumulator chains.
    Fma,
    /// AVX-512F FMA over zmm-paired B-panels.
    Avx512,
    /// Symmetric int8 `i8×i8→i32` dot kernel with dequant epilogue.
    Int8Dot,
}

impl KernelFamily {
    /// Canonical lowercase name (logs, describe output).
    pub fn as_str(self) -> &'static str {
        match self {
            KernelFamily::Portable => "portable",
            KernelFamily::Avx => "avx",
            KernelFamily::Fma => "fma",
            KernelFamily::Avx512 => "avx512",
            KernelFamily::Int8Dot => "int8dot",
        }
    }

    /// Stable wire encoding (RPC `ShardInfo`).
    pub fn to_u8(self) -> u8 {
        match self {
            KernelFamily::Portable => 0,
            KernelFamily::Avx => 1,
            KernelFamily::Fma => 2,
            KernelFamily::Avx512 => 3,
            KernelFamily::Int8Dot => 4,
        }
    }

    /// Inverse of [`KernelFamily::to_u8`].
    pub fn from_u8(v: u8) -> Option<KernelFamily> {
        match v {
            0 => Some(KernelFamily::Portable),
            1 => Some(KernelFamily::Avx),
            2 => Some(KernelFamily::Fma),
            3 => Some(KernelFamily::Avx512),
            4 => Some(KernelFamily::Int8Dot),
            _ => None,
        }
    }

    /// Whether this family contracts multiply-add rounding (FMA). The
    /// deterministic oracle must never report `true`.
    pub fn uses_fma(self) -> bool {
        matches!(self, KernelFamily::Fma | KernelFamily::Avx512)
    }
}

impl std::fmt::Display for KernelFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The kernel family `policy` dispatches to on this host (cached CPUID
/// probes). [`MathPolicy::Deterministic`] never resolves to an
/// FMA-contracting family.
pub fn selected_kernel(policy: MathPolicy) -> KernelFamily {
    match policy {
        MathPolicy::Deterministic => det_family(),
        MathPolicy::Fast => fast_family(),
        MathPolicy::Int8 => KernelFamily::Int8Dot,
    }
}

fn det_family() -> KernelFamily {
    #[cfg(target_arch = "x86_64")]
    if avx_available() {
        return KernelFamily::Avx;
    }
    KernelFamily::Portable
}

fn fast_family() -> KernelFamily {
    #[cfg(target_arch = "x86_64")]
    match fast_level() {
        FastLevel::Avx512 => return KernelFamily::Avx512,
        FastLevel::Fma => return KernelFamily::Fma,
        FastLevel::None => {}
    }
    det_family()
}

/// Internal two-way kernel split the driver actually branches on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kern {
    Det,
    Fast,
}

fn kern_for(policy: MathPolicy) -> Kern {
    match policy {
        MathPolicy::Deterministic => Kern::Det,
        // Int8 reaching the f32 driver means the product had prepacked
        // f32 panels — run them under the fast family.
        MathPolicy::Fast | MathPolicy::Int8 => Kern::Fast,
    }
}

// ---------------------------------------------------------------------------
// Gemm descriptor
// ---------------------------------------------------------------------------

/// Fused post-processing applied to each accumulator tile before
/// write-back — the conv+ReLU fusion point. All variants perform the
/// same IEEE ops an unfused bias-add + ReLU pass would, in the same
/// order, so fusion never changes bits (only memory traffic).
#[derive(Debug, Clone, Copy, Default)]
pub enum Epilogue<'a> {
    /// Plain GEMM output.
    #[default]
    None,
    /// `y = max(0, y)`.
    Relu,
    /// `y[i, j] = max(0, y[i, j] + bias[i])` — per-output-row bias then
    /// ReLU, the shape of a conv layer (`bias` indexed by `c_out`).
    /// `bias.len()` must equal the output row count `m`.
    BiasRelu(&'a [f32]),
}

enum GemmA<'a> {
    Mat { t: &'a Tensor, trans: bool },
    Packed(&'a PackedA),
}

enum GemmB<'a> {
    Mat { t: &'a Tensor, trans: bool },
    Packed(&'a PackedB),
}

/// A matrix-product descriptor: operands and layouts, thread seats,
/// fused [`Epilogue`], and [`MathPolicy`]. Build one with [`Gemm::new`]
/// / [`Gemm::prepacked_a`] / [`Gemm::prepacked_b`], refine it with the
/// chained setters, execute with [`Gemm::run`] or [`Gemm::try_run`].
///
/// # Example
///
/// ```
/// use tensor::{Tensor, linalg::Gemm};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let x = Tensor::randn(&[3, 5], &mut rng);
/// let w = Tensor::randn(&[4, 5], &mut rng); // [out, in]
/// // y = x @ wᵀ without materializing the transpose.
/// let y = Gemm::new(&x, &w).transpose_b().run();
/// assert_eq!(y.dims(), &[3, 4]);
/// ```
#[must_use = "a Gemm descriptor does nothing until run"]
pub struct Gemm<'a> {
    op: &'static str,
    a: GemmA<'a>,
    b: GemmB<'a>,
    threads: Option<usize>,
    policy: Option<MathPolicy>,
    epilogue: Epilogue<'a>,
}

impl<'a> Gemm<'a> {
    /// `a @ b` for `a: [m, k]`, `b: [k, n]` (both natural layout).
    pub fn new(a: &'a Tensor, b: &'a Tensor) -> Self {
        Gemm {
            op: "gemm",
            a: GemmA::Mat { t: a, trans: false },
            b: GemmB::Mat { t: b, trans: false },
            threads: None,
            policy: None,
            epilogue: Epilogue::None,
        }
    }

    /// `pa @ b` with a prepacked left operand — conv2d's shape: the same
    /// weight matrix multiplies every image's im2col panels.
    pub fn prepacked_a(pa: &'a PackedA, b: &'a Tensor) -> Self {
        Gemm {
            op: "gemm",
            a: GemmA::Packed(pa),
            b: GemmB::Mat { t: b, trans: false },
            threads: None,
            policy: None,
            epilogue: Epilogue::None,
        }
    }

    /// `a @ B` with a prepacked right operand — the frozen-layer fast
    /// path: a feature extractor packs its weights once
    /// ([`PackedB::pack_nt`]) and every batch reuses the panels.
    pub fn prepacked_b(a: &'a Tensor, pb: &'a PackedB) -> Self {
        Gemm {
            op: "gemm",
            a: GemmA::Mat { t: a, trans: false },
            b: GemmB::Packed(pb),
            threads: None,
            policy: None,
            epilogue: Epilogue::None,
        }
    }

    /// Treat `a` as transposed: the left operand is `aᵀ` of a `[k, m]`
    /// buffer (the weight-gradient shape `dW = dyᵀ @ x`).
    ///
    /// # Panics
    ///
    /// Panics if the left operand is prepacked — panel layout is fixed
    /// at pack time.
    pub fn transpose_a(mut self) -> Self {
        match &mut self.a {
            GemmA::Mat { trans, .. } => *trans = true,
            GemmA::Packed(_) => panic!("{}: cannot transpose a prepacked operand", self.op),
        }
        self
    }

    /// Treat `b` as transposed: the right operand is `bᵀ` of an `[n, k]`
    /// buffer (the linear-forward shape `y = x @ Wᵀ`).
    ///
    /// # Panics
    ///
    /// Panics if the right operand is prepacked — panel layout is fixed
    /// at pack time.
    pub fn transpose_b(mut self) -> Self {
        match &mut self.b {
            GemmB::Mat { trans, .. } => *trans = true,
            GemmB::Packed(_) => panic!("{}: cannot transpose a prepacked operand", self.op),
        }
        self
    }

    /// Explicit thread budget (determinism tests, benches). Defaults to
    /// [`crate::configured_threads`].
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Kernel family selection. Defaults to
    /// [`crate::default_math_policy`] (the `NDPIPE_MATH` environment).
    pub fn policy(mut self, policy: MathPolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Fused epilogue applied on accumulator tiles before write-back.
    pub fn epilogue(mut self, epilogue: Epilogue<'a>) -> Self {
        self.epilogue = epilogue;
        self
    }

    /// Operation label used in panic/error messages (the deprecated
    /// wrappers keep their historical names this way).
    pub fn op_name(mut self, op: &'static str) -> Self {
        self.op = op;
        self
    }

    /// Resolved `(m, k, n)` after layout flags, or a shape error.
    fn shapes(&self) -> Result<(usize, usize, usize), TensorError> {
        let (lhs, rhs) = (self.a_dims(), self.b_dims());
        let mismatch = || TensorError::ShapeMismatch {
            op: self.op,
            lhs: lhs.clone().unwrap_or_default(),
            rhs: rhs.clone().unwrap_or_default(),
        };
        let (lhs, rhs) = match (&lhs, &rhs) {
            (Some(l), Some(r)) => (l, r),
            _ => return Err(mismatch()),
        };
        let (m, k) = match &self.a {
            GemmA::Mat { trans: false, .. } | GemmA::Packed(_) => (lhs[0], lhs[1]),
            GemmA::Mat { trans: true, .. } => (lhs[1], lhs[0]),
        };
        let (k2, n) = match &self.b {
            GemmB::Mat { trans: false, .. } | GemmB::Packed(_) => (rhs[0], rhs[1]),
            GemmB::Mat { trans: true, .. } => (rhs[1], rhs[0]),
        };
        if k != k2 {
            return Err(mismatch());
        }
        if let Epilogue::BiasRelu(bias) = self.epilogue {
            if bias.len() != m {
                return Err(mismatch());
            }
        }
        Ok((m, k, n))
    }

    /// Stored (pre-transpose) dims of the left operand; `None` if it is
    /// tensor-backed but not rank 2.
    fn a_dims(&self) -> Option<Vec<usize>> {
        match &self.a {
            GemmA::Mat { t, .. } => (t.shape().rank() == 2).then(|| t.dims().to_vec()),
            GemmA::Packed(pa) => {
                let (m, k) = pa.dims();
                Some(vec![m, k])
            }
        }
    }

    fn b_dims(&self) -> Option<Vec<usize>> {
        match &self.b {
            GemmB::Mat { t, .. } => (t.shape().rank() == 2).then(|| t.dims().to_vec()),
            GemmB::Packed(pb) => {
                let (k, n) = pb.dims();
                Some(vec![k, n])
            }
        }
    }

    /// Executes the product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or if a pool worker panics; see
    /// [`Gemm::try_run`] for the typed-error form.
    pub fn run(self) -> Tensor {
        let op = self.op;
        self.try_run().unwrap_or_else(|e| panic!("{op}: {e}"))
    }

    /// Executes the product, reporting failures as [`TensorError`].
    ///
    /// # Errors
    ///
    /// [`TensorError::ShapeMismatch`] on rank/dimension mismatch (or an
    /// epilogue bias whose length differs from `m`),
    /// [`TensorError::WorkerPanicked`] if a pool task panicked.
    pub fn try_run(self) -> Result<Tensor, TensorError> {
        let (m, k, n) = self.shapes()?;
        let policy = self.policy.unwrap_or_else(crate::default_math_policy);
        let threads = self.threads.unwrap_or_else(crate::configured_threads);

        if policy == MathPolicy::Int8 {
            if let (GemmA::Mat { t: a, trans: ta }, GemmB::Mat { t: b, trans: tb }) =
                (&self.a, &self.b)
            {
                let av = mat_view(a, *ta);
                let bv = mat_view(b, *tb);
                return Ok(crate::quant::gemm_int8(&av, &bv, &self.epilogue));
            }
            // Prepacked f32 panels have no integer form — fall through
            // to the fast f32 family.
        }

        let asrc = match &self.a {
            GemmA::Mat { t, trans } => ASrc::Mat(mat_view(t, *trans)),
            GemmA::Packed(pa) => ASrc::Packed(pa),
        };
        let bsrc = match &self.b {
            GemmB::Mat { t, trans } => BSrc::Mat(mat_view(t, *trans)),
            GemmB::Packed(pb) => BSrc::Packed(pb),
        };
        gemm(
            m,
            n,
            k,
            asrc,
            bsrc,
            threads,
            kern_for(policy),
            &self.epilogue,
        )
        .map_err(|e| TensorError::WorkerPanicked {
            op: self.op,
            msg: e.to_string(),
        })
    }
}

/// Strided view of a rank-2 tensor, optionally transposed.
fn mat_view(t: &Tensor, trans: bool) -> MatRef<'_> {
    if trans {
        MatRef::transposed(t.data(), t.dims()[1], t.dims()[0])
    } else {
        MatRef::row_major(t.data(), t.dims()[0], t.dims()[1])
    }
}

// ---------------------------------------------------------------------------
// Deprecated wrappers (one release of grace; use `Gemm`)
// ---------------------------------------------------------------------------

/// Matrix product `a @ b` for `a: [m, k]`, `b: [k, n]`.
#[deprecated(note = "use Gemm::new(a, b).run()")]
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    Gemm::new(a, b).op_name("matmul").run()
}

/// [`matmul`] with an explicit thread budget.
#[deprecated(note = "use Gemm::new(a, b).threads(threads).run()")]
pub fn matmul_with_threads(a: &Tensor, b: &Tensor, threads: usize) -> Tensor {
    Gemm::new(a, b).op_name("matmul").threads(threads).run()
}

/// Fallible [`matmul`].
///
/// # Errors
///
/// [`TensorError::ShapeMismatch`] or [`TensorError::WorkerPanicked`].
#[deprecated(note = "use Gemm::new(a, b).try_run()")]
pub fn try_matmul(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    Gemm::new(a, b).op_name("matmul").try_run()
}

/// `aᵀ @ b` without materializing the transpose: `a: [k, m]`, `b: [k, n]`.
#[deprecated(note = "use Gemm::new(a, b).transpose_a().run()")]
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    Gemm::new(a, b).transpose_a().op_name("matmul_tn").run()
}

/// [`matmul_tn`] with an explicit thread budget.
#[deprecated(note = "use Gemm::new(a, b).transpose_a().threads(threads).run()")]
pub fn matmul_tn_with_threads(a: &Tensor, b: &Tensor, threads: usize) -> Tensor {
    Gemm::new(a, b)
        .transpose_a()
        .op_name("matmul_tn")
        .threads(threads)
        .run()
}

/// Fallible [`matmul_tn`].
///
/// # Errors
///
/// [`TensorError::ShapeMismatch`] or [`TensorError::WorkerPanicked`].
#[deprecated(note = "use Gemm::new(a, b).transpose_a().try_run()")]
pub fn try_matmul_tn(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    Gemm::new(a, b).transpose_a().op_name("matmul_tn").try_run()
}

/// `a @ bᵀ` without materializing the transpose: `a: [m, k]`, `b: [n, k]`.
#[deprecated(note = "use Gemm::new(a, b).transpose_b().run()")]
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    Gemm::new(a, b).transpose_b().op_name("matmul_nt").run()
}

/// [`matmul_nt`] with an explicit thread budget.
#[deprecated(note = "use Gemm::new(a, b).transpose_b().threads(threads).run()")]
pub fn matmul_nt_with_threads(a: &Tensor, b: &Tensor, threads: usize) -> Tensor {
    Gemm::new(a, b)
        .transpose_b()
        .op_name("matmul_nt")
        .threads(threads)
        .run()
}

/// Fallible [`matmul_nt`].
///
/// # Errors
///
/// [`TensorError::ShapeMismatch`] or [`TensorError::WorkerPanicked`].
#[deprecated(note = "use Gemm::new(a, b).transpose_b().try_run()")]
pub fn try_matmul_nt(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    Gemm::new(a, b).transpose_b().op_name("matmul_nt").try_run()
}

/// `pa @ b` with a prepacked left operand.
#[deprecated(note = "use Gemm::prepacked_a(pa, b).run()")]
pub fn matmul_packed_a(pa: &PackedA, b: &Tensor) -> Tensor {
    Gemm::prepacked_a(pa, b).op_name("matmul_packed_a").run()
}

/// [`matmul_packed_a`] with an explicit thread budget.
#[deprecated(note = "use Gemm::prepacked_a(pa, b).threads(threads).run()")]
pub fn matmul_packed_a_with_threads(pa: &PackedA, b: &Tensor, threads: usize) -> Tensor {
    Gemm::prepacked_a(pa, b)
        .op_name("matmul_packed_a")
        .threads(threads)
        .run()
}

/// `a @ B` with a prepacked right operand.
#[deprecated(note = "use Gemm::prepacked_b(a, pb).run()")]
pub fn matmul_packed_b(a: &Tensor, pb: &PackedB) -> Tensor {
    Gemm::prepacked_b(a, pb).op_name("matmul_packed_b").run()
}

// ---------------------------------------------------------------------------
// Non-GEMM kernels
// ---------------------------------------------------------------------------

/// Transpose of a `[m, n]` matrix, tiled so both the source reads and the
/// destination writes stay within cache lines of a 32×32 block (the naive
/// column-scatter loop misses on every store for wide matrices).
///
/// # Panics
///
/// Panics unless the input is rank 2.
pub fn transpose(a: &Tensor) -> Tensor {
    const TR_TILE: usize = 32;
    assert_eq!(a.shape().rank(), 2, "transpose needs a matrix");
    let (m, n) = (a.dims()[0], a.dims()[1]);
    let ad = a.data();
    let mut out = vec![0.0f32; m * n];
    for i0 in (0..m).step_by(TR_TILE) {
        let i1 = (i0 + TR_TILE).min(m);
        for j0 in (0..n).step_by(TR_TILE) {
            let j1 = (j0 + TR_TILE).min(n);
            for i in i0..i1 {
                for j in j0..j1 {
                    out[j * m + i] = ad[i * n + j];
                }
            }
        }
    }
    Tensor::from_vec(out, &[n, m])
}

/// Dot product of two equal-length rank-1 tensors.
///
/// # Panics
///
/// Panics unless both inputs are rank 1 of equal length.
pub fn dot(a: &Tensor, b: &Tensor) -> f32 {
    assert_eq!(a.shape().rank(), 1, "dot lhs must be a vector");
    assert_eq!(b.shape().rank(), 1, "dot rhs must be a vector");
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.data().iter().zip(b.data()).map(|(&x, &y)| x * y).sum()
}

/// The pre-packing serial kernel (i-k-j saxpy over 64×64 tiles), kept as
/// the benchmark baseline and test oracle for the packed driver.
///
/// # Panics
///
/// Panics unless both inputs are rank 2 with compatible inner dimensions.
pub fn reference_matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "matmul lhs must be a matrix");
    assert_eq!(b.shape().rank(), 2, "matmul rhs must be a matrix");
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul inner dimension mismatch");
    let mut out = vec![0.0f32; m * n];
    matmul_rows(a.data(), b.data(), &mut out, 0, m, k, n);
    Tensor::from_vec(out, &[m, n])
}

/// Serial tiled kernel over output rows `i_lo..i_hi`; `out` holds exactly
/// those rows. This was the PR-1 production kernel; see
/// [`reference_matmul`].
fn matmul_rows(
    ad: &[f32],
    bd: &[f32],
    out: &mut [f32],
    i_lo: usize,
    i_hi: usize,
    k: usize,
    n: usize,
) {
    for i0 in (i_lo..i_hi).step_by(TILE) {
        let i1 = (i0 + TILE).min(i_hi);
        for k0 in (0..k).step_by(TILE) {
            let k1 = (k0 + TILE).min(k);
            for j0 in (0..n).step_by(TILE) {
                let j1 = (j0 + TILE).min(n);
                for i in i0..i1 {
                    for kk in k0..k1 {
                        let aik = ad[i * k + kk];
                        if aik == 0.0 {
                            continue;
                        }
                        let brow = &bd[kk * n + j0..kk * n + j1];
                        let o_base = (i - i_lo) * n;
                        let orow = &mut out[o_base + j0..o_base + j1];
                        for (o, &bv) in orow.iter_mut().zip(brow) {
                            *o += aik * bv;
                        }
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Packed GEMM driver
// ---------------------------------------------------------------------------

/// Left-operand source for the driver: a strided view to pack per band, or
/// panels packed ahead of time.
enum ASrc<'a> {
    Mat(MatRef<'a>),
    Packed(&'a PackedA),
}

/// Right-operand source: a strided view to pack once per call, or a cached
/// [`PackedB`].
enum BSrc<'a> {
    Mat(MatRef<'a>),
    Packed(&'a PackedB),
}

/// How the packed B buffer is laid out: [`NR`]-column panels (the
/// deterministic layout, also what a cached [`PackedB`] holds) or
/// [`WR`]-column panels (the fast family's zmm-ready layout, built only
/// when B is packed per call and a fast kernel will consume it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BLayout {
    Narrow,
    Wide,
}

/// Whether the wide-B fast kernel will actually run for `kern` on this
/// host. AVX-512 only: the zmm kernel performs the *same* per-element
/// even/odd FMA arithmetic as the narrow paired kernels, so a product is
/// bit-identical whether B arrived prepacked (narrow) or packed per call
/// (wide). A ymm wide kernel would need 16 accumulator registers to
/// match — more than AVX2 has — so FMA-level hosts stay on the narrow
/// paired path everywhere.
fn wants_wide_b(kern: Kern) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        kern == Kern::Fast && fast_level() == FastLevel::Avx512
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = kern;
        false
    }
}

/// The shared packed-panel driver behind every f32 matrix product.
#[allow(clippy::too_many_arguments)]
fn gemm(
    m: usize,
    n: usize,
    k: usize,
    a: ASrc<'_>,
    b: BSrc<'_>,
    threads: usize,
    kern: Kern,
    epi: &Epilogue<'_>,
) -> Result<Tensor, PoolError> {
    count_gemm_flops(m, n, k, kern == Kern::Fast);
    let mut out = vec![0.0f32; m * n];
    match b {
        BSrc::Packed(pb) => gemm_packed_b(
            m,
            n,
            k,
            &a,
            &pb.buf,
            BLayout::Narrow,
            threads,
            kern,
            epi,
            &mut out,
        )?,
        BSrc::Mat(mb) => pack::with_pack_b(|buf| {
            let layout = if wants_wide_b(kern) {
                pack_b_panels_wide(&mb, buf);
                BLayout::Wide
            } else {
                pack_b_panels(&mb, buf);
                BLayout::Narrow
            };
            gemm_packed_b(m, n, k, &a, buf, layout, threads, kern, epi, &mut out)
        })?,
    }
    Ok(Tensor::from_vec(out, &[m, n]))
}

/// Dispatches row bands over the pool (or runs one serial band).
#[allow(clippy::too_many_arguments)]
fn gemm_packed_b(
    m: usize,
    n: usize,
    k: usize,
    a: &ASrc<'_>,
    pb: &[f32],
    layout: BLayout,
    threads: usize,
    kern: Kern,
    epi: &Epilogue<'_>,
    out: &mut [f32],
) -> Result<(), PoolError> {
    let m_panels = m.div_ceil(MR);
    let threads = if 2 * m * n * k >= PAR_THRESHOLD {
        threads.max(1)
    } else {
        1
    };
    if threads == 1 || m_panels == 1 {
        gemm_band(a, 0, m, k, n, pb, layout, kern, epi, out);
        return Ok(());
    }
    // Split whole MR-panels into bands; a couple of bands per thread lets
    // the pool's chunked self-scheduling absorb load imbalance.
    let band_target = (threads * 2).min(m_panels);
    let panels_per_band = m_panels.div_ceil(band_target);
    let rows_per_band = panels_per_band * MR;
    let bands: Vec<Mutex<(usize, &mut [f32])>> = out
        .chunks_mut(rows_per_band * n)
        .enumerate()
        .map(|(i, c)| Mutex::new((i * rows_per_band, c)))
        .collect();
    pool::run(threads, bands.len(), &|t| {
        if let Some(slot) = bands.get(t) {
            let mut guard = slot
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let (r0, band_out) = &mut *guard;
            let rows = band_out.len() / n;
            gemm_band(a, *r0, *r0 + rows, k, n, pb, layout, kern, epi, band_out);
        }
    })
}

/// Serial prepacked-A GEMM writing into `out` (length `m * n`), where
/// `b_data` is a row-major `[k, n]` buffer. This is conv2d's per-image
/// inner kernel: the image's im2col panels are packed into thread-local
/// scratch and multiplied against the packed weight matrix without any
/// allocation. `Int8` has no packed-panel form and runs as `Fast`.
pub(crate) fn matmul_packed_a_into(
    pa: &PackedA,
    b_data: &[f32],
    n: usize,
    out: &mut [f32],
    policy: MathPolicy,
    epi: &Epilogue<'_>,
) {
    let (m, k) = pa.dims();
    debug_assert_eq!(b_data.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    let kern = kern_for(policy);
    count_gemm_flops(m, n, k, kern == Kern::Fast);
    pack::with_pack_b(|buf| {
        let b = MatRef::row_major(b_data, k, n);
        let layout = if wants_wide_b(kern) {
            pack_b_panels_wide(&b, buf);
            BLayout::Wide
        } else {
            pack_b_panels(&b, buf);
            BLayout::Narrow
        };
        gemm_panels(&pa.buf, m, k, n, buf, layout, kern, epi, 0, out);
    });
}

/// Serial packed kernel over output rows `r0..r1` (MR-panel aligned);
/// `out` holds exactly those rows.
#[allow(clippy::too_many_arguments)]
fn gemm_band(
    a: &ASrc<'_>,
    r0: usize,
    r1: usize,
    k: usize,
    n: usize,
    pb: &[f32],
    layout: BLayout,
    kern: Kern,
    epi: &Epilogue<'_>,
    out: &mut [f32],
) {
    match a {
        ASrc::Packed(pa) => {
            debug_assert_eq!(r0 % MR, 0);
            let p0 = r0 / MR;
            let p1 = r1.div_ceil(MR);
            gemm_panels(
                &pa.buf[p0 * MR * k..p1 * MR * k],
                r1 - r0,
                k,
                n,
                pb,
                layout,
                kern,
                epi,
                r0,
                out,
            );
        }
        ASrc::Mat(mat) => pack::with_pack_a(|buf| {
            pack_a_panels(mat, r0, r1, buf);
            gemm_panels(buf, r1 - r0, k, n, pb, layout, kern, epi, r0, out);
        }),
    }
}

/// Multiplies packed A panels (covering `rows` valid rows) against packed
/// B panels with the selected kernel family, applying the epilogue and
/// masking the write-back at the edges. `bias_base` is the absolute output
/// row of `out[0]` (epilogue bias slices are indexed absolutely).
#[allow(clippy::too_many_arguments)]
fn gemm_panels(
    pa: &[f32],
    rows: usize,
    k: usize,
    n: usize,
    pb: &[f32],
    layout: BLayout,
    kern: Kern,
    epi: &Epilogue<'_>,
    bias_base: usize,
    out: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if kern == Kern::Fast {
        let level = fast_level();
        if level != FastLevel::None {
            // Safety: the CPUID probe verified the features the fast
            // kernels require; panel slices are sized by the packers.
            unsafe {
                match layout {
                    BLayout::Wide => {
                        gemm_panels_fast_wide(pa, rows, k, n, pb, level, epi, bias_base, out)
                    }
                    BLayout::Narrow => {
                        gemm_panels_fast(pa, rows, k, n, pb, level, epi, bias_base, out)
                    }
                }
            }
            return;
        }
    }
    let _ = kern;
    // Non-x86 hosts (and fast-less CPUs) run the oracle kernel; the wide
    // layout is only ever built when a fast kernel was going to consume
    // it, so it cannot reach here.
    debug_assert_eq!(layout, BLayout::Narrow);
    let n_panels = n.div_ceil(NR);
    for (p, pa_panel) in pa.chunks_exact(MR * k).enumerate() {
        let row0 = p * MR;
        if row0 >= rows {
            break;
        }
        let tile_rows = MR.min(rows - row0);
        for jp in 0..n_panels {
            let pb_panel = &pb[jp * NR * k..(jp + 1) * NR * k];
            let mut acc = [[0.0f32; NR]; MR];
            microkernel(k, pa_panel, pb_panel, &mut acc);
            write_tile(&acc, row0, jp * NR, tile_rows, n, epi, bias_base, out);
        }
    }
}

/// Applies the epilogue to one accumulator tile and writes the masked
/// result. `W` is the tile width (NR for single panels, 2*NR for the
/// paired fast kernels).
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn write_tile<const W: usize>(
    acc: &[[f32; W]; MR],
    row0: usize,
    col0: usize,
    tile_rows: usize,
    n: usize,
    epi: &Epilogue<'_>,
    bias_base: usize,
    out: &mut [f32],
) {
    let tile_cols = W.min(n - col0);
    for (r, acc_row) in acc.iter().enumerate().take(tile_rows) {
        let dst = &mut out[(row0 + r) * n + col0..(row0 + r) * n + col0 + tile_cols];
        match epi {
            Epilogue::None => dst.copy_from_slice(&acc_row[..tile_cols]),
            Epilogue::Relu => {
                for (o, &v) in dst.iter_mut().zip(acc_row) {
                    *o = v.max(0.0);
                }
            }
            Epilogue::BiasRelu(bias) => {
                let b = bias[bias_base + row0 + r];
                for (o, &v) in dst.iter_mut().zip(acc_row) {
                    *o = (v + b).max(0.0);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Deterministic (oracle) microkernels
// ---------------------------------------------------------------------------

/// Register-blocked micro-tile update: `acc += A_panel @ B_panel` where
/// `A_panel` is `MR×k` (k-major) and `B_panel` is `k×NR`.
///
/// Dispatches once (cached CPUID probe) to an AVX variant on x86-64
/// hosts that support it, else to the portable auto-vectorized loop.
/// Both variants perform the *same* IEEE mul-then-add per element in the
/// same ascending-k order — the AVX path deliberately uses separate
/// multiply and add (no FMA contraction) — so results are bit-identical
/// across hosts and dispatch decisions.
#[inline(always)]
fn microkernel(k: usize, pa: &[f32], pb: &[f32], acc: &mut [[f32; NR]; MR]) {
    #[cfg(target_arch = "x86_64")]
    if avx_available() {
        // Safety: AVX support was verified at runtime, and the panel
        // slices are sized `k*MR` / `k*NR` by the packers.
        unsafe { microkernel_avx(k, pa, pb, acc) };
        return;
    }
    microkernel_portable(k, pa, pb, acc);
}

/// Portable fallback: fixed-size array arithmetic shaped for LLVM
/// auto-vectorization — NR independent f32 multiply-adds per A broadcast.
#[inline(always)]
fn microkernel_portable(k: usize, pa: &[f32], pb: &[f32], acc: &mut [[f32; NR]; MR]) {
    let (a_steps, _) = pa.as_chunks::<MR>();
    let (b_steps, _) = pb.as_chunks::<NR>();
    for (a_step, b_step) in a_steps.iter().zip(b_steps).take(k) {
        for (&av, acc_row) in a_step.iter().zip(acc.iter_mut()) {
            for (c, &bv) in acc_row.iter_mut().zip(b_step) {
                *c += av * bv;
            }
        }
    }
}

/// Cached runtime probe for the AVX microkernel.
#[cfg(target_arch = "x86_64")]
fn avx_available() -> bool {
    static AVX: OnceLock<bool> = OnceLock::new();
    *AVX.get_or_init(|| std::arch::is_x86_feature_detected!("avx"))
}

/// AVX micro-tile update: each accumulator row is one 8-lane `ymm`
/// register (`NR == 8`), updated with separate `vmulps`/`vaddps` so the
/// rounding matches the portable kernel exactly.
///
/// # Safety
///
/// Requires AVX at runtime; `pa`/`pb` must hold at least `k*MR` / `k*NR`
/// elements.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn microkernel_avx(k: usize, pa: &[f32], pb: &[f32], acc: &mut [[f32; NR]; MR]) {
    use std::arch::x86_64::*;
    const { assert!(NR == 8 && MR == 4) };
    debug_assert!(pa.len() >= k * MR && pb.len() >= k * NR);
    let mut c0 = _mm256_loadu_ps(acc[0].as_ptr());
    let mut c1 = _mm256_loadu_ps(acc[1].as_ptr());
    let mut c2 = _mm256_loadu_ps(acc[2].as_ptr());
    let mut c3 = _mm256_loadu_ps(acc[3].as_ptr());
    let pa = pa.as_ptr();
    let pb = pb.as_ptr();
    for kk in 0..k {
        let b = _mm256_loadu_ps(pb.add(kk * NR));
        let a = pa.add(kk * MR);
        c0 = _mm256_add_ps(c0, _mm256_mul_ps(_mm256_broadcast_ss(&*a), b));
        c1 = _mm256_add_ps(c1, _mm256_mul_ps(_mm256_broadcast_ss(&*a.add(1)), b));
        c2 = _mm256_add_ps(c2, _mm256_mul_ps(_mm256_broadcast_ss(&*a.add(2)), b));
        c3 = _mm256_add_ps(c3, _mm256_mul_ps(_mm256_broadcast_ss(&*a.add(3)), b));
    }
    _mm256_storeu_ps(acc[0].as_mut_ptr(), c0);
    _mm256_storeu_ps(acc[1].as_mut_ptr(), c1);
    _mm256_storeu_ps(acc[2].as_mut_ptr(), c2);
    _mm256_storeu_ps(acc[3].as_mut_ptr(), c3);
}

// ---------------------------------------------------------------------------
// Fast (FMA / AVX-512) microkernels
// ---------------------------------------------------------------------------

/// Runtime capability tier for the fast kernel family.
#[cfg(target_arch = "x86_64")]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FastLevel {
    None,
    Fma,
    Avx512,
}

/// Cached CPUID probe for the fast kernels. AVX-512 requires `fma` too:
/// the odd-panel tail runs the 256-bit FMA kernel.
#[cfg(target_arch = "x86_64")]
fn fast_level() -> FastLevel {
    static LEVEL: OnceLock<FastLevel> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        let fma = std::arch::is_x86_feature_detected!("fma")
            && std::arch::is_x86_feature_detected!("avx");
        if fma && std::arch::is_x86_feature_detected!("avx512f") {
            FastLevel::Avx512
        } else if fma {
            FastLevel::Fma
        } else {
            FastLevel::None
        }
    })
}

/// Fast-family panel loop: B panels are consumed in pairs so each A
/// broadcast feeds 16 output columns (8 independent FMA chains on AVX2,
/// eight zmm chains on AVX-512); the odd tail panel runs the unrolled
/// single-panel FMA kernel.
///
/// Loop order is the transpose of the deterministic path: the B
/// panel-pair is the *outer* loop and A panels the inner one, so the
/// 2·NR·k pair (32 KiB at k=512) stays L1-resident across every A panel
/// and the packed A block streams from L2 — at large sizes the straight
/// loop re-reads the full packed B (≈ k·n·4 bytes) from L2/L3 once per
/// A panel and goes memory-bound near 45 GFLOPS on this class of
/// machine. The interchange only reorders whole output tiles (each is
/// still computed in one uninterrupted ascending-k pass), so results
/// are unchanged.
///
/// # Safety
///
/// `level` must come from [`fast_level`] (features verified at runtime)
/// and must not be `FastLevel::None`; panel slices must be packer-sized.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
unsafe fn gemm_panels_fast(
    pa: &[f32],
    rows: usize,
    k: usize,
    n: usize,
    pb: &[f32],
    level: FastLevel,
    epi: &Epilogue<'_>,
    bias_base: usize,
    out: &mut [f32],
) {
    let n_panels = n.div_ceil(NR);
    let m_panels = rows.div_ceil(MR);
    let a_panels = pa.chunks_exact(MR * k).take(m_panels);
    let mut jp = 0;
    while jp + 2 <= n_panels {
        let pb0 = &pb[jp * NR * k..(jp + 1) * NR * k];
        let pb1 = &pb[(jp + 1) * NR * k..(jp + 2) * NR * k];
        for (p, pa_panel) in a_panels.clone().enumerate() {
            let row0 = p * MR;
            let tile_rows = MR.min(rows - row0);
            let mut acc = [[0.0f32; 2 * NR]; MR];
            match level {
                FastLevel::Avx512 => microkernel_avx512_2x(k, pa_panel, pb0, pb1, &mut acc),
                _ => microkernel_fma_2x(k, pa_panel, pb0, pb1, &mut acc),
            }
            write_tile(&acc, row0, jp * NR, tile_rows, n, epi, bias_base, out);
        }
        jp += 2;
    }
    if jp < n_panels {
        let pb0 = &pb[jp * NR * k..(jp + 1) * NR * k];
        for (p, pa_panel) in a_panels.enumerate() {
            let row0 = p * MR;
            let tile_rows = MR.min(rows - row0);
            let mut acc = [[0.0f32; NR]; MR];
            microkernel_fma_1x(k, pa_panel, pb0, &mut acc);
            write_tile(&acc, row0, jp * NR, tile_rows, n, epi, bias_base, out);
        }
    }
}

/// Fast-family panel loop over the [`WR`]-wide B layout: contiguous zmm
/// loads, no cross-panel shuffles. The main body works on 8 output rows
/// × 32 output columns at a time (two A panels × two wide B panels), so
/// each broadcast A element feeds two FMAs from a register and each B
/// load feeds eight — the kernel is FMA-port bound rather than
/// load-port bound. Ragged right edges are zero-padded by the packer
/// and masked at write-back.
///
/// Every kernel in this family accumulates each output element in ONE
/// chain over ascending k (the 16 independent row×panel chains supply
/// the instruction-level parallelism that the narrow kernels get from
/// even/odd splitting), so results are bit-identical regardless of how
/// the driver groups panels — and therefore across thread counts.
///
/// # Safety
///
/// [`fast_level`] must have returned `FastLevel::Avx512`; `pb` must be
/// packed by [`pack_b_panels_wide`].
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
unsafe fn gemm_panels_fast_wide(
    pa: &[f32],
    rows: usize,
    k: usize,
    n: usize,
    pb: &[f32],
    level: FastLevel,
    epi: &Epilogue<'_>,
    bias_base: usize,
    out: &mut [f32],
) {
    debug_assert_eq!(level, FastLevel::Avx512);
    let _ = level;
    let n_panels = n.div_ceil(WR);
    let m_panels = rows.div_ceil(MR);
    let b_panel = |jp: usize| &pb[jp * WR * k..(jp + 1) * WR * k];
    let a_panel = |p: usize| &pa[p * MR * k..(p + 1) * MR * k];
    let mut jp = 0;
    while jp + 2 <= n_panels {
        let pb0 = b_panel(jp);
        let pb1 = b_panel(jp + 1);
        let mut p = 0;
        while p + 2 <= m_panels {
            let mut acc = [[[0.0f32; WR]; MR]; 4];
            microkernel_avx512_w832(k, a_panel(p), a_panel(p + 1), pb0, pb1, &mut acc);
            let row0 = p * MR;
            let rows1 = MR.min(rows - (row0 + MR));
            write_tile(&acc[0], row0, jp * WR, MR, n, epi, bias_base, out);
            write_tile(&acc[1], row0, (jp + 1) * WR, MR, n, epi, bias_base, out);
            write_tile(&acc[2], row0 + MR, jp * WR, rows1, n, epi, bias_base, out);
            write_tile(&acc[3], row0 + MR, (jp + 1) * WR, rows1, n, epi, bias_base, out);
            p += 2;
        }
        if p < m_panels {
            let row0 = p * MR;
            let tile_rows = MR.min(rows - row0);
            let mut acc0 = [[0.0f32; WR]; MR];
            let mut acc1 = [[0.0f32; WR]; MR];
            microkernel_avx512_w2(k, a_panel(p), pb0, pb1, &mut acc0, &mut acc1);
            write_tile(&acc0, row0, jp * WR, tile_rows, n, epi, bias_base, out);
            write_tile(&acc1, row0, (jp + 1) * WR, tile_rows, n, epi, bias_base, out);
        }
        jp += 2;
    }
    if jp < n_panels {
        // Odd final wide panel: pair A panels so the B panel is still
        // read once per 8 output rows.
        let pbw = b_panel(jp);
        let mut p = 0;
        while p + 2 <= m_panels {
            let mut acc0 = [[0.0f32; WR]; MR];
            let mut acc1 = [[0.0f32; WR]; MR];
            microkernel_avx512_w8(k, a_panel(p), a_panel(p + 1), pbw, &mut acc0, &mut acc1);
            let row0 = p * MR;
            let rows1 = MR.min(rows - (row0 + MR));
            write_tile(&acc0, row0, jp * WR, MR, n, epi, bias_base, out);
            write_tile(&acc1, row0 + MR, jp * WR, rows1, n, epi, bias_base, out);
            p += 2;
        }
        if p < m_panels {
            let row0 = p * MR;
            let tile_rows = MR.min(rows - row0);
            let mut acc = [[0.0f32; WR]; MR];
            microkernel_avx512_w(k, a_panel(p), pbw, &mut acc);
            write_tile(&acc, row0, jp * WR, tile_rows, n, epi, bias_base, out);
        }
    }
}

/// The peak-rate kernel: 8 output rows (two A panels) × 32 output
/// columns (two wide B panels). Per k step: 2 zmm B loads + 8 register
/// broadcasts feed 16 FMAs across 16 single-chain zmm accumulators —
/// FMA-port bound with every chain touched once per 16-FMA round, well
/// past the FMA latency. Tiles are `acc[0]`=rows0×pb0, `acc[1]`=
/// rows0×pb1, `acc[2]`=rows1×pb0, `acc[3]`=rows1×pb1.
///
/// # Safety
///
/// Requires AVX-512F at runtime; `pa0`/`pa1` must each hold `k*MR`
/// elements and `pb0`/`pb1` `k*WR` each.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn microkernel_avx512_w832(
    k: usize,
    pa0: &[f32],
    pa1: &[f32],
    pb0: &[f32],
    pb1: &[f32],
    acc: &mut [[[f32; WR]; MR]; 4],
) {
    use std::arch::x86_64::*;
    const { assert!(NR == 8 && MR == 4 && WR == 16) };
    debug_assert!(pa0.len() >= k * MR && pa1.len() >= k * MR);
    debug_assert!(pb0.len() >= k * WR && pb1.len() >= k * WR);
    let mut c00 = [_mm512_setzero_ps(); MR];
    let mut c01 = [_mm512_setzero_ps(); MR];
    let mut c10 = [_mm512_setzero_ps(); MR];
    let mut c11 = [_mm512_setzero_ps(); MR];
    let pa0 = pa0.as_ptr();
    let pa1 = pa1.as_ptr();
    let pb0 = pb0.as_ptr();
    let pb1 = pb1.as_ptr();
    for kk in 0..k {
        let b0 = _mm512_loadu_ps(pb0.add(kk * WR));
        let b1 = _mm512_loadu_ps(pb1.add(kk * WR));
        let a0 = pa0.add(kk * MR);
        let a1 = pa1.add(kk * MR);
        for r in 0..MR {
            let av = _mm512_set1_ps(*a0.add(r));
            c00[r] = _mm512_fmadd_ps(av, b0, c00[r]);
            c01[r] = _mm512_fmadd_ps(av, b1, c01[r]);
            let aw = _mm512_set1_ps(*a1.add(r));
            c10[r] = _mm512_fmadd_ps(aw, b0, c10[r]);
            c11[r] = _mm512_fmadd_ps(aw, b1, c11[r]);
        }
    }
    for r in 0..MR {
        _mm512_storeu_ps(acc[0][r].as_mut_ptr(), c00[r]);
        _mm512_storeu_ps(acc[1][r].as_mut_ptr(), c01[r]);
        _mm512_storeu_ps(acc[2][r].as_mut_ptr(), c10[r]);
        _mm512_storeu_ps(acc[3][r].as_mut_ptr(), c11[r]);
    }
}

/// Ragged-row tail of [`microkernel_avx512_w832`]: one A panel against
/// two wide B panels. Same single-chain-per-element arithmetic.
///
/// # Safety
///
/// Requires AVX-512F at runtime; `pa` must hold `k*MR` elements and
/// `pb0`/`pb1` `k*WR` each.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn microkernel_avx512_w2(
    k: usize,
    pa: &[f32],
    pb0: &[f32],
    pb1: &[f32],
    acc0: &mut [[f32; WR]; MR],
    acc1: &mut [[f32; WR]; MR],
) {
    use std::arch::x86_64::*;
    const { assert!(NR == 8 && MR == 4 && WR == 16) };
    debug_assert!(pa.len() >= k * MR && pb0.len() >= k * WR && pb1.len() >= k * WR);
    let mut c0 = [_mm512_setzero_ps(); MR];
    let mut c1 = [_mm512_setzero_ps(); MR];
    let pa = pa.as_ptr();
    let pb0 = pb0.as_ptr();
    let pb1 = pb1.as_ptr();
    for kk in 0..k {
        let b0 = _mm512_loadu_ps(pb0.add(kk * WR));
        let b1 = _mm512_loadu_ps(pb1.add(kk * WR));
        let a = pa.add(kk * MR);
        for r in 0..MR {
            let av = _mm512_set1_ps(*a.add(r));
            c0[r] = _mm512_fmadd_ps(av, b0, c0[r]);
            c1[r] = _mm512_fmadd_ps(av, b1, c1[r]);
        }
    }
    for r in 0..MR {
        _mm512_storeu_ps(acc0[r].as_mut_ptr(), c0[r]);
        _mm512_storeu_ps(acc1[r].as_mut_ptr(), c1[r]);
    }
}

/// Ragged-column tail: two A panels against the final odd wide B panel.
/// Same single-chain-per-element arithmetic.
///
/// # Safety
///
/// Requires AVX-512F at runtime; `pa0`/`pa1` must each hold `k*MR`
/// elements and `pbw` `k*WR`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn microkernel_avx512_w8(
    k: usize,
    pa0: &[f32],
    pa1: &[f32],
    pbw: &[f32],
    acc0: &mut [[f32; WR]; MR],
    acc1: &mut [[f32; WR]; MR],
) {
    use std::arch::x86_64::*;
    const { assert!(NR == 8 && MR == 4 && WR == 16) };
    debug_assert!(pa0.len() >= k * MR && pa1.len() >= k * MR && pbw.len() >= k * WR);
    let mut c0 = [_mm512_setzero_ps(); MR];
    let mut c1 = [_mm512_setzero_ps(); MR];
    let pa0 = pa0.as_ptr();
    let pa1 = pa1.as_ptr();
    let pb = pbw.as_ptr();
    for kk in 0..k {
        let b0 = _mm512_loadu_ps(pb.add(kk * WR));
        let a0 = pa0.add(kk * MR);
        let a1 = pa1.add(kk * MR);
        for r in 0..MR {
            c0[r] = _mm512_fmadd_ps(_mm512_set1_ps(*a0.add(r)), b0, c0[r]);
            c1[r] = _mm512_fmadd_ps(_mm512_set1_ps(*a1.add(r)), b0, c1[r]);
        }
    }
    for r in 0..MR {
        _mm512_storeu_ps(acc0[r].as_mut_ptr(), c0[r]);
        _mm512_storeu_ps(acc1[r].as_mut_ptr(), c1[r]);
    }
}

/// Corner tail: one A panel against the final odd wide B panel. Same
/// single-chain-per-element arithmetic.
///
/// # Safety
///
/// Requires AVX-512F at runtime; `pa` must hold `k*MR` elements and
/// `pbw` `k*WR`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn microkernel_avx512_w(k: usize, pa: &[f32], pbw: &[f32], acc: &mut [[f32; WR]; MR]) {
    use std::arch::x86_64::*;
    const { assert!(NR == 8 && MR == 4 && WR == 16) };
    debug_assert!(pa.len() >= k * MR && pbw.len() >= k * WR);
    let mut c = [_mm512_setzero_ps(); MR];
    let pa = pa.as_ptr();
    let pb = pbw.as_ptr();
    for kk in 0..k {
        let b0 = _mm512_loadu_ps(pb.add(kk * WR));
        let a = pa.add(kk * MR);
        for r in 0..MR {
            c[r] = _mm512_fmadd_ps(_mm512_set1_ps(*a.add(r)), b0, c[r]);
        }
    }
    for r in 0..MR {
        _mm512_storeu_ps(acc[r].as_mut_ptr(), c[r]);
    }
}

/// Single-panel FMA kernel, `k` unrolled 2× into independent even/odd
/// accumulator chains (summed at the end) to cover FMA latency.
///
/// # Safety
///
/// Requires AVX+FMA at runtime; `pa`/`pb` must hold at least `k*MR` /
/// `k*NR` elements.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx,fma")]
unsafe fn microkernel_fma_1x(k: usize, pa: &[f32], pb: &[f32], acc: &mut [[f32; NR]; MR]) {
    use std::arch::x86_64::*;
    const { assert!(NR == 8 && MR == 4) };
    debug_assert!(pa.len() >= k * MR && pb.len() >= k * NR);
    let mut ce = [_mm256_setzero_ps(); MR];
    let mut co = [_mm256_setzero_ps(); MR];
    let pa = pa.as_ptr();
    let pb = pb.as_ptr();
    let mut kk = 0;
    while kk + 2 <= k {
        let b0 = _mm256_loadu_ps(pb.add(kk * NR));
        let b1 = _mm256_loadu_ps(pb.add((kk + 1) * NR));
        let a0 = pa.add(kk * MR);
        let a1 = pa.add((kk + 1) * MR);
        for r in 0..MR {
            ce[r] = _mm256_fmadd_ps(_mm256_broadcast_ss(&*a0.add(r)), b0, ce[r]);
            co[r] = _mm256_fmadd_ps(_mm256_broadcast_ss(&*a1.add(r)), b1, co[r]);
        }
        kk += 2;
    }
    if kk < k {
        let b0 = _mm256_loadu_ps(pb.add(kk * NR));
        let a0 = pa.add(kk * MR);
        for r in 0..MR {
            ce[r] = _mm256_fmadd_ps(_mm256_broadcast_ss(&*a0.add(r)), b0, ce[r]);
        }
    }
    for r in 0..MR {
        let sum = _mm256_add_ps(
            _mm256_add_ps(ce[r], co[r]),
            _mm256_loadu_ps(acc[r].as_ptr()),
        );
        _mm256_storeu_ps(acc[r].as_mut_ptr(), sum);
    }
}

/// Paired-panel FMA kernel: 8 independent ymm accumulator chains
/// (4 rows × 2 panels), one A broadcast feeding both panels per k step.
///
/// # Safety
///
/// Requires AVX+FMA at runtime; `pa` must hold `k*MR` elements and each
/// of `pb0`/`pb1` `k*NR`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx,fma")]
unsafe fn microkernel_fma_2x(
    k: usize,
    pa: &[f32],
    pb0: &[f32],
    pb1: &[f32],
    acc: &mut [[f32; 2 * NR]; MR],
) {
    use std::arch::x86_64::*;
    const { assert!(NR == 8 && MR == 4) };
    debug_assert!(pa.len() >= k * MR && pb0.len() >= k * NR && pb1.len() >= k * NR);
    let mut c0 = [_mm256_setzero_ps(); MR];
    let mut c1 = [_mm256_setzero_ps(); MR];
    let pa = pa.as_ptr();
    let p0 = pb0.as_ptr();
    let p1 = pb1.as_ptr();
    for kk in 0..k {
        let b0 = _mm256_loadu_ps(p0.add(kk * NR));
        let b1 = _mm256_loadu_ps(p1.add(kk * NR));
        let a = pa.add(kk * MR);
        for r in 0..MR {
            let av = _mm256_broadcast_ss(&*a.add(r));
            c0[r] = _mm256_fmadd_ps(av, b0, c0[r]);
            c1[r] = _mm256_fmadd_ps(av, b1, c1[r]);
        }
    }
    for r in 0..MR {
        _mm256_storeu_ps(acc[r].as_mut_ptr(), c0[r]);
        _mm256_storeu_ps(acc[r].as_mut_ptr().add(NR), c1[r]);
    }
}

/// Paired-panel AVX-512 kernel: each accumulator row is one zmm holding
/// both panels' 8-lane halves, so a k step is two 256-bit loads, one
/// 128-lane shuffle, and four zmm FMAs for 128 flops. The k loop is
/// unrolled 2× into independent even/odd chains (8 zmm accumulators,
/// summed at the end) so FMA latency never serializes a chain, and dual
/// 512-bit FMA ports are kept fed where present.
///
/// # Safety
///
/// Requires AVX-512F at runtime; `pa` must hold `k*MR` elements and each
/// of `pb0`/`pb1` `k*NR`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn microkernel_avx512_2x(
    k: usize,
    pa: &[f32],
    pb0: &[f32],
    pb1: &[f32],
    acc: &mut [[f32; 2 * NR]; MR],
) {
    use std::arch::x86_64::*;
    const { assert!(NR == 8 && MR == 4) };
    debug_assert!(pa.len() >= k * MR && pb0.len() >= k * NR && pb1.len() >= k * NR);
    let mut ce = [_mm512_setzero_ps(); MR];
    let mut co = [_mm512_setzero_ps(); MR];
    let pa = pa.as_ptr();
    let p0 = pb0.as_ptr();
    let p1 = pb1.as_ptr();
    // 0x44: lanes [0,1] of the first operand in the low half, lanes
    // [0,1] of the second in the high half.
    let pair = |pe: *const f32, po: *const f32| {
        _mm512_shuffle_f32x4(
            _mm512_castps256_ps512(_mm256_loadu_ps(pe)),
            _mm512_castps256_ps512(_mm256_loadu_ps(po)),
            0x44,
        )
    };
    let mut kk = 0;
    while kk + 2 <= k {
        let b0 = pair(p0.add(kk * NR), p1.add(kk * NR));
        let b1 = pair(p0.add((kk + 1) * NR), p1.add((kk + 1) * NR));
        let a0 = pa.add(kk * MR);
        let a1 = pa.add((kk + 1) * MR);
        for r in 0..MR {
            ce[r] = _mm512_fmadd_ps(_mm512_set1_ps(*a0.add(r)), b0, ce[r]);
            co[r] = _mm512_fmadd_ps(_mm512_set1_ps(*a1.add(r)), b1, co[r]);
        }
        kk += 2;
    }
    if kk < k {
        let b0 = pair(p0.add(kk * NR), p1.add(kk * NR));
        let a0 = pa.add(kk * MR);
        for r in 0..MR {
            ce[r] = _mm512_fmadd_ps(_mm512_set1_ps(*a0.add(r)), b0, ce[r]);
        }
    }
    for r in 0..MR {
        _mm512_storeu_ps(acc[r].as_mut_ptr(), _mm512_add_ps(ce[r], co[r]));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a.at(&[i, kk]) * b.at(&[kk, j]);
                }
                out.set(&[i, j], acc);
            }
        }
        out
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.dims(), b.dims());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    fn det(a: &Tensor, b: &Tensor) -> Tensor {
        Gemm::new(a, b).policy(MathPolicy::Deterministic).run()
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Tensor::randn(&[5, 5], &mut rng);
        assert_close(&det(&a, &Tensor::eye(5)), &a, 1e-6);
        assert_close(&det(&Tensor::eye(5), &a), &a, 1e-6);
    }

    #[test]
    fn blocked_matches_naive_on_odd_sizes() {
        let mut rng = StdRng::seed_from_u64(2);
        for (m, k, n) in [(1, 1, 1), (3, 7, 5), (65, 3, 70), (130, 67, 2)] {
            let a = Tensor::randn(&[m, k], &mut rng);
            let b = Tensor::randn(&[k, n], &mut rng);
            assert_close(&det(&a, &b), &naive_matmul(&a, &b), 1e-3);
        }
    }

    #[test]
    fn packed_matches_reference_kernel() {
        let mut rng = StdRng::seed_from_u64(21);
        for (m, k, n) in [(4, 8, 8), (33, 17, 29), (70, 64, 66)] {
            let a = Tensor::randn(&[m, k], &mut rng);
            let b = Tensor::randn(&[k, n], &mut rng);
            // Same ascending-k accumulation order → bit-identical to the
            // PR-1 kernel on finite nonzero data.
            assert_eq!(det(&a, &b), reference_matmul(&a, &b));
        }
    }

    #[test]
    fn prepacked_operands_match_unpacked() {
        let mut rng = StdRng::seed_from_u64(22);
        let a = Tensor::randn(&[13, 27], &mut rng);
        let b = Tensor::randn(&[27, 19], &mut rng);
        let w = Tensor::randn(&[19, 27], &mut rng);
        // Under Deterministic, prepacking produces the same panels the
        // per-call pack would, so it is bit-transparent.
        let policy = MathPolicy::Deterministic;
        let base = Gemm::new(&a, &b).policy(policy).run();
        assert_eq!(
            Gemm::prepacked_a(&PackedA::pack(&a), &b)
                .policy(policy)
                .run(),
            base
        );
        assert_eq!(
            Gemm::prepacked_b(&a, &PackedB::pack(&b))
                .policy(policy)
                .run(),
            base
        );
        // pack_nt: w is [n, k], used as bᵀ.
        assert_eq!(
            Gemm::prepacked_b(&a, &PackedB::pack_nt(&w))
                .policy(policy)
                .run(),
            Gemm::new(&a, &w).transpose_b().policy(policy).run(),
        );
    }

    /// Under `Fast`, a prepacked B keeps the narrow layout (its wide
    /// counterpart is built per call only), so prepacked and per-call
    /// products may round differently — but both must stay within the
    /// fast-vs-oracle tolerance, and prepacked A (which shares the
    /// per-call layout) stays bit-transparent.
    #[test]
    fn prepacked_operands_track_fast_within_tolerance() {
        let mut rng = StdRng::seed_from_u64(23);
        let a = Tensor::randn(&[13, 27], &mut rng);
        let b = Tensor::randn(&[27, 19], &mut rng);
        let base = Gemm::new(&a, &b).policy(MathPolicy::Fast).run();
        assert_eq!(
            Gemm::prepacked_a(&PackedA::pack(&a), &b)
                .policy(MathPolicy::Fast)
                .run(),
            base
        );
        let via_pb = Gemm::prepacked_b(&a, &PackedB::pack(&b))
            .policy(MathPolicy::Fast)
            .run();
        let amax = a.data().iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let bmax = b.data().iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let tol = (16.0 * f32::EPSILON * amax * bmax * 27.0).max(1e-7);
        for (x, y) in via_pb.data().iter().zip(base.data()) {
            assert!((x - y).abs() <= tol, "{x} vs {y} (tol {tol})");
        }
    }

    #[test]
    fn transpose_involution() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Tensor::randn(&[4, 9], &mut rng);
        assert_eq!(transpose(&transpose(&a)), a);
    }

    #[test]
    fn blocked_transpose_matches_naive() {
        let mut rng = StdRng::seed_from_u64(31);
        for (m, n) in [(1, 1), (3, 95), (95, 3), (33, 70), (64, 64)] {
            let a = Tensor::randn(&[m, n], &mut rng);
            let t = transpose(&a);
            assert_eq!(t.dims(), &[n, m]);
            for i in 0..m {
                for j in 0..n {
                    assert_eq!(t.at(&[j, i]), a.at(&[i, j]));
                }
            }
        }
    }

    #[test]
    fn tn_and_nt_match_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = Tensor::randn(&[6, 4], &mut rng);
        let b = Tensor::randn(&[6, 5], &mut rng);
        assert_close(
            &Gemm::new(&a, &b).transpose_a().run(),
            &det(&transpose(&a), &b),
            1e-4,
        );

        let c = Tensor::randn(&[3, 8], &mut rng);
        let d = Tensor::randn(&[7, 8], &mut rng);
        assert_close(
            &Gemm::new(&c, &d).transpose_b().run(),
            &det(&c, &transpose(&d)),
            1e-4,
        );
    }

    #[test]
    fn try_run_reports_shape_errors() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        let err = Gemm::new(&a, &b)
            .op_name("matmul")
            .try_run()
            .expect_err("mismatched shapes");
        assert!(matches!(
            err,
            TensorError::ShapeMismatch { op: "matmul", .. }
        ));
        assert!(Gemm::new(&a, &b).transpose_a().try_run().is_err());
        assert!(Gemm::new(&a, &Tensor::zeros(&[4, 4]))
            .transpose_b()
            .try_run()
            .is_err());
        // Bias length must match the output row count.
        let bias = [0.0f32; 3];
        assert!(Gemm::new(&a, &Tensor::zeros(&[3, 5]))
            .epilogue(Epilogue::BiasRelu(&bias))
            .try_run()
            .is_err());
        // And succeed on valid shapes.
        let ok = Gemm::new(&a, &Tensor::zeros(&[3, 5]))
            .try_run()
            .expect("valid shapes");
        assert_eq!(ok.dims(), &[2, 5]);
    }

    #[test]
    fn deprecated_wrappers_still_work() {
        #![allow(deprecated)]
        let mut rng = StdRng::seed_from_u64(23);
        let a = Tensor::randn(&[5, 7], &mut rng);
        let b = Tensor::randn(&[7, 6], &mut rng);
        assert_eq!(matmul(&a, &b), Gemm::new(&a, &b).run());
        let bt = transpose(&b);
        assert_eq!(matmul_nt(&a, &bt), Gemm::new(&a, &bt).transpose_b().run());
        let at = transpose(&a);
        assert_eq!(matmul_tn(&at, &b), Gemm::new(&at, &b).transpose_a().run());
        assert!(try_matmul(&a, &a).is_err());
    }

    #[test]
    fn dot_matches_manual() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3]);
        assert_eq!(dot(&a, &b), 32.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch in matmul")]
    fn mismatched_matmul_panics() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        let _ = Gemm::new(&a, &b).op_name("matmul").run();
    }

    #[test]
    #[should_panic(expected = "cannot transpose a prepacked operand")]
    fn prepacked_transpose_rejected() {
        let pa = PackedA::pack(&Tensor::zeros(&[2, 2]));
        let b = Tensor::zeros(&[2, 2]);
        let _ = Gemm::prepacked_a(&pa, &b).transpose_a();
    }

    #[test]
    fn deterministic_never_selects_fma() {
        // The dispatch invariant behind the bit-identity guarantee.
        assert!(!selected_kernel(MathPolicy::Deterministic).uses_fma());
    }

    #[test]
    fn fast_tracks_oracle_within_tolerance() {
        let mut rng = StdRng::seed_from_u64(41);
        for (m, k, n) in [(1, 9, 1), (7, 31, 13), (64, 64, 64), (257, 40, 3)] {
            let a = Tensor::randn(&[m, k], &mut rng);
            let b = Tensor::randn(&[k, n], &mut rng);
            let oracle = det(&a, &b);
            let fast = Gemm::new(&a, &b).policy(MathPolicy::Fast).run();
            let tol = 1e-5 * (k as f32).sqrt().max(1.0) * 4.0;
            assert_close(&fast, &oracle, tol);
        }
    }

    #[test]
    fn fast_is_reproducible_across_thread_counts() {
        let mut rng = StdRng::seed_from_u64(42);
        let a = Tensor::randn(&[300, 120], &mut rng);
        let b = Tensor::randn(&[120, 130], &mut rng);
        let serial = Gemm::new(&a, &b).policy(MathPolicy::Fast).threads(1).run();
        for threads in [2, 3, 8] {
            assert_eq!(
                Gemm::new(&a, &b)
                    .policy(MathPolicy::Fast)
                    .threads(threads)
                    .run(),
                serial,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn epilogues_match_unfused_ops() {
        let mut rng = StdRng::seed_from_u64(43);
        for policy in [MathPolicy::Deterministic, MathPolicy::Fast] {
            let a = Tensor::randn(&[9, 17], &mut rng);
            let b = Tensor::randn(&[17, 21], &mut rng);
            let plain = Gemm::new(&a, &b).policy(policy).run();

            let relu = Gemm::new(&a, &b)
                .policy(policy)
                .epilogue(Epilogue::Relu)
                .run();
            for (&f, &p) in relu.data().iter().zip(plain.data()) {
                assert_eq!(f, p.max(0.0));
            }

            let bias: Vec<f32> = (0..9).map(|i| i as f32 - 4.0).collect();
            let fused = Gemm::new(&a, &b)
                .policy(policy)
                .epilogue(Epilogue::BiasRelu(&bias))
                .run();
            for i in 0..9 {
                for j in 0..21 {
                    let want = (plain.at(&[i, j]) + bias[i]).max(0.0);
                    assert_eq!(fused.at(&[i, j]), want);
                }
            }
        }
    }

    #[test]
    fn epilogue_bias_indexes_absolute_rows_across_bands() {
        // A product big enough to band across the pool: the per-row bias
        // must be indexed by absolute output row, not band-relative.
        let mut rng = StdRng::seed_from_u64(44);
        let (m, k, n) = (300, 120, 130);
        assert!(2 * m * k * n >= PAR_THRESHOLD);
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        let bias: Vec<f32> = (0..m).map(|i| (i as f32).sin() * 3.0).collect();
        let serial = Gemm::new(&a, &b)
            .epilogue(Epilogue::BiasRelu(&bias))
            .threads(1)
            .run();
        let banded = Gemm::new(&a, &b)
            .epilogue(Epilogue::BiasRelu(&bias))
            .threads(8)
            .run();
        assert_eq!(serial, banded);
    }

    #[test]
    fn int8_policy_runs_quantized_and_tracks_oracle() {
        let mut rng = StdRng::seed_from_u64(45);
        let a = Tensor::randn(&[12, 33], &mut rng);
        let b = Tensor::randn(&[33, 10], &mut rng);
        let oracle = det(&a, &b);
        let q = Gemm::new(&a, &b).policy(MathPolicy::Int8).run();
        // Per-tensor symmetric quantization: error per output element is
        // bounded by k * (|a|max·sb/2 + |b|max·sa/2 + sa·sb/4).
        let amax = a.data().iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let bmax = b.data().iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let (sa, sb) = (amax / 127.0, bmax / 127.0);
        let bound = 33.0 * (amax * sb / 2.0 + bmax * sa / 2.0 + sa * sb / 4.0) * 1.05;
        for (x, y) in q.data().iter().zip(oracle.data()) {
            assert!((x - y).abs() <= bound, "{x} vs {y} (bound {bound})");
        }
    }
}

#[cfg(test)]
mod par_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The pooled path (large product) must agree with the single-thread
    /// packed kernel bit-for-bit, including when rows don't divide evenly
    /// into MR panels or bands.
    #[test]
    fn parallel_matches_serial_exactly() {
        let mut rng = StdRng::seed_from_u64(77);
        for (m, k, n) in [(300, 120, 130), (257, 90, 101)] {
            assert!(
                2 * m * k * n >= PAR_THRESHOLD,
                "case too small to exercise the parallel path"
            );
            let a = Tensor::randn(&[m, k], &mut rng);
            let b = Tensor::randn(&[k, n], &mut rng);
            let serial = Gemm::new(&a, &b)
                .policy(MathPolicy::Deterministic)
                .threads(1)
                .run();
            for threads in [2, 3, 8] {
                assert_eq!(
                    Gemm::new(&a, &b)
                        .policy(MathPolicy::Deterministic)
                        .threads(threads)
                        .run(),
                    serial,
                    "threads={threads}"
                );
            }
            // And the packed kernel still agrees with the PR-1 kernel.
            assert_eq!(serial, reference_matmul(&a, &b));
        }
    }
}
