//! Dense linear algebra: blocked matmul and transposes.

use crate::Tensor;

/// Cache-blocking tile size for [`matmul`]. 64×64 f32 tiles (16 KiB) fit
/// comfortably in L1 on every machine this project targets.
const TILE: usize = 64;

/// Work threshold (in multiply-adds) above which [`matmul`] fans the
/// output rows across threads. Below it, thread spawn costs dominate.
const PAR_THRESHOLD: usize = 1 << 21;

/// Matrix product `a @ b` for `a: [m, k]`, `b: [k, n]`.
///
/// Uses i-k-j loop order over cache-sized tiles, which keeps the innermost
/// loop a contiguous saxpy over the output row.
///
/// # Panics
///
/// Panics unless both inputs are rank 2 with compatible inner dimensions.
///
/// # Example
///
/// ```
/// use tensor::{Tensor, linalg::matmul};
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// let b = Tensor::from_vec(vec![0.0, 1.0, 1.0, 0.0], &[2, 2]);
/// assert_eq!(matmul(&a, &b).data(), &[2.0, 1.0, 4.0, 3.0]);
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "matmul lhs must be a matrix");
    assert_eq!(b.shape().rank(), 2, "matmul rhs must be a matrix");
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(
        k, k2,
        "matmul inner dimension mismatch: [{m}, {k}] @ [{k2}, {n}]"
    );

    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();

    // Large products fan output-row bands across threads; each band is an
    // independent serial matmul, so results are bit-identical to the
    // single-threaded path. The band count honours NDPIPE_THREADS.
    let threads = crate::configured_threads();
    if m * k * n >= PAR_THRESHOLD && threads > 1 && m >= 2 {
        let bands = threads.min(m);
        let rows_per_band = m.div_ceil(bands);
        let mut chunks: Vec<&mut [f32]> = out.chunks_mut(rows_per_band * n).collect();
        crossbeam::thread::scope(|scope| {
            for (band, chunk) in chunks.iter_mut().enumerate() {
                let i_lo = band * rows_per_band;
                let chunk: &mut [f32] = chunk;
                scope.spawn(move |_| {
                    matmul_rows(ad, bd, chunk, i_lo, i_lo + chunk.len() / n, k, n);
                });
            }
        })
        .expect("matmul worker panicked");
    } else {
        matmul_rows(ad, bd, &mut out, 0, m, k, n);
    }
    Tensor::from_vec(out, &[m, n])
}

/// Serial tiled kernel over output rows `i_lo..i_hi`; `out` holds exactly
/// those rows.
fn matmul_rows(ad: &[f32], bd: &[f32], out: &mut [f32], i_lo: usize, i_hi: usize, k: usize, n: usize) {
    for i0 in (i_lo..i_hi).step_by(TILE) {
        let i1 = (i0 + TILE).min(i_hi);
        for k0 in (0..k).step_by(TILE) {
            let k1 = (k0 + TILE).min(k);
            for j0 in (0..n).step_by(TILE) {
                let j1 = (j0 + TILE).min(n);
                for i in i0..i1 {
                    for kk in k0..k1 {
                        let aik = ad[i * k + kk];
                        if aik == 0.0 {
                            continue;
                        }
                        let brow = &bd[kk * n + j0..kk * n + j1];
                        let o_base = (i - i_lo) * n;
                        let orow = &mut out[o_base + j0..o_base + j1];
                        for (o, &bv) in orow.iter_mut().zip(brow) {
                            *o += aik * bv;
                        }
                    }
                }
            }
        }
    }
}

/// Transpose of a `[m, n]` matrix.
///
/// # Panics
///
/// Panics unless the input is rank 2.
pub fn transpose(a: &Tensor) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "transpose needs a matrix");
    let (m, n) = (a.dims()[0], a.dims()[1]);
    let ad = a.data();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = ad[i * n + j];
        }
    }
    Tensor::from_vec(out, &[n, m])
}

/// `aᵀ @ b` without materializing the transpose: `a: [k, m]`, `b: [k, n]`.
///
/// This is the shape that appears in the weight gradient of a linear layer
/// (`dW = xᵀ @ dy`).
///
/// # Panics
///
/// Panics unless both inputs are rank 2 with matching leading dimension.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "matmul_tn lhs must be a matrix");
    assert_eq!(b.shape().rank(), 2, "matmul_tn rhs must be a matrix");
    let (k, m) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul_tn leading dimension mismatch");
    let ad = a.data();
    let bd = b.data();
    let mut out = vec![0.0f32; m * n];
    for kk in 0..k {
        for i in 0..m {
            let aki = ad[kk * m + i];
            if aki == 0.0 {
                continue;
            }
            let brow = &bd[kk * n..kk * n + n];
            let orow = &mut out[i * n..i * n + n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += aki * bv;
            }
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// `a @ bᵀ` without materializing the transpose: `a: [m, k]`, `b: [n, k]`.
///
/// This is the shape of the input gradient of a linear layer
/// (`dx = dy @ Wᵀ`).
///
/// # Panics
///
/// Panics unless both inputs are rank 2 with matching trailing dimension.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "matmul_nt lhs must be a matrix");
    assert_eq!(b.shape().rank(), 2, "matmul_nt rhs must be a matrix");
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (n, k2) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul_nt trailing dimension mismatch");
    let ad = a.data();
    let bd = b.data();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let arow = &ad[i * k..i * k + k];
        for j in 0..n {
            let brow = &bd[j * k..j * k + k];
            let mut acc = 0.0f32;
            for (&av, &bv) in arow.iter().zip(brow) {
                acc += av * bv;
            }
            out[i * n + j] = acc;
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// Dot product of two equal-length rank-1 tensors.
///
/// # Panics
///
/// Panics unless both inputs are rank 1 of equal length.
pub fn dot(a: &Tensor, b: &Tensor) -> f32 {
    assert_eq!(a.shape().rank(), 1, "dot lhs must be a vector");
    assert_eq!(b.shape().rank(), 1, "dot rhs must be a vector");
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.data().iter().zip(b.data()).map(|(&x, &y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a.at(&[i, kk]) * b.at(&[kk, j]);
                }
                out.set(&[i, j], acc);
            }
        }
        out
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.dims(), b.dims());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Tensor::randn(&[5, 5], &mut rng);
        assert_close(&matmul(&a, &Tensor::eye(5)), &a, 1e-6);
        assert_close(&matmul(&Tensor::eye(5), &a), &a, 1e-6);
    }

    #[test]
    fn blocked_matches_naive_on_odd_sizes() {
        let mut rng = StdRng::seed_from_u64(2);
        for (m, k, n) in [(1, 1, 1), (3, 7, 5), (65, 3, 70), (130, 67, 2)] {
            let a = Tensor::randn(&[m, k], &mut rng);
            let b = Tensor::randn(&[k, n], &mut rng);
            assert_close(&matmul(&a, &b), &naive_matmul(&a, &b), 1e-3);
        }
    }

    #[test]
    fn transpose_involution() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Tensor::randn(&[4, 9], &mut rng);
        assert_eq!(transpose(&transpose(&a)), a);
    }

    #[test]
    fn tn_and_nt_match_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = Tensor::randn(&[6, 4], &mut rng);
        let b = Tensor::randn(&[6, 5], &mut rng);
        assert_close(&matmul_tn(&a, &b), &matmul(&transpose(&a), &b), 1e-4);

        let c = Tensor::randn(&[3, 8], &mut rng);
        let d = Tensor::randn(&[7, 8], &mut rng);
        assert_close(&matmul_nt(&c, &d), &matmul(&c, &transpose(&d)), 1e-4);
    }

    #[test]
    fn dot_matches_manual() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3]);
        assert_eq!(dot(&a, &b), 32.0);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn mismatched_matmul_panics() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        let _ = matmul(&a, &b);
    }
}

#[cfg(test)]
mod par_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The parallel path (large product) must agree with the serial
    /// kernel bit-for-bit, including when rows don't divide evenly.
    #[test]
    fn parallel_matches_serial_exactly() {
        let mut rng = StdRng::seed_from_u64(77);
        for (m, k, n) in [(300, 120, 130), (257, 90, 101)] {
            assert!(m * k * n >= PAR_THRESHOLD, "case too small to exercise the parallel path");
            let a = Tensor::randn(&[m, k], &mut rng);
            let b = Tensor::randn(&[k, n], &mut rng);
            let fast = matmul(&a, &b);
            let mut serial = vec![0.0f32; m * n];
            matmul_rows(a.data(), b.data(), &mut serial, 0, m, k, n);
            assert_eq!(fast.data(), serial.as_slice());
        }
    }
}
