//! Dense linear algebra: packed-panel GEMM, transposes, dot.
//!
//! # Compute kernel
//!
//! All three matrix products ([`matmul`], [`matmul_tn`], [`matmul_nt`])
//! run through one BLIS-style packed kernel:
//!
//! 1. B is packed once per call into `NR`-column k-major micro-panels
//!    (thread-local scratch, or a cached [`PackedB`] for frozen weights).
//! 2. The `m` output rows are split into bands of whole `MR`-row panels;
//!    bands are claimed dynamically from the shared [`crate::pool`].
//! 3. Each band packs its rows of A (k-major micro-panels, or slices a
//!    prepacked [`PackedA`]) and calls the register-blocked
//!    [`microkernel`]: an `MR×NR` f32 accumulator tile updated by an
//!    unrolled multiply-add over `k`, which LLVM auto-vectorizes for the
//!    baseline target.
//!
//! Transposed operands are absorbed into the packing strides
//! (see [`crate::pack::MatRef`]) — `matmul_tn`/`matmul_nt` never
//! materialize a transpose and scale across the pool exactly like
//! `matmul`.
//!
//! ## Determinism
//!
//! Every output element is accumulated over `k` in ascending order by the
//! same serial microkernel regardless of which thread computes its band,
//! and bands never share output cells — so results are bit-identical at
//! any `NDPIPE_THREADS` value. Band *geometry* only affects scheduling,
//! not values.

use crate::pack::{self, pack_a_panels, pack_b_panels, MatRef, PackedA, PackedB, MR, NR};
use crate::pool::{self, PoolError};
use crate::{Tensor, TensorError};
use std::sync::{Mutex, OnceLock};

/// Cache-blocking tile size for [`reference_matmul`]. 64×64 f32 tiles
/// (16 KiB) fit comfortably in L1 on every machine this project targets.
const TILE: usize = 64;

/// Work threshold (in multiply-adds) above which the GEMM driver fans
/// output-row bands across the worker pool. Below it, submission overhead
/// dominates the kernel itself.
const PAR_THRESHOLD: usize = 1 << 21;

/// Cached handle for the `ndpipe_gemm_flops_total` counter so the hot
/// path pays one relaxed atomic add, not a registry lookup.
fn flops_counter() -> &'static telemetry::Counter {
    static FLOPS: OnceLock<telemetry::Counter> = OnceLock::new();
    FLOPS.get_or_init(|| {
        telemetry::global().counter(
            "ndpipe_gemm_flops_total",
            "f32 floating-point operations executed by the packed GEMM driver",
        )
    })
}

/// Matrix product `a @ b` for `a: [m, k]`, `b: [k, n]`.
///
/// Runs the packed-panel kernel with the [`crate::configured_threads`]
/// budget; see the module docs for the kernel and determinism story.
///
/// # Panics
///
/// Panics unless both inputs are rank 2 with compatible inner dimensions,
/// or if a pool worker panics (see [`try_matmul`] for the typed-error
/// form).
///
/// # Example
///
/// ```
/// use tensor::{Tensor, linalg::matmul};
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// let b = Tensor::from_vec(vec![0.0, 1.0, 1.0, 0.0], &[2, 2]);
/// assert_eq!(matmul(&a, &b).data(), &[2.0, 1.0, 4.0, 3.0]);
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    matmul_with_threads(a, b, crate::configured_threads())
}

/// [`matmul`] with an explicit thread budget (determinism tests, benches).
///
/// # Panics
///
/// Same contract as [`matmul`].
pub fn matmul_with_threads(a: &Tensor, b: &Tensor, threads: usize) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "matmul lhs must be a matrix");
    assert_eq!(b.shape().rank(), 2, "matmul rhs must be a matrix");
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(
        k, k2,
        "matmul inner dimension mismatch: [{m}, {k}] @ [{k2}, {n}]"
    );
    unwrap_gemm("matmul", gemm(m, n, k, ASrc::nn(a), BSrc::nn(b), threads))
}

/// Fallible [`matmul`]: shape errors and pool-worker failures come back
/// as [`TensorError`] instead of panics.
///
/// # Errors
///
/// [`TensorError::ShapeMismatch`] on rank/dimension mismatch,
/// [`TensorError::WorkerPanicked`] if a pool task panicked.
pub fn try_matmul(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let (m, k, n) = check_shapes("matmul", a, b, Layout::Nn)?;
    gemm(
        m,
        n,
        k,
        ASrc::nn(a),
        BSrc::nn(b),
        crate::configured_threads(),
    )
    .map_err(|e| worker_err("matmul", e))
}

/// `aᵀ @ b` without materializing the transpose: `a: [k, m]`, `b: [k, n]`.
///
/// This is the shape that appears in the weight gradient of a linear layer
/// (`dW = xᵀ @ dy`). Runs the same packed kernel/pool as [`matmul`].
///
/// # Panics
///
/// Panics unless both inputs are rank 2 with matching leading dimension,
/// or if a pool worker panics.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    matmul_tn_with_threads(a, b, crate::configured_threads())
}

/// [`matmul_tn`] with an explicit thread budget.
///
/// # Panics
///
/// Same contract as [`matmul_tn`].
pub fn matmul_tn_with_threads(a: &Tensor, b: &Tensor, threads: usize) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "matmul_tn lhs must be a matrix");
    assert_eq!(b.shape().rank(), 2, "matmul_tn rhs must be a matrix");
    let (k, m) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul_tn leading dimension mismatch");
    unwrap_gemm(
        "matmul_tn",
        gemm(m, n, k, ASrc::tn(a), BSrc::nn(b), threads),
    )
}

/// Fallible [`matmul_tn`].
///
/// # Errors
///
/// Same contract as [`try_matmul`].
pub fn try_matmul_tn(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let (m, k, n) = check_shapes("matmul_tn", a, b, Layout::Tn)?;
    gemm(
        m,
        n,
        k,
        ASrc::tn(a),
        BSrc::nn(b),
        crate::configured_threads(),
    )
    .map_err(|e| worker_err("matmul_tn", e))
}

/// `a @ bᵀ` without materializing the transpose: `a: [m, k]`, `b: [n, k]`.
///
/// This is the shape of a linear layer's forward pass and input gradient
/// (`y = x @ Wᵀ`, `dx = dy @ W` reads W naturally). Runs the same packed
/// kernel/pool as [`matmul`].
///
/// # Panics
///
/// Panics unless both inputs are rank 2 with matching trailing dimension,
/// or if a pool worker panics.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    matmul_nt_with_threads(a, b, crate::configured_threads())
}

/// [`matmul_nt`] with an explicit thread budget.
///
/// # Panics
///
/// Same contract as [`matmul_nt`].
pub fn matmul_nt_with_threads(a: &Tensor, b: &Tensor, threads: usize) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "matmul_nt lhs must be a matrix");
    assert_eq!(b.shape().rank(), 2, "matmul_nt rhs must be a matrix");
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (n, k2) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul_nt trailing dimension mismatch");
    unwrap_gemm(
        "matmul_nt",
        gemm(m, n, k, ASrc::nn(a), BSrc::nt(b), threads),
    )
}

/// Fallible [`matmul_nt`].
///
/// # Errors
///
/// Same contract as [`try_matmul`].
pub fn try_matmul_nt(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let (m, k, n) = check_shapes("matmul_nt", a, b, Layout::Nt)?;
    gemm(
        m,
        n,
        k,
        ASrc::nn(a),
        BSrc::nt(b),
        crate::configured_threads(),
    )
    .map_err(|e| worker_err("matmul_nt", e))
}

/// `pa @ b` with a prepacked left operand (`pa: [m, k]`, `b: [k, n]`):
/// the per-call A-pack pass is skipped entirely. Used by conv2d, which
/// multiplies the same weight matrix against every image's im2col panels.
///
/// # Panics
///
/// Panics on inner-dimension mismatch or if a pool worker panics.
pub fn matmul_packed_a(pa: &PackedA, b: &Tensor) -> Tensor {
    matmul_packed_a_with_threads(pa, b, crate::configured_threads())
}

/// [`matmul_packed_a`] with an explicit thread budget.
///
/// # Panics
///
/// Same contract as [`matmul_packed_a`].
pub fn matmul_packed_a_with_threads(pa: &PackedA, b: &Tensor, threads: usize) -> Tensor {
    assert_eq!(b.shape().rank(), 2, "matmul_packed_a rhs must be a matrix");
    let (m, k) = pa.dims();
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul_packed_a inner dimension mismatch");
    unwrap_gemm(
        "matmul_packed_a",
        gemm(m, n, k, ASrc::Packed(pa), BSrc::nn(b), threads),
    )
}

/// `a @ B` with a prepacked right operand (`a: [m, k]`, `B: [k, n]`):
/// the per-call B-pack pass is skipped entirely. This is the frozen-layer
/// fast path — a feature extractor packs its weights once
/// ([`PackedB::pack_nt`]) and every batch reuses the panels.
///
/// # Panics
///
/// Panics on inner-dimension mismatch or if a pool worker panics.
pub fn matmul_packed_b(a: &Tensor, pb: &PackedB) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "matmul_packed_b lhs must be a matrix");
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = pb.dims();
    assert_eq!(k, k2, "matmul_packed_b inner dimension mismatch");
    unwrap_gemm(
        "matmul_packed_b",
        gemm(
            m,
            n,
            k,
            ASrc::nn(a),
            BSrc::Packed(pb),
            crate::configured_threads(),
        ),
    )
}

/// Transpose of a `[m, n]` matrix, tiled so both the source reads and the
/// destination writes stay within cache lines of a 32×32 block (the naive
/// column-scatter loop misses on every store for wide matrices).
///
/// # Panics
///
/// Panics unless the input is rank 2.
pub fn transpose(a: &Tensor) -> Tensor {
    const TR_TILE: usize = 32;
    assert_eq!(a.shape().rank(), 2, "transpose needs a matrix");
    let (m, n) = (a.dims()[0], a.dims()[1]);
    let ad = a.data();
    let mut out = vec![0.0f32; m * n];
    for i0 in (0..m).step_by(TR_TILE) {
        let i1 = (i0 + TR_TILE).min(m);
        for j0 in (0..n).step_by(TR_TILE) {
            let j1 = (j0 + TR_TILE).min(n);
            for i in i0..i1 {
                for j in j0..j1 {
                    out[j * m + i] = ad[i * n + j];
                }
            }
        }
    }
    Tensor::from_vec(out, &[n, m])
}

/// Dot product of two equal-length rank-1 tensors.
///
/// # Panics
///
/// Panics unless both inputs are rank 1 of equal length.
pub fn dot(a: &Tensor, b: &Tensor) -> f32 {
    assert_eq!(a.shape().rank(), 1, "dot lhs must be a vector");
    assert_eq!(b.shape().rank(), 1, "dot rhs must be a vector");
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.data().iter().zip(b.data()).map(|(&x, &y)| x * y).sum()
}

/// The pre-packing serial kernel (i-k-j saxpy over 64×64 tiles), kept as
/// the benchmark baseline and test oracle for the packed driver.
///
/// # Panics
///
/// Panics unless both inputs are rank 2 with compatible inner dimensions.
pub fn reference_matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "matmul lhs must be a matrix");
    assert_eq!(b.shape().rank(), 2, "matmul rhs must be a matrix");
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul inner dimension mismatch");
    let mut out = vec![0.0f32; m * n];
    matmul_rows(a.data(), b.data(), &mut out, 0, m, k, n);
    Tensor::from_vec(out, &[m, n])
}

/// Serial tiled kernel over output rows `i_lo..i_hi`; `out` holds exactly
/// those rows. This was the PR-1 production kernel; see
/// [`reference_matmul`].
fn matmul_rows(
    ad: &[f32],
    bd: &[f32],
    out: &mut [f32],
    i_lo: usize,
    i_hi: usize,
    k: usize,
    n: usize,
) {
    for i0 in (i_lo..i_hi).step_by(TILE) {
        let i1 = (i0 + TILE).min(i_hi);
        for k0 in (0..k).step_by(TILE) {
            let k1 = (k0 + TILE).min(k);
            for j0 in (0..n).step_by(TILE) {
                let j1 = (j0 + TILE).min(n);
                for i in i0..i1 {
                    for kk in k0..k1 {
                        let aik = ad[i * k + kk];
                        if aik == 0.0 {
                            continue;
                        }
                        let brow = &bd[kk * n + j0..kk * n + j1];
                        let o_base = (i - i_lo) * n;
                        let orow = &mut out[o_base + j0..o_base + j1];
                        for (o, &bv) in orow.iter_mut().zip(brow) {
                            *o += aik * bv;
                        }
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Packed GEMM driver
// ---------------------------------------------------------------------------

/// Left-operand source for the driver: a strided view to pack per band, or
/// panels packed ahead of time.
enum ASrc<'a> {
    Mat(MatRef<'a>),
    Packed(&'a PackedA),
}

impl<'a> ASrc<'a> {
    fn nn(a: &'a Tensor) -> Self {
        ASrc::Mat(MatRef::row_major(a.data(), a.dims()[0], a.dims()[1]))
    }

    /// View `aᵀ` of a `[k, m]` buffer as the `[m, k]` left operand.
    fn tn(a: &'a Tensor) -> Self {
        ASrc::Mat(MatRef::transposed(a.data(), a.dims()[1], a.dims()[0]))
    }
}

/// Right-operand source: a strided view to pack once per call, or a cached
/// [`PackedB`].
enum BSrc<'a> {
    Mat(MatRef<'a>),
    Packed(&'a PackedB),
}

impl<'a> BSrc<'a> {
    fn nn(b: &'a Tensor) -> Self {
        BSrc::Mat(MatRef::row_major(b.data(), b.dims()[0], b.dims()[1]))
    }

    /// View `bᵀ` of an `[n, k]` buffer as the `[k, n]` right operand.
    fn nt(b: &'a Tensor) -> Self {
        BSrc::Mat(MatRef::transposed(b.data(), b.dims()[1], b.dims()[0]))
    }
}

fn unwrap_gemm(op: &str, r: Result<Tensor, PoolError>) -> Tensor {
    r.unwrap_or_else(|e| panic!("{op}: {e}"))
}

fn worker_err(op: &'static str, e: PoolError) -> TensorError {
    TensorError::WorkerPanicked {
        op,
        msg: e.to_string(),
    }
}

enum Layout {
    Nn,
    Tn,
    Nt,
}

/// Shape validation for the fallible entry points; returns `(m, k, n)`.
fn check_shapes(
    op: &'static str,
    a: &Tensor,
    b: &Tensor,
    layout: Layout,
) -> Result<(usize, usize, usize), TensorError> {
    let mismatch = || TensorError::ShapeMismatch {
        op,
        lhs: a.dims().to_vec(),
        rhs: b.dims().to_vec(),
    };
    if a.shape().rank() != 2 || b.shape().rank() != 2 {
        return Err(mismatch());
    }
    let (ad0, ad1) = (a.dims()[0], a.dims()[1]);
    let (bd0, bd1) = (b.dims()[0], b.dims()[1]);
    let (m, k, k2, n) = match layout {
        Layout::Nn => (ad0, ad1, bd0, bd1),
        Layout::Tn => (ad1, ad0, bd0, bd1),
        Layout::Nt => (ad0, ad1, bd1, bd0),
    };
    if k != k2 {
        return Err(mismatch());
    }
    Ok((m, k, n))
}

/// The shared packed-panel driver behind every matrix product.
fn gemm(
    m: usize,
    n: usize,
    k: usize,
    a: ASrc<'_>,
    b: BSrc<'_>,
    threads: usize,
) -> Result<Tensor, PoolError> {
    if telemetry::enabled() {
        flops_counter().add(2 * (m * n * k) as u64);
    }
    let mut out = vec![0.0f32; m * n];
    match b {
        BSrc::Packed(pb) => gemm_packed_b(m, n, k, &a, &pb.buf, threads, &mut out)?,
        BSrc::Mat(mb) => pack::with_pack_b(|buf| {
            pack_b_panels(&mb, buf);
            gemm_packed_b(m, n, k, &a, buf, threads, &mut out)
        })?,
    }
    Ok(Tensor::from_vec(out, &[m, n]))
}

/// Dispatches row bands over the pool (or runs one serial band).
fn gemm_packed_b(
    m: usize,
    n: usize,
    k: usize,
    a: &ASrc<'_>,
    pb: &[f32],
    threads: usize,
    out: &mut [f32],
) -> Result<(), PoolError> {
    let m_panels = m.div_ceil(MR);
    let threads = if 2 * m * n * k >= PAR_THRESHOLD {
        threads.max(1)
    } else {
        1
    };
    if threads == 1 || m_panels == 1 {
        gemm_band(a, 0, m, k, n, pb, out);
        return Ok(());
    }
    // Split whole MR-panels into bands; a couple of bands per thread lets
    // the pool's chunked self-scheduling absorb load imbalance.
    let band_target = (threads * 2).min(m_panels);
    let panels_per_band = m_panels.div_ceil(band_target);
    let rows_per_band = panels_per_band * MR;
    let bands: Vec<Mutex<(usize, &mut [f32])>> = out
        .chunks_mut(rows_per_band * n)
        .enumerate()
        .map(|(i, c)| Mutex::new((i * rows_per_band, c)))
        .collect();
    pool::run(threads, bands.len(), &|t| {
        if let Some(slot) = bands.get(t) {
            let mut guard = slot
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let (r0, band_out) = &mut *guard;
            let rows = band_out.len() / n;
            gemm_band(a, *r0, *r0 + rows, k, n, pb, band_out);
        }
    })
}

/// Serial prepacked-A GEMM writing into `out` (length `m * n`), where
/// `b_data` is a row-major `[k, n]` buffer. This is conv2d's per-image
/// inner kernel: the image's im2col panels are packed into thread-local
/// scratch and multiplied against the packed weight matrix without any
/// allocation.
pub(crate) fn matmul_packed_a_into(pa: &PackedA, b_data: &[f32], n: usize, out: &mut [f32]) {
    let (m, k) = pa.dims();
    debug_assert_eq!(b_data.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if telemetry::enabled() {
        flops_counter().add(2 * (m * n * k) as u64);
    }
    pack::with_pack_b(|buf| {
        pack_b_panels(&MatRef::row_major(b_data, k, n), buf);
        gemm_panels(&pa.buf, m, k, n, buf, out);
    });
}

/// Serial packed kernel over output rows `r0..r1` (MR-panel aligned);
/// `out` holds exactly those rows.
fn gemm_band(a: &ASrc<'_>, r0: usize, r1: usize, k: usize, n: usize, pb: &[f32], out: &mut [f32]) {
    match a {
        ASrc::Packed(pa) => {
            debug_assert_eq!(r0 % MR, 0);
            let p0 = r0 / MR;
            let p1 = r1.div_ceil(MR);
            gemm_panels(&pa.buf[p0 * MR * k..p1 * MR * k], r1 - r0, k, n, pb, out);
        }
        ASrc::Mat(mat) => pack::with_pack_a(|buf| {
            pack_a_panels(mat, r0, r1, buf);
            gemm_panels(buf, r1 - r0, k, n, pb, out);
        }),
    }
}

/// Multiplies packed A panels (covering `rows` valid rows) against packed
/// B panels, masking the write-back at the edges.
fn gemm_panels(pa: &[f32], rows: usize, k: usize, n: usize, pb: &[f32], out: &mut [f32]) {
    let n_panels = n.div_ceil(NR);
    for (p, pa_panel) in pa.chunks_exact(MR * k).enumerate() {
        let row0 = p * MR;
        if row0 >= rows {
            break;
        }
        let tile_rows = MR.min(rows - row0);
        for jp in 0..n_panels {
            let pb_panel = &pb[jp * NR * k..(jp + 1) * NR * k];
            let mut acc = [[0.0f32; NR]; MR];
            microkernel(k, pa_panel, pb_panel, &mut acc);
            let col0 = jp * NR;
            let tile_cols = NR.min(n - col0);
            for (r, acc_row) in acc.iter().enumerate().take(tile_rows) {
                let dst = &mut out[(row0 + r) * n + col0..(row0 + r) * n + col0 + tile_cols];
                dst.copy_from_slice(&acc_row[..tile_cols]);
            }
        }
    }
}

/// Register-blocked micro-tile update: `acc += A_panel @ B_panel` where
/// `A_panel` is `MR×k` (k-major) and `B_panel` is `k×NR`.
///
/// Dispatches once (cached CPUID probe) to an AVX variant on x86-64
/// hosts that support it, else to the portable auto-vectorized loop.
/// Both variants perform the *same* IEEE mul-then-add per element in the
/// same ascending-k order — the AVX path deliberately uses separate
/// multiply and add (no FMA contraction) — so results are bit-identical
/// across hosts and dispatch decisions.
#[inline(always)]
fn microkernel(k: usize, pa: &[f32], pb: &[f32], acc: &mut [[f32; NR]; MR]) {
    #[cfg(target_arch = "x86_64")]
    if avx_available() {
        // Safety: AVX support was verified at runtime, and the panel
        // slices are sized `k*MR` / `k*NR` by the packers.
        unsafe { microkernel_avx(k, pa, pb, acc) };
        return;
    }
    microkernel_portable(k, pa, pb, acc);
}

/// Portable fallback: fixed-size array arithmetic shaped for LLVM
/// auto-vectorization — NR independent f32 multiply-adds per A broadcast.
#[inline(always)]
fn microkernel_portable(k: usize, pa: &[f32], pb: &[f32], acc: &mut [[f32; NR]; MR]) {
    let (a_steps, _) = pa.as_chunks::<MR>();
    let (b_steps, _) = pb.as_chunks::<NR>();
    for (a_step, b_step) in a_steps.iter().zip(b_steps).take(k) {
        for (&av, acc_row) in a_step.iter().zip(acc.iter_mut()) {
            for (c, &bv) in acc_row.iter_mut().zip(b_step) {
                *c += av * bv;
            }
        }
    }
}

/// Cached runtime probe for the AVX microkernel.
#[cfg(target_arch = "x86_64")]
fn avx_available() -> bool {
    static AVX: OnceLock<bool> = OnceLock::new();
    *AVX.get_or_init(|| std::arch::is_x86_feature_detected!("avx"))
}

/// AVX micro-tile update: each accumulator row is one 8-lane `ymm`
/// register (`NR == 8`), updated with separate `vmulps`/`vaddps` so the
/// rounding matches the portable kernel exactly.
///
/// # Safety
///
/// Requires AVX at runtime; `pa`/`pb` must hold at least `k*MR` / `k*NR`
/// elements.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn microkernel_avx(k: usize, pa: &[f32], pb: &[f32], acc: &mut [[f32; NR]; MR]) {
    use std::arch::x86_64::*;
    const { assert!(NR == 8 && MR == 4) };
    debug_assert!(pa.len() >= k * MR && pb.len() >= k * NR);
    let mut c0 = _mm256_loadu_ps(acc[0].as_ptr());
    let mut c1 = _mm256_loadu_ps(acc[1].as_ptr());
    let mut c2 = _mm256_loadu_ps(acc[2].as_ptr());
    let mut c3 = _mm256_loadu_ps(acc[3].as_ptr());
    let pa = pa.as_ptr();
    let pb = pb.as_ptr();
    for kk in 0..k {
        let b = _mm256_loadu_ps(pb.add(kk * NR));
        let a = pa.add(kk * MR);
        c0 = _mm256_add_ps(c0, _mm256_mul_ps(_mm256_broadcast_ss(&*a), b));
        c1 = _mm256_add_ps(c1, _mm256_mul_ps(_mm256_broadcast_ss(&*a.add(1)), b));
        c2 = _mm256_add_ps(c2, _mm256_mul_ps(_mm256_broadcast_ss(&*a.add(2)), b));
        c3 = _mm256_add_ps(c3, _mm256_mul_ps(_mm256_broadcast_ss(&*a.add(3)), b));
    }
    _mm256_storeu_ps(acc[0].as_mut_ptr(), c0);
    _mm256_storeu_ps(acc[1].as_mut_ptr(), c1);
    _mm256_storeu_ps(acc[2].as_mut_ptr(), c2);
    _mm256_storeu_ps(acc[3].as_mut_ptr(), c3);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a.at(&[i, kk]) * b.at(&[kk, j]);
                }
                out.set(&[i, j], acc);
            }
        }
        out
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.dims(), b.dims());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Tensor::randn(&[5, 5], &mut rng);
        assert_close(&matmul(&a, &Tensor::eye(5)), &a, 1e-6);
        assert_close(&matmul(&Tensor::eye(5), &a), &a, 1e-6);
    }

    #[test]
    fn blocked_matches_naive_on_odd_sizes() {
        let mut rng = StdRng::seed_from_u64(2);
        for (m, k, n) in [(1, 1, 1), (3, 7, 5), (65, 3, 70), (130, 67, 2)] {
            let a = Tensor::randn(&[m, k], &mut rng);
            let b = Tensor::randn(&[k, n], &mut rng);
            assert_close(&matmul(&a, &b), &naive_matmul(&a, &b), 1e-3);
        }
    }

    #[test]
    fn packed_matches_reference_kernel() {
        let mut rng = StdRng::seed_from_u64(21);
        for (m, k, n) in [(4, 8, 8), (33, 17, 29), (70, 64, 66)] {
            let a = Tensor::randn(&[m, k], &mut rng);
            let b = Tensor::randn(&[k, n], &mut rng);
            // Same ascending-k accumulation order → bit-identical to the
            // PR-1 kernel on finite nonzero data.
            assert_eq!(matmul(&a, &b), reference_matmul(&a, &b));
        }
    }

    #[test]
    fn prepacked_operands_match_unpacked() {
        let mut rng = StdRng::seed_from_u64(22);
        let a = Tensor::randn(&[13, 27], &mut rng);
        let b = Tensor::randn(&[27, 19], &mut rng);
        let base = matmul(&a, &b);
        assert_eq!(matmul_packed_a(&PackedA::pack(&a), &b), base);
        assert_eq!(matmul_packed_b(&a, &PackedB::pack(&b)), base);

        // pack_nt: w is [n, k], used as bᵀ.
        let w = Tensor::randn(&[19, 27], &mut rng);
        assert_eq!(
            matmul_packed_b(&a, &PackedB::pack_nt(&w)),
            matmul_nt(&a, &w)
        );
    }

    #[test]
    fn transpose_involution() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Tensor::randn(&[4, 9], &mut rng);
        assert_eq!(transpose(&transpose(&a)), a);
    }

    #[test]
    fn blocked_transpose_matches_naive() {
        let mut rng = StdRng::seed_from_u64(31);
        for (m, n) in [(1, 1), (3, 95), (95, 3), (33, 70), (64, 64)] {
            let a = Tensor::randn(&[m, n], &mut rng);
            let t = transpose(&a);
            assert_eq!(t.dims(), &[n, m]);
            for i in 0..m {
                for j in 0..n {
                    assert_eq!(t.at(&[j, i]), a.at(&[i, j]));
                }
            }
        }
    }

    #[test]
    fn tn_and_nt_match_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = Tensor::randn(&[6, 4], &mut rng);
        let b = Tensor::randn(&[6, 5], &mut rng);
        assert_close(&matmul_tn(&a, &b), &matmul(&transpose(&a), &b), 1e-4);

        let c = Tensor::randn(&[3, 8], &mut rng);
        let d = Tensor::randn(&[7, 8], &mut rng);
        assert_close(&matmul_nt(&c, &d), &matmul(&c, &transpose(&d)), 1e-4);
    }

    #[test]
    fn try_variants_report_shape_errors() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        let err = try_matmul(&a, &b).expect_err("mismatched shapes");
        assert!(matches!(
            err,
            TensorError::ShapeMismatch { op: "matmul", .. }
        ));
        assert!(try_matmul_tn(&a, &b).is_err());
        assert!(try_matmul_nt(&a, &Tensor::zeros(&[4, 4])).is_err());
        // And succeed on valid shapes.
        let ok = try_matmul(&a, &Tensor::zeros(&[3, 5])).expect("valid shapes");
        assert_eq!(ok.dims(), &[2, 5]);
    }

    #[test]
    fn dot_matches_manual() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3]);
        assert_eq!(dot(&a, &b), 32.0);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn mismatched_matmul_panics() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        let _ = matmul(&a, &b);
    }
}

#[cfg(test)]
mod par_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The pooled path (large product) must agree with the single-thread
    /// packed kernel bit-for-bit, including when rows don't divide evenly
    /// into MR panels or bands.
    #[test]
    fn parallel_matches_serial_exactly() {
        let mut rng = StdRng::seed_from_u64(77);
        for (m, k, n) in [(300, 120, 130), (257, 90, 101)] {
            assert!(
                2 * m * k * n >= PAR_THRESHOLD,
                "case too small to exercise the parallel path"
            );
            let a = Tensor::randn(&[m, k], &mut rng);
            let b = Tensor::randn(&[k, n], &mut rng);
            let serial = matmul_with_threads(&a, &b, 1);
            for threads in [2, 3, 8] {
                assert_eq!(
                    matmul_with_threads(&a, &b, threads),
                    serial,
                    "threads={threads}"
                );
            }
            // And the packed kernel still agrees with the PR-1 kernel.
            assert_eq!(serial, reference_matmul(&a, &b));
        }
    }
}
