//! Shape and stride bookkeeping for dense row-major tensors.

/// Dimensions of a dense, row-major tensor.
///
/// A `Shape` owns its dimension list and derives contiguous strides on
/// demand. The empty shape `[]` denotes a scalar with one element.
///
/// # Example
///
/// ```
/// use tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// assert_eq!(s.offset(&[1, 2, 3]), Some(23));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a dimension list.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero; zero-sized tensors are not used
    /// anywhere in this project and allowing them would complicate every
    /// kernel for no benefit.
    pub fn new(dims: &[usize]) -> Self {
        assert!(
            dims.iter().all(|&d| d > 0),
            "zero-sized dimension in shape {dims:?}"
        );
        Shape {
            dims: dims.to_vec(),
        }
    }

    /// Returns the scalar shape (rank 0, one element).
    pub fn scalar() -> Self {
        Shape { dims: Vec::new() }
    }

    /// The dimension list.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions (rank).
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Whether the shape holds no elements. Always false: zero dimensions
    /// are rejected at construction and the scalar shape has one element.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Size of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= rank`.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// Contiguous row-major strides.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Flat offset of a multi-index, or `None` if out of bounds.
    pub fn offset(&self, index: &[usize]) -> Option<usize> {
        if index.len() != self.dims.len() {
            return None;
        }
        let mut off = 0;
        let mut stride = 1;
        for axis in (0..self.dims.len()).rev() {
            if index[axis] >= self.dims[axis] {
                return None;
            }
            off += index[axis] * stride;
            stride *= self.dims[axis];
        }
        Some(off)
    }

    /// Converts a flat offset back into a multi-index.
    ///
    /// Inverse of [`Shape::offset`] for in-range offsets.
    pub fn unravel(&self, mut flat: usize) -> Option<Vec<usize>> {
        if flat >= self.len() {
            return None;
        }
        let mut index = vec![0; self.dims.len()];
        for axis in (0..self.dims.len()).rev() {
            index[axis] = flat % self.dims[axis];
            flat /= self.dims[axis];
        }
        Some(index)
    }

    /// Whether `self` and `other` have identical dimensions.
    pub fn same_dims(&self, other: &Shape) -> bool {
        self.dims == other.dims
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(&dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_has_one_element() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.offset(&[]), Some(0));
    }

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(&[4, 3, 2]);
        assert_eq!(s.strides(), vec![6, 2, 1]);
    }

    #[test]
    fn offset_checks_bounds() {
        let s = Shape::new(&[2, 3]);
        assert_eq!(s.offset(&[1, 2]), Some(5));
        assert_eq!(s.offset(&[2, 0]), None);
        assert_eq!(s.offset(&[0, 3]), None);
        assert_eq!(s.offset(&[0]), None);
    }

    #[test]
    fn unravel_inverts_offset() {
        let s = Shape::new(&[3, 4, 5]);
        for flat in 0..s.len() {
            let idx = s.unravel(flat).unwrap();
            assert_eq!(s.offset(&idx), Some(flat));
        }
        assert_eq!(s.unravel(s.len()), None);
    }

    #[test]
    #[should_panic(expected = "zero-sized")]
    fn zero_dim_rejected() {
        let _ = Shape::new(&[2, 0, 3]);
    }

    #[test]
    fn display_matches_debug_dims() {
        let s = Shape::new(&[2, 3]);
        assert_eq!(s.to_string(), "[2, 3]");
    }
}
