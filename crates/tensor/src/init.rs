//! Weight initializers.

use crate::Tensor;
use rand::Rng;

/// Kaiming/He normal initialization for layers followed by ReLU:
/// `N(0, sqrt(2 / fan_in))`.
///
/// # Panics
///
/// Panics if `fan_in == 0`.
pub fn kaiming_normal<R: Rng + ?Sized>(dims: &[usize], fan_in: usize, rng: &mut R) -> Tensor {
    assert!(fan_in > 0, "fan_in must be positive");
    let std = (2.0 / fan_in as f32).sqrt();
    Tensor::randn(dims, rng).scale(std)
}

/// Xavier/Glorot uniform initialization:
/// `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
///
/// # Panics
///
/// Panics if `fan_in + fan_out == 0`.
pub fn xavier_uniform<R: Rng + ?Sized>(
    dims: &[usize],
    fan_in: usize,
    fan_out: usize,
    rng: &mut R,
) -> Tensor {
    assert!(fan_in + fan_out > 0, "fan_in + fan_out must be positive");
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Tensor::rand_uniform(dims, -a, a, rng)
}

/// δ-balanced initialization for a stack of linear layers, as assumed by the
/// convergence analysis of NDPipe §5.2 (condition B of Arora et al.).
///
/// Produces weights `W ∈ R^{d_out × d_in}` whose Gram matrices are
/// approximately balanced across consecutive layers by drawing each entry
/// from `N(0, s²)` with `s = (1 / sqrt(d_in))·scale`.
pub fn balanced_linear<R: Rng + ?Sized>(
    d_out: usize,
    d_in: usize,
    scale: f32,
    rng: &mut R,
) -> Tensor {
    let s = scale / (d_in as f32).sqrt();
    Tensor::randn(&[d_out, d_in], rng).scale(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn kaiming_variance_tracks_fan_in() {
        let mut rng = StdRng::seed_from_u64(5);
        let t = kaiming_normal(&[100, 100], 100, &mut rng);
        let var = t.map(|x| x * x).mean();
        assert!((var - 0.02).abs() < 0.005, "var {var}");
    }

    #[test]
    fn xavier_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = (6.0f32 / 300.0).sqrt();
        let t = xavier_uniform(&[100, 200], 200, 100, &mut rng);
        assert!(t.data().iter().all(|&x| x.abs() <= a));
    }

    #[test]
    fn balanced_linear_has_expected_scale() {
        let mut rng = StdRng::seed_from_u64(7);
        let w = balanced_linear(64, 256, 1.0, &mut rng);
        let var = w.map(|x| x * x).mean();
        assert!((var - 1.0 / 256.0).abs() < 1e-3, "var {var}");
    }
}
