//! Property tests of the tensor kernels against naive reference
//! implementations.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tensor::conv::{avg_pool2d, conv2d, global_avg_pool, max_pool2d, Conv2dSpec};
use tensor::linalg::Gemm;
use tensor::{activation, Tensor};

fn naive_conv(input: &Tensor, weight: &Tensor, spec: Conv2dSpec) -> Tensor {
    let (n, c_in, h, w) = (
        input.dims()[0],
        input.dims()[1],
        input.dims()[2],
        input.dims()[3],
    );
    let (c_out, _, k, _) = (
        weight.dims()[0],
        weight.dims()[1],
        weight.dims()[2],
        weight.dims()[3],
    );
    let oh = spec.out_size(h);
    let ow = spec.out_size(w);
    let mut out = Tensor::zeros(&[n, c_out, oh, ow]);
    for b in 0..n {
        for co in 0..c_out {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0f32;
                    for ci in 0..c_in {
                        for ky in 0..k {
                            for kx in 0..k {
                                let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                                let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                                if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                                    acc += input.at(&[b, ci, iy as usize, ix as usize])
                                        * weight.at(&[co, ci, ky, kx]);
                                }
                            }
                        }
                    }
                    out.set(&[b, co, oy, ox], acc);
                }
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// im2col convolution agrees with the 7-loop reference on arbitrary
    /// shapes, strides and paddings.
    #[test]
    fn conv_matches_reference(
        seed in 0u64..500,
        n in 1usize..3,
        c_in in 1usize..4,
        c_out in 1usize..4,
        hw in 3usize..9,
        k in 1usize..4,
        stride in 1usize..3,
        padding in 0usize..2,
    ) {
        prop_assume!(hw + 2 * padding >= k);
        let mut rng = StdRng::seed_from_u64(seed);
        let input = Tensor::randn(&[n, c_in, hw, hw], &mut rng);
        let weight = Tensor::randn(&[c_out, c_in, k, k], &mut rng);
        let spec = Conv2dSpec::new(k, stride, padding);
        let fast = conv2d(&input, &weight, None, spec);
        let slow = naive_conv(&input, &weight, spec);
        prop_assert_eq!(fast.dims(), slow.dims());
        for (a, b) in fast.data().iter().zip(slow.data()) {
            prop_assert!((a - b).abs() < 1e-3, "{} vs {}", a, b);
        }
    }

    /// Max pool dominates average pool pointwise on non-padded windows.
    #[test]
    fn max_pool_dominates_avg_pool(seed in 0u64..500, hw in 2usize..9) {
        let mut rng = StdRng::seed_from_u64(seed);
        let input = Tensor::randn(&[1, 2, hw, hw], &mut rng);
        let spec = Conv2dSpec::new(2, 2, 0);
        prop_assume!(hw >= 2);
        let mx = max_pool2d(&input, spec);
        let av = avg_pool2d(&input, spec);
        for (m, a) in mx.data().iter().zip(av.data()) {
            prop_assert!(m >= a);
        }
    }

    /// Global average pooling equals the channel means.
    #[test]
    fn gap_is_channel_mean(seed in 0u64..500, c in 1usize..5, hw in 1usize..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let input = Tensor::randn(&[1, c, hw, hw], &mut rng);
        let gap = global_avg_pool(&input);
        for ch in 0..c {
            let plane = &input.data()[ch * hw * hw..(ch + 1) * hw * hw];
            let mean = plane.iter().sum::<f32>() / (hw * hw) as f32;
            prop_assert!((gap.data()[ch] - mean).abs() < 1e-5);
        }
    }

    /// Cross-entropy gradients match central finite differences at
    /// random points.
    #[test]
    fn ce_grad_matches_finite_difference(seed in 0u64..300, rows in 1usize..5, cols in 2usize..6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let logits = Tensor::randn(&[rows, cols], &mut rng);
        let labels: Vec<usize> = (0..rows).map(|i| i % cols).collect();
        let grad = activation::cross_entropy_grad(&logits, &labels);
        let eps = 1e-2;
        // Spot-check one coordinate per row.
        for r in 0..rows {
            let i = r * cols + (r + 1) % cols;
            let mut plus = logits.clone();
            plus.data_mut()[i] += eps;
            let mut minus = logits.clone();
            minus.data_mut()[i] -= eps;
            let num = (activation::cross_entropy(&plus, &labels)
                - activation::cross_entropy(&minus, &labels))
                / (2.0 * eps);
            prop_assert!((num - grad.data()[i]).abs() < 5e-3, "{} vs {}", num, grad.data()[i]);
        }
    }

    /// `matmul(A, B)` rows are linear: scaling A's row scales the output
    /// row.
    #[test]
    fn matmul_row_linearity(seed in 0u64..500, k in 1usize..6, scale in -4.0f32..4.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::randn(&[2, k], &mut rng);
        let b = Tensor::randn(&[k, 3], &mut rng);
        let base = Gemm::new(&a, &b).run();
        let mut scaled = a.clone();
        for x in &mut scaled.data_mut()[..k] {
            *x *= scale;
        }
        let out = Gemm::new(&scaled, &b).run();
        for j in 0..3 {
            prop_assert!((out.at(&[0, j]) - scale * base.at(&[0, j])).abs() < 1e-3);
            prop_assert!((out.at(&[1, j]) - base.at(&[1, j])).abs() < 1e-5);
        }
    }
}
