//! Gates for the opt-in kernel families: tolerance-based `Fast`-vs-oracle
//! equivalence across adversarial shapes, int8 quantize/dequantize
//! round-trip error bounds, and the dispatch invariant that
//! `Deterministic` never selects an FMA-contracting kernel.
//!
//! The tolerance model: the oracle and the fast kernels compute the same
//! `k`-term inner products with different association/contraction, so the
//! difference per output is bounded by a small multiple of
//! `eps * sqrt(k) * |a_row| * |b_col|` for random data. We use the
//! conservative per-element bound `eps * k * max|a| * max|b|` with a
//! safety factor instead of estimating norms.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tensor::linalg::{selected_kernel, transpose, Gemm};
use tensor::quant::QuantizedMatrix;
use tensor::{MathPolicy, Tensor};

/// Edge shapes the ISSUE calls out: m=1, n=1, primes, tall-skinny —
/// these exercise the ragged panel tails of the paired fast kernels.
const EDGE_SHAPES: &[(usize, usize, usize)] = &[
    (1, 1, 1),
    (1, 13, 1),
    (1, 7, 31),   // m = 1
    (31, 7, 1),   // n = 1
    (13, 31, 7),  // primes
    (17, 3, 19),  // odd B-panel count (exercises the 1x FMA tail)
    (5, 9, 24),   // even B-panel count (pure paired kernels)
    (257, 11, 3), // tall-skinny
    (3, 11, 257), // short-wide
];

fn max_abs(t: &Tensor) -> f32 {
    t.data().iter().fold(0.0f32, |m, v| m.max(v.abs()))
}

/// Conservative |fast - oracle| bound for one output element.
fn fast_tol(a: &Tensor, b: &Tensor, k: usize) -> f32 {
    let scale = max_abs(a) * max_abs(b) * k as f32;
    (8.0 * f32::EPSILON * scale).max(1e-7)
}

#[test]
fn fast_matches_oracle_on_edge_shapes_all_layouts() {
    let mut rng = StdRng::seed_from_u64(5001);
    for &(m, k, n) in EDGE_SHAPES {
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        let tol = fast_tol(&a, &b, k);
        let oracle = Gemm::new(&a, &b).policy(MathPolicy::Deterministic).run();
        let fast = Gemm::new(&a, &b).policy(MathPolicy::Fast).run();
        for (i, (x, y)) in fast.data().iter().zip(oracle.data()).enumerate() {
            assert!(
                (x - y).abs() <= tol,
                "nn {m}x{k}x{n} elem {i}: {x} vs {y} (tol {tol})"
            );
        }
        // Transposed layouts pack to the same panels, so the same bound
        // holds for tn/nt.
        let at = transpose(&a);
        let tn = Gemm::new(&at, &b)
            .transpose_a()
            .policy(MathPolicy::Fast)
            .run();
        let bt = transpose(&b);
        let nt = Gemm::new(&a, &bt)
            .transpose_b()
            .policy(MathPolicy::Fast)
            .run();
        for ((x, y), z) in tn.data().iter().zip(nt.data()).zip(oracle.data()) {
            assert!((x - z).abs() <= tol, "tn {m}x{k}x{n}: {x} vs {z}");
            assert!((y - z).abs() <= tol, "nt {m}x{k}x{n}: {x} vs {z}");
        }
    }
}

#[test]
fn deterministic_never_selects_an_fma_kernel() {
    let det = selected_kernel(MathPolicy::Deterministic);
    assert!(
        !det.uses_fma(),
        "Deterministic resolved to FMA kernel {det}"
    );
    // And the policy is not influenced by the fast probe having run.
    let _ = selected_kernel(MathPolicy::Fast);
    assert!(!selected_kernel(MathPolicy::Deterministic).uses_fma());
}

#[test]
fn int8_dispatch_reports_int8dot() {
    assert_eq!(
        selected_kernel(MathPolicy::Int8).as_str(),
        "int8dot",
        "Int8 must report the quantized kernel family"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fast-family products stay within the rounding-noise tolerance of
    /// the oracle on arbitrary shapes (including ones large enough to
    /// cross the parallel threshold via the default thread budget).
    #[test]
    fn fast_tracks_oracle(
        seed in 0u64..1000,
        m in 1usize..48,
        k in 1usize..48,
        n in 1usize..48,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        let tol = fast_tol(&a, &b, k);
        let oracle = Gemm::new(&a, &b).policy(MathPolicy::Deterministic).run();
        let fast = Gemm::new(&a, &b).policy(MathPolicy::Fast).run();
        for (x, y) in fast.data().iter().zip(oracle.data()) {
            prop_assert!((x - y).abs() <= tol, "{} vs {} (tol {})", x, y, tol);
        }
    }

    /// Quantize → dequantize reconstructs every element to within half a
    /// quantization step (`scale / 2`), and exactly recovers the extremes.
    #[test]
    fn int8_round_trip_error_is_bounded(
        seed in 0u64..1000,
        rows in 1usize..20,
        cols in 1usize..20,
        spread in 0.01f32..100.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = Tensor::randn(&[rows, cols], &mut rng).scale(spread);
        let q = QuantizedMatrix::quantize(&t);
        let back = q.dequantize();
        prop_assert_eq!(back.dims(), t.dims());
        // Half a step, with headroom for the scale division itself.
        let bound = q.scale() * 0.5 * (1.0 + 1e-5);
        for (x, y) in t.data().iter().zip(back.data()) {
            prop_assert!((x - y).abs() <= bound, "{} vs {} (bound {})", x, y, bound);
        }
        // The max-magnitude element sits exactly on the ±127 grid point.
        let mx = max_abs(&t);
        if mx > 0.0 {
            let idx = t.data().iter().position(|v| v.abs() == mx).unwrap();
            let rel = (back.data()[idx] - t.data()[idx]).abs() / mx;
            prop_assert!(rel <= 1e-6, "extreme not on grid: rel err {}", rel);
        }
    }

    /// End-to-end int8 product error obeys the analytic bound from the
    /// quant module docs.
    #[test]
    fn int8_product_error_is_bounded(
        seed in 0u64..1000,
        m in 1usize..12,
        k in 1usize..32,
        n in 1usize..12,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        let oracle = Gemm::new(&a, &b).policy(MathPolicy::Deterministic).run();
        let q = Gemm::new(&a, &b).policy(MathPolicy::Int8).run();
        let (amax, bmax) = (max_abs(&a), max_abs(&b));
        let (sa, sb) = (amax / 127.0, bmax / 127.0);
        let bound =
            (k as f32) * (amax * sb / 2.0 + bmax * sa / 2.0 + sa * sb / 4.0) * 1.05 + 1e-6;
        for (x, y) in q.data().iter().zip(oracle.data()) {
            prop_assert!((x - y).abs() <= bound, "{} vs {} (bound {})", x, y, bound);
        }
    }
}
