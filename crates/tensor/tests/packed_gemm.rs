//! Property tests of the packed-panel GEMM driver against a naive
//! triple-loop oracle, over adversarial shapes, plus determinism checks
//! across worker counts.
//!
//! Bit-equality (not tolerance) is the contract: every kernel path —
//! portable, AVX-dispatched, serial, pooled — accumulates each output
//! element over k in ascending order with separate multiply and add, so
//! all paths execute the identical IEEE operation sequence per element.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tensor::linalg;
use tensor::pack::{PackedA, PackedB};
use tensor::Tensor;

/// Naive j-inner triple loop, accumulating over k ascending — the same
/// per-element operation order the microkernel guarantees.
fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let n = b.dims()[1];
    let mut out = Tensor::zeros(&[m, n]);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a.at(&[i, p]) * b.at(&[p, j]);
            }
            out.set(&[i, j], acc);
        }
    }
    out
}

/// Shapes the blocking logic finds adversarial: unit dims, dims straddling
/// the MR=4 / NR=8 panel edges, primes, and tall/skinny aspect ratios.
const EDGE_SHAPES: &[(usize, usize, usize)] = &[
    (1, 1, 1),
    (1, 17, 1),
    (1, 5, 23),  // m = 1: a single ragged A panel
    (23, 5, 1),  // n = 1: a single ragged B panel
    (3, 7, 5),   // everything below one full panel
    (4, 8, 8),   // exactly one full MR x NR tile
    (5, 9, 9),   // one past every panel edge
    (13, 31, 7), // primes
    (37, 2, 41),
    (97, 3, 2), // tall and skinny
    (2, 3, 97), // short and wide
];

#[test]
fn edge_shapes_match_naive_for_all_layouts() {
    let mut rng = StdRng::seed_from_u64(9001);
    for &(m, k, n) in EDGE_SHAPES {
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        let want = naive_matmul(&a, &b);
        assert_eq!(
            linalg::matmul(&a, &b).data(),
            want.data(),
            "matmul diverged at {m}x{k}x{n}"
        );
        let at = linalg::transpose(&a);
        assert_eq!(
            linalg::matmul_tn(&at, &b).data(),
            want.data(),
            "matmul_tn diverged at {m}x{k}x{n}"
        );
        let bt = linalg::transpose(&b);
        assert_eq!(
            linalg::matmul_nt(&a, &bt).data(),
            want.data(),
            "matmul_nt diverged at {m}x{k}x{n}"
        );
        assert_eq!(
            linalg::matmul_packed_a(&PackedA::pack(&a), &b).data(),
            want.data(),
            "matmul_packed_a diverged at {m}x{k}x{n}"
        );
        assert_eq!(
            linalg::matmul_packed_b(&a, &PackedB::pack(&b)).data(),
            want.data(),
            "matmul_packed_b diverged at {m}x{k}x{n}"
        );
    }
}

/// The parallel band split must be invisible: products big enough to
/// cross the parallel threshold are bit-identical at every worker count.
#[test]
fn parallel_products_are_bit_identical_across_worker_counts() {
    let mut rng = StdRng::seed_from_u64(9002);
    // Both cross the 2*m*n*k >= 2^21 parallel threshold; the second is
    // tall/skinny so the band split hits ragged final bands.
    for &(m, k, n) in &[(128, 96, 96), (517, 600, 9)] {
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        let serial = linalg::matmul_with_threads(&a, &b, 1);
        for threads in [2usize, 8] {
            assert_eq!(
                linalg::matmul_with_threads(&a, &b, threads).data(),
                serial.data(),
                "matmul not deterministic at {m}x{k}x{n}, {threads} threads"
            );
        }
        let at = linalg::transpose(&a);
        let tn_serial = linalg::matmul_tn_with_threads(&at, &b, 1);
        assert_eq!(tn_serial.data(), serial.data());
        let bt = linalg::transpose(&b);
        let nt_serial = linalg::matmul_nt_with_threads(&a, &bt, 1);
        assert_eq!(nt_serial.data(), serial.data());
        for threads in [2usize, 8] {
            assert_eq!(
                linalg::matmul_tn_with_threads(&at, &b, threads).data(),
                serial.data(),
                "matmul_tn not deterministic at {m}x{k}x{n}, {threads} threads"
            );
            assert_eq!(
                linalg::matmul_nt_with_threads(&a, &bt, threads).data(),
                serial.data(),
                "matmul_nt not deterministic at {m}x{k}x{n}, {threads} threads"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The packed kernel agrees bit-for-bit with the naive oracle on
    /// arbitrary small shapes.
    #[test]
    fn matmul_matches_naive(
        seed in 0u64..1000,
        m in 1usize..40,
        k in 1usize..40,
        n in 1usize..40,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        let got = linalg::matmul(&a, &b);
        let want = naive_matmul(&a, &b);
        prop_assert_eq!(got.data(), want.data());
    }

    /// The transposed-operand drivers agree with multiplying explicit
    /// transposes, so all three layouts share one kernel's semantics.
    #[test]
    fn tn_and_nt_match_explicit_transposes(
        seed in 0u64..1000,
        m in 1usize..24,
        k in 1usize..24,
        n in 1usize..24,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let at = Tensor::randn(&[k, m], &mut rng); // aᵀ stored [k, m]
        let bt = Tensor::randn(&[n, k], &mut rng); // bᵀ stored [n, k]
        let a = linalg::transpose(&at);
        let b = linalg::transpose(&bt);
        let want = naive_matmul(&a, &b);
        let tn = linalg::matmul_tn(&at, &b);
        prop_assert_eq!(tn.data(), want.data());
        let nt = linalg::matmul_nt(&a, &bt);
        prop_assert_eq!(nt.data(), want.data());
    }

    /// Prepacking either operand changes nothing about the product.
    #[test]
    fn prepacked_operands_are_transparent(
        seed in 0u64..1000,
        m in 1usize..24,
        k in 1usize..24,
        n in 1usize..24,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        let want = linalg::matmul(&a, &b);
        let pa = PackedA::pack(&a);
        let via_pa = linalg::matmul_packed_a(&pa, &b);
        prop_assert_eq!(via_pa.data(), want.data());
        let pb = PackedB::pack(&b);
        let via_pb = linalg::matmul_packed_b(&a, &pb);
        prop_assert_eq!(via_pb.data(), want.data());
        let bt = linalg::transpose(&b);
        let pbt = PackedB::pack_nt(&bt);
        let via_pbt = linalg::matmul_packed_b(&a, &pbt);
        prop_assert_eq!(via_pbt.data(), want.data());
    }

    /// Blocked transpose round-trips and matches the naive definition.
    #[test]
    fn transpose_is_an_involution(
        seed in 0u64..1000,
        m in 1usize..70,
        n in 1usize..70,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::randn(&[m, n], &mut rng);
        let t = linalg::transpose(&a);
        prop_assert_eq!(t.dims(), &[n, m]);
        for i in 0..m {
            for j in 0..n {
                prop_assert_eq!(a.at(&[i, j]), t.at(&[j, i]));
            }
        }
        let back = linalg::transpose(&t);
        prop_assert_eq!(back.data(), a.data());
    }

    /// Explicit worker budgets never change the product, even below the
    /// parallel threshold (where they must collapse to the serial path).
    #[test]
    fn thread_budget_is_invisible(
        seed in 0u64..1000,
        m in 1usize..32,
        k in 1usize..32,
        n in 1usize..32,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        let serial = linalg::matmul_with_threads(&a, &b, 1);
        for threads in [2usize, 8] {
            let pooled = linalg::matmul_with_threads(&a, &b, threads);
            prop_assert_eq!(pooled.data(), serial.data());
        }
    }
}
