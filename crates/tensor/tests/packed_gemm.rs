//! Property tests of the packed-panel GEMM driver against a naive
//! triple-loop oracle, over adversarial shapes, plus determinism checks
//! across worker counts.
//!
//! Bit-equality (not tolerance) is the contract, so every product here
//! pins [`MathPolicy::Deterministic`]: under that policy every kernel
//! path — portable, AVX-dispatched, serial, pooled — accumulates each
//! output element over k in ascending order with separate multiply and
//! add, so all paths execute the identical IEEE operation sequence per
//! element. The opt-in fast families are tolerance-gated separately in
//! `tests/fast_math.rs`.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tensor::linalg::{transpose, Gemm};
use tensor::pack::{PackedA, PackedB};
use tensor::{MathPolicy, Tensor};

/// Naive j-inner triple loop, accumulating over k ascending — the same
/// per-element operation order the microkernel guarantees.
fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let n = b.dims()[1];
    let mut out = Tensor::zeros(&[m, n]);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a.at(&[i, p]) * b.at(&[p, j]);
            }
            out.set(&[i, j], acc);
        }
    }
    out
}

fn det<'a>(a: &'a Tensor, b: &'a Tensor) -> Gemm<'a> {
    Gemm::new(a, b).policy(MathPolicy::Deterministic)
}

/// Shapes the blocking logic finds adversarial: unit dims, dims straddling
/// the MR=4 / NR=8 panel edges, primes, and tall/skinny aspect ratios.
const EDGE_SHAPES: &[(usize, usize, usize)] = &[
    (1, 1, 1),
    (1, 17, 1),
    (1, 5, 23),  // m = 1: a single ragged A panel
    (23, 5, 1),  // n = 1: a single ragged B panel
    (3, 7, 5),   // everything below one full panel
    (4, 8, 8),   // exactly one full MR x NR tile
    (5, 9, 9),   // one past every panel edge
    (13, 31, 7), // primes
    (37, 2, 41),
    (97, 3, 2), // tall and skinny
    (2, 3, 97), // short and wide
];

#[test]
fn edge_shapes_match_naive_for_all_layouts() {
    let mut rng = StdRng::seed_from_u64(9001);
    for &(m, k, n) in EDGE_SHAPES {
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        let want = naive_matmul(&a, &b);
        assert_eq!(
            det(&a, &b).run().data(),
            want.data(),
            "nn layout diverged at {m}x{k}x{n}"
        );
        let at = transpose(&a);
        assert_eq!(
            det(&at, &b).transpose_a().run().data(),
            want.data(),
            "tn layout diverged at {m}x{k}x{n}"
        );
        let bt = transpose(&b);
        assert_eq!(
            det(&a, &bt).transpose_b().run().data(),
            want.data(),
            "nt layout diverged at {m}x{k}x{n}"
        );
        assert_eq!(
            Gemm::prepacked_a(&PackedA::pack(&a), &b)
                .policy(MathPolicy::Deterministic)
                .run()
                .data(),
            want.data(),
            "prepacked A diverged at {m}x{k}x{n}"
        );
        assert_eq!(
            Gemm::prepacked_b(&a, &PackedB::pack(&b))
                .policy(MathPolicy::Deterministic)
                .run()
                .data(),
            want.data(),
            "prepacked B diverged at {m}x{k}x{n}"
        );
    }
}

/// The parallel band split must be invisible: products big enough to
/// cross the parallel threshold are bit-identical at every worker count.
#[test]
fn parallel_products_are_bit_identical_across_worker_counts() {
    let mut rng = StdRng::seed_from_u64(9002);
    // Both cross the 2*m*n*k >= 2^21 parallel threshold; the second is
    // tall/skinny so the band split hits ragged final bands.
    for &(m, k, n) in &[(128, 96, 96), (517, 600, 9)] {
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        let serial = det(&a, &b).threads(1).run();
        for threads in [2usize, 8] {
            assert_eq!(
                det(&a, &b).threads(threads).run().data(),
                serial.data(),
                "matmul not deterministic at {m}x{k}x{n}, {threads} threads"
            );
        }
        let at = transpose(&a);
        let tn_serial = det(&at, &b).transpose_a().threads(1).run();
        assert_eq!(tn_serial.data(), serial.data());
        let bt = transpose(&b);
        let nt_serial = det(&a, &bt).transpose_b().threads(1).run();
        assert_eq!(nt_serial.data(), serial.data());
        for threads in [2usize, 8] {
            assert_eq!(
                det(&at, &b).transpose_a().threads(threads).run().data(),
                serial.data(),
                "tn not deterministic at {m}x{k}x{n}, {threads} threads"
            );
            assert_eq!(
                det(&a, &bt).transpose_b().threads(threads).run().data(),
                serial.data(),
                "nt not deterministic at {m}x{k}x{n}, {threads} threads"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The packed kernel agrees bit-for-bit with the naive oracle on
    /// arbitrary small shapes.
    #[test]
    fn matmul_matches_naive(
        seed in 0u64..1000,
        m in 1usize..40,
        k in 1usize..40,
        n in 1usize..40,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        let got = det(&a, &b).run();
        let want = naive_matmul(&a, &b);
        prop_assert_eq!(got.data(), want.data());
    }

    /// The transposed-operand layouts agree with multiplying explicit
    /// transposes, so all three layouts share one kernel's semantics.
    #[test]
    fn tn_and_nt_match_explicit_transposes(
        seed in 0u64..1000,
        m in 1usize..24,
        k in 1usize..24,
        n in 1usize..24,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let at = Tensor::randn(&[k, m], &mut rng); // aᵀ stored [k, m]
        let bt = Tensor::randn(&[n, k], &mut rng); // bᵀ stored [n, k]
        let a = transpose(&at);
        let b = transpose(&bt);
        let want = naive_matmul(&a, &b);
        let tn = det(&at, &b).transpose_a().run();
        prop_assert_eq!(tn.data(), want.data());
        let nt = det(&a, &bt).transpose_b().run();
        prop_assert_eq!(nt.data(), want.data());
    }

    /// Prepacking either operand changes nothing about the product.
    #[test]
    fn prepacked_operands_are_transparent(
        seed in 0u64..1000,
        m in 1usize..24,
        k in 1usize..24,
        n in 1usize..24,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        let want = det(&a, &b).run();
        let pa = PackedA::pack(&a);
        let via_pa = Gemm::prepacked_a(&pa, &b)
            .policy(MathPolicy::Deterministic)
            .run();
        prop_assert_eq!(via_pa.data(), want.data());
        let pb = PackedB::pack(&b);
        let via_pb = Gemm::prepacked_b(&a, &pb)
            .policy(MathPolicy::Deterministic)
            .run();
        prop_assert_eq!(via_pb.data(), want.data());
        let bt = transpose(&b);
        let pbt = PackedB::pack_nt(&bt);
        let via_pbt = Gemm::prepacked_b(&a, &pbt)
            .policy(MathPolicy::Deterministic)
            .run();
        prop_assert_eq!(via_pbt.data(), want.data());
    }

    /// Blocked transpose round-trips and matches the naive definition.
    #[test]
    fn transpose_is_an_involution(
        seed in 0u64..1000,
        m in 1usize..70,
        n in 1usize..70,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::randn(&[m, n], &mut rng);
        let t = transpose(&a);
        prop_assert_eq!(t.dims(), &[n, m]);
        for i in 0..m {
            for j in 0..n {
                prop_assert_eq!(a.at(&[i, j]), t.at(&[j, i]));
            }
        }
        let back = transpose(&t);
        prop_assert_eq!(back.data(), a.data());
    }

    /// Explicit worker budgets never change the product, even below the
    /// parallel threshold (where they must collapse to the serial path).
    #[test]
    fn thread_budget_is_invisible(
        seed in 0u64..1000,
        m in 1usize..32,
        k in 1usize..32,
        n in 1usize..32,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        let serial = det(&a, &b).threads(1).run();
        for threads in [2usize, 8] {
            let pooled = det(&a, &b).threads(threads).run();
            prop_assert_eq!(pooled.data(), serial.data());
        }
    }
}
