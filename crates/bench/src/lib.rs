//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (§3–§7).
//!
//! Each `reports::*` module produces one figure/table as a plain-text TSV
//! report with a paper-vs-measured note; the `src/bin/*` binaries are
//! thin wrappers, and `src/bin/run_all.rs` regenerates everything in one
//! go. Criterion micro-benchmarks of the hot code paths live under
//! `benches/`.
//!
//! Accuracy experiments (Fig 4, Fig 17, Tables 1–2) run real SGD and take
//! a minute or two in release mode; pass `--fast` to any binary for a
//! smaller (noisier) configuration.

pub mod reports;
pub mod util;

pub use util::{fast_flag, Report};
