//! Regenerates the paper's fig09 partition result. Pass `--fast` for a
//! smaller configuration.

fn main() {
    println!(
        "{}",
        bench::reports::fig09_partition::run(bench::fast_flag())
    );
}
