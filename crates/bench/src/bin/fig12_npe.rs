//! Regenerates the paper's fig12 npe result. Pass `--fast` for a
//! smaller configuration.

fn main() {
    println!("{}", bench::reports::fig12_npe::run(bench::fast_flag()));
}
