//! Internal: debugging/calibration scratchpad (not part of the reproduction).

use dnn::Trainer;
use ndpipe::experiment::*;
use ndpipe_data::{DatasetSpec, DriftScenario, PhotoId};
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let cfg = ExperimentConfig::paper();
    let mut rng = StdRng::seed_from_u64(2024);
    let spec = DatasetSpec {
        daily_drift: DatasetSpec::imagenet_1k().daily_drift * 0.25,
        ..DatasetSpec::imagenet_1k()
    };
    let mut scenario = DriftScenario::new(spec, cfg.initial_pool, &mut rng);
    // replicate label_fix internals
    let m0 = {
        let mut dims = vec![spec.input_dim];
        dims.extend_from_slice(&cfg.feature_widths);
        dims.push(scenario.train_set().num_classes());
        let mut model = dnn::Mlp::new(&dims, cfg.feature_widths.len(), &mut rng);
        let t = Trainer::new(dnn::TrainConfig {
            max_epochs: 15,
            ..cfg.train
        });
        t.fit(&mut model, &scenario.train_set(), None, 0, &mut rng);
        model
    };
    let photo_count = scenario.pool_size();
    let db = ndpipe::LabelDb::new();
    for i in 0..photo_count {
        let (_, x) = scenario.pool_item(i);
        let logits = m0.forward(&x.reshape(&[1, x.len()]).unwrap());
        db.put(PhotoId(i as u64), logits.argmax(), 0);
    }
    let snapshot = db.snapshot();
    let truth = |id: PhotoId| scenario_truth(&scenario, id);
    fn scenario_truth(s: &DriftScenario, id: PhotoId) -> usize {
        s.pool_item(id.0 as usize).0
    }
    let acc0 = db.accuracy_against(truth);
    println!("M0 label acc on pool: {:.3} ({} photos)", acc0, photo_count);
    for gen in 1..=2u64 {
        for _ in 0..14 {
            scenario.advance_day(&mut rng);
        }
        let mut dims = vec![spec.input_dim];
        dims.extend_from_slice(&cfg.feature_widths);
        dims.push(scenario.train_set().num_classes());
        let mut model = dnn::Mlp::new(&dims, cfg.feature_widths.len(), &mut rng);
        let t = Trainer::new(dnn::TrainConfig {
            max_epochs: 25,
            ..cfg.train
        });
        t.fit(&mut model, &scenario.train_set(), None, 0, &mut rng);
        let relabels: Vec<(PhotoId, usize)> = (0..photo_count)
            .map(|i| {
                let (_, x) = scenario.pool_item(i);
                let logits = model.forward(&x.reshape(&[1, x.len()]).unwrap());
                (PhotoId(i as u64), logits.argmax())
            })
            .collect();
        let stats = db.apply_relabels(relabels, gen);
        let acc = db.accuracy_against(|id| scenario_truth(&scenario, id));
        println!(
            "M{gen}: changed {} of {}, pool-label acc {:.3}, fixed_frac {:.4}",
            stats.changed,
            stats.examined,
            acc,
            db.fixed_fraction_since(&snapshot, |id| scenario_truth(&scenario, id))
        );
    }
}
