//! Regenerates the paper's fig20 inferentia result. Pass `--fast` for a
//! smaller configuration.

fn main() {
    println!(
        "{}",
        bench::reports::fig20_inferentia::run(bench::fast_flag())
    );
}
