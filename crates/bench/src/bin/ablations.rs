//! Regenerates the DESIGN.md ablation studies. Pass `--fast` for a
//! smaller configuration.

fn main() {
    println!("{}", bench::reports::ablations::run(bench::fast_flag()));
}
