//! Regenerates the paper's fig17 pipelined result. Pass `--fast` for a
//! smaller configuration.

fn main() {
    println!(
        "{}",
        bench::reports::fig17_pipelined::run(bench::fast_flag())
    );
}
