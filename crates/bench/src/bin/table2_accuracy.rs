//! Regenerates the paper's table2 accuracy result. Pass `--fast` for a
//! smaller configuration.

fn main() {
    println!(
        "{}",
        bench::reports::table2_accuracy::run(bench::fast_flag())
    );
}
