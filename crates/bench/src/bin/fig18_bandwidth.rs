//! Regenerates the paper's fig18 bandwidth result. Pass `--fast` for a
//! smaller configuration.

fn main() {
    println!(
        "{}",
        bench::reports::fig18_bandwidth::run(bench::fast_flag())
    );
}
