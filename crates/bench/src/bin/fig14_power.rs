//! Regenerates the paper's fig14 power result. Pass `--fast` for a
//! smaller configuration.

fn main() {
    println!("{}", bench::reports::fig14_power::run(bench::fast_flag()));
}
