//! Regenerates the paper's artifact result, then asserts the run left a
//! non-empty, well-formed telemetry snapshot behind (CI smoke check for
//! the observability path). Pass `--fast` for a smaller configuration.

fn main() {
    println!("{}", bench::reports::artifact::run(bench::fast_flag()));

    // The artifact workflow exercises FT-DMP, Check-N-Run, and online
    // inference, all of which record into the process-global registry.
    let snapshot = telemetry::global().snapshot();
    assert!(
        !snapshot.is_empty(),
        "artifact run recorded no telemetry — instrumentation regressed"
    );
    let json = snapshot.to_json();
    telemetry::export::validate_json(&json)
        .unwrap_or_else(|e| panic!("telemetry snapshot JSON malformed: {e}"));
    println!(
        "# telemetry smoke: {} series, {} bytes of well-formed JSON",
        snapshot.len(),
        json.len()
    );
}
