//! Regenerates the paper's artifact result. Pass `--fast` for a
//! smaller configuration.

fn main() {
    println!("{}", bench::reports::artifact::run(bench::fast_flag()));
}
