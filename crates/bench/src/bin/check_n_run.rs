//! Regenerates the paper's check n run result. Pass `--fast` for a
//! smaller configuration.

fn main() {
    println!("{}", bench::reports::check_n_run::run(bench::fast_flag()));
}
