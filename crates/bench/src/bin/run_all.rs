//! Regenerates every table and figure, printing each report and writing
//! them under `results/`, then dumps a cluster-wide telemetry scrape
//! (`cluster_metrics.prom` / `cluster_metrics.json`) from a small live
//! PipeStore fleet. Pass `--fast` for smaller configurations.

use dnn::Mlp;
use ndpipe::rpc::{Cluster, PipeStoreServer, ServerConfig};
use ndpipe::PipeStore;
use ndpipe_data::{ClassUniverse, LabeledDataset};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fs;
use std::path::Path;

fn main() {
    let fast = bench::fast_flag();
    let out_dir = Path::new("results");
    fs::create_dir_all(out_dir).expect("create results dir");
    for (name, report) in bench::reports::run_all(fast) {
        println!("{report}\n");
        fs::write(out_dir.join(format!("{name}.txt")), &report).expect("write report");
    }

    let lint = ndlint::run_workspace(workspace_root());
    let mut lint_report = String::new();
    for f in &lint.findings {
        lint_report.push_str(&format!("{f}\n"));
    }
    lint_report.push_str(&lint.summary());
    lint_report.push('\n');
    fs::write(out_dir.join("ndlint.txt"), &lint_report).expect("write ndlint report");
    println!("{}", lint.summary());

    let snapshot = scrape_fleet();
    let json = snapshot.to_json();
    telemetry::export::validate_json(&json).expect("cluster metrics json well-formed");
    fs::write(out_dir.join("cluster_metrics.json"), json).expect("write cluster metrics json");
    fs::write(
        out_dir.join("cluster_metrics.prom"),
        snapshot.to_prometheus(),
    )
    .expect("write cluster metrics exposition");
    eprintln!(
        "reports written to {} (cluster scrape: {} series from 2 stores)",
        out_dir.display(),
        snapshot.len()
    );
}

/// The repo checkout containing `crates/`, located from this crate's
/// manifest so `run_all` works from any cwd.
fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("bench crate lives at <root>/crates/bench")
}

/// Boots two loopback PipeStore servers, drives one feature-extraction
/// round over the `Cluster` fan-out, and returns the merged
/// per-peer-labelled scrape.
fn scrape_fleet() -> telemetry::Snapshot {
    let mut rng = StdRng::seed_from_u64(7);
    let universe = ClassUniverse::new(16, 8, 4, 0.3, &mut rng);
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for c in 0..4 {
        for _ in 0..16 {
            rows.push(universe.sample(c, &mut rng));
            labels.push(c);
        }
    }
    let dataset = LabeledDataset::new(rows, labels, 4);
    let model = Mlp::new(&[16, 24, 4], 1, &mut rng);

    let mut servers = Vec::new();
    let mut addrs = Vec::new();
    for (i, shard) in dataset.shards(2).into_iter().enumerate() {
        let server = PipeStoreServer::bind(
            PipeStore::new(i, shard),
            "127.0.0.1:0",
            ServerConfig::default(),
        )
        .expect("bind fleet server");
        addrs.push(server.local_addr().to_string());
        servers.push(server);
    }
    let cluster = Cluster::builder().connect(&addrs).expect("connect cluster");
    let fan = cluster.install_model(&model);
    assert!(
        fan.failures.is_empty(),
        "install failures: {:?}",
        fan.failures
    );
    let fan = cluster.extract_features(0, 1);
    assert!(
        fan.failures.is_empty(),
        "extract failures: {:?}",
        fan.failures
    );
    let metrics = cluster.scrape_metrics().expect("scrape cluster");
    let fan = cluster.shutdown();
    assert!(
        fan.failures.is_empty(),
        "shutdown failures: {:?}",
        fan.failures
    );
    for s in servers {
        s.shutdown().expect("server drain");
    }
    metrics.merged_labelled()
}
