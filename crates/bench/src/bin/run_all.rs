//! Regenerates every table and figure, printing each report and writing
//! them under `results/`. Pass `--fast` for smaller configurations.

use std::fs;

fn main() {
    let fast = bench::fast_flag();
    let out_dir = std::path::Path::new("results");
    fs::create_dir_all(out_dir).expect("create results dir");
    for (name, report) in bench::reports::run_all(fast) {
        println!("{report}\n");
        fs::write(out_dir.join(format!("{name}.txt")), &report)
            .expect("write report");
    }
    eprintln!("reports written to {}", out_dir.display());
}
