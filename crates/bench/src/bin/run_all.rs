//! Regenerates every table and figure, printing each report and writing
//! them under `results/`, then dumps a cluster-wide telemetry scrape
//! (`cluster_metrics.prom` / `cluster_metrics.json`) from a small live
//! PipeStore fleet. Pass `--fast` for smaller configurations.

use dnn::Mlp;
use ndpipe::rpc::server::serve_pipestore_once;
use ndpipe::rpc::{scrape_cluster, RemotePipeStore};
use ndpipe::PipeStore;
use ndpipe_data::{ClassUniverse, LabeledDataset};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fs;
use std::path::Path;
use std::sync::mpsc;

fn main() {
    let fast = bench::fast_flag();
    let out_dir = Path::new("results");
    fs::create_dir_all(out_dir).expect("create results dir");
    for (name, report) in bench::reports::run_all(fast) {
        println!("{report}\n");
        fs::write(out_dir.join(format!("{name}.txt")), &report)
            .expect("write report");
    }

    let lint = ndlint::run_workspace(workspace_root());
    let mut lint_report = String::new();
    for f in &lint.findings {
        lint_report.push_str(&format!("{f}\n"));
    }
    lint_report.push_str(&lint.summary());
    lint_report.push('\n');
    fs::write(out_dir.join("ndlint.txt"), &lint_report).expect("write ndlint report");
    println!("{}", lint.summary());

    let snapshot = scrape_fleet();
    let json = snapshot.to_json();
    telemetry::export::validate_json(&json).expect("cluster metrics json well-formed");
    fs::write(out_dir.join("cluster_metrics.json"), json).expect("write cluster metrics json");
    fs::write(out_dir.join("cluster_metrics.prom"), snapshot.to_prometheus())
        .expect("write cluster metrics exposition");
    eprintln!(
        "reports written to {} (cluster scrape: {} series from 2 stores)",
        out_dir.display(),
        snapshot.len()
    );
}

/// The repo checkout containing `crates/`, located from this crate's
/// manifest so `run_all` works from any cwd.
fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("bench crate lives at <root>/crates/bench")
}

/// Boots two loopback PipeStore servers, drives one feature-extraction
/// round over RPC, and returns the merged per-peer-labelled scrape.
fn scrape_fleet() -> telemetry::Snapshot {
    let mut rng = StdRng::seed_from_u64(7);
    let universe = ClassUniverse::new(16, 8, 4, 0.3, &mut rng);
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for c in 0..4 {
        for _ in 0..16 {
            rows.push(universe.sample(c, &mut rng));
            labels.push(c);
        }
    }
    let dataset = LabeledDataset::new(rows, labels, 4);
    let model = Mlp::new(&[16, 24, 4], 1, &mut rng);

    let mut clients = Vec::new();
    let mut handles = Vec::new();
    for (i, shard) in dataset.shards(2).into_iter().enumerate() {
        let store = PipeStore::new(i, shard);
        let (tx, rx) = mpsc::channel();
        handles.push(std::thread::spawn(move || {
            serve_pipestore_once(store, "127.0.0.1:0", move |addr| {
                tx.send(addr).expect("report addr");
            })
            .expect("server session")
        }));
        let addr = rx.recv().expect("server came up");
        clients.push(RemotePipeStore::connect(addr).expect("connect"));
    }
    for c in &mut clients {
        c.install_model(&model).expect("install model");
        c.extract_features(0, 1).expect("extract features");
    }
    let cluster = scrape_cluster(&mut clients).expect("scrape cluster");
    for c in clients {
        c.shutdown().expect("shutdown");
    }
    for h in handles {
        h.join().expect("server thread");
    }
    cluster.merged_labelled()
}
