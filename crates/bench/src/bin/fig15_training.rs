//! Regenerates the paper's fig15 training result. Pass `--fast` for a
//! smaller configuration.

fn main() {
    println!(
        "{}",
        bench::reports::fig15_training::run(bench::fast_flag())
    );
}
