//! Regenerates the paper's fig05 bottleneck result. Pass `--fast` for a
//! smaller configuration.

fn main() {
    println!(
        "{}",
        bench::reports::fig05_bottleneck::run(bench::fast_flag())
    );
}
