//! Regenerates the paper's table1 labels result. Pass `--fast` for a
//! smaller configuration.

fn main() {
    println!("{}", bench::reports::table1_labels::run(bench::fast_flag()));
}
