//! Regenerates the paper's fig11 apo result. Pass `--fast` for a
//! smaller configuration.

fn main() {
    println!("{}", bench::reports::fig11_apo::run(bench::fast_flag()));
}
