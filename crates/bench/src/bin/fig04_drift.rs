//! Regenerates the paper's fig04 drift result. Pass `--fast` for a
//! smaller configuration.

fn main() {
    println!("{}", bench::reports::fig04_drift::run(bench::fast_flag()));
}
