//! Regenerates the paper's fig16 energy result. Pass `--fast` for a
//! smaller configuration.

fn main() {
    println!("{}", bench::reports::fig16_energy::run(bench::fast_flag()));
}
