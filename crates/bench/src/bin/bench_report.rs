//! Measured benchmarks: prints the human-readable reports and writes the
//! machine-readable JSON artifacts (`results/BENCH_npe_pipeline.json`,
//! `results/BENCH_gemm_kernel.json`,
//! `results/BENCH_gemm_fast.json`,
//! `results/BENCH_telemetry_overhead.json`,
//! `results/BENCH_cluster_fanout.json`,
//! `results/BENCH_rpc_concurrency.json`,
//! `results/BENCH_placement.json`, and
//! `results/BENCH_ftdmp_pipeline.json`). Pass `--fast` for smaller
//! (noisier) configurations.

use bench::reports::{
    cluster_fanout, ftdmp_pipeline, gemm_fast, gemm_kernel, npe_pipeline, placement_rebalance,
    rpc_concurrency, telemetry_overhead,
};
use std::fs;

fn main() {
    let fast = bench::fast_flag();
    let out_dir = std::path::Path::new("results");
    fs::create_dir_all(out_dir).expect("create results dir");

    let params = if fast {
        npe_pipeline::BenchParams::fast()
    } else {
        npe_pipeline::BenchParams::full()
    };
    let m = npe_pipeline::measure_with(&params);
    println!("{}", npe_pipeline::render(&m));
    let path = out_dir.join("BENCH_npe_pipeline.json");
    fs::write(&path, npe_pipeline::to_json(&m)).expect("write benchmark json");
    println!("\n# wrote {}", path.display());

    let params = if fast {
        gemm_kernel::BenchParams::fast()
    } else {
        gemm_kernel::BenchParams::full()
    };
    let m = gemm_kernel::measure_with(&params);
    println!("\n{}", gemm_kernel::render(&m));
    let path = out_dir.join("BENCH_gemm_kernel.json");
    fs::write(&path, gemm_kernel::to_json(&m)).expect("write gemm json");
    println!("\n# wrote {}", path.display());

    let params = if fast {
        gemm_fast::BenchParams::fast()
    } else {
        gemm_fast::BenchParams::full()
    };
    let m = gemm_fast::measure_with(&params);
    println!("\n{}", gemm_fast::render(&m));
    let json = gemm_fast::to_json(&m);
    telemetry::export::validate_json(&json).expect("gemm fast json well-formed");
    let path = out_dir.join("BENCH_gemm_fast.json");
    fs::write(&path, json).expect("write gemm fast json");
    println!("\n# wrote {}", path.display());

    let params = if fast {
        telemetry_overhead::OverheadParams::fast()
    } else {
        telemetry_overhead::OverheadParams::full()
    };
    let m = telemetry_overhead::measure_with(&params);
    println!("\n{}", telemetry_overhead::render(&m));
    let json = telemetry_overhead::to_json(&m);
    telemetry::export::validate_json(&json).expect("overhead json well-formed");
    let path = out_dir.join("BENCH_telemetry_overhead.json");
    fs::write(&path, json).expect("write overhead json");
    println!("\n# wrote {}", path.display());

    let params = if fast {
        cluster_fanout::FanoutParams::fast()
    } else {
        cluster_fanout::FanoutParams::full()
    };
    let m = cluster_fanout::measure_with(&params);
    println!("\n{}", cluster_fanout::render(&m));
    let json = cluster_fanout::to_json(&m);
    telemetry::export::validate_json(&json).expect("fanout json well-formed");
    let path = out_dir.join("BENCH_cluster_fanout.json");
    fs::write(&path, json).expect("write fanout json");
    println!("\n# wrote {}", path.display());

    let params = if fast {
        rpc_concurrency::ConcurrencyParams::fast()
    } else {
        rpc_concurrency::ConcurrencyParams::full()
    };
    let m = rpc_concurrency::measure_with(&params);
    println!("\n{}", rpc_concurrency::render(&m));
    let json = rpc_concurrency::to_json(&m);
    telemetry::export::validate_json(&json).expect("rpc concurrency json well-formed");
    let path = out_dir.join("BENCH_rpc_concurrency.json");
    fs::write(&path, json).expect("write rpc concurrency json");
    println!("\n# wrote {}", path.display());

    let params = if fast {
        placement_rebalance::PlacementParams::fast()
    } else {
        placement_rebalance::PlacementParams::full()
    };
    let m = placement_rebalance::measure_with(&params);
    println!("\n{}", placement_rebalance::render(&m));
    let json = placement_rebalance::to_json(&m);
    telemetry::export::validate_json(&json).expect("placement json well-formed");
    let path = out_dir.join("BENCH_placement.json");
    fs::write(&path, json).expect("write placement json");
    println!("\n# wrote {}", path.display());

    let params = if fast {
        ftdmp_pipeline::PipelineParams::fast()
    } else {
        ftdmp_pipeline::PipelineParams::full()
    };
    let m = ftdmp_pipeline::measure_with(&params);
    println!("\n{}", ftdmp_pipeline::render(&m));
    let json = ftdmp_pipeline::to_json(&m);
    telemetry::export::validate_json(&json).expect("ftdmp pipeline json well-formed");
    let path = out_dir.join("BENCH_ftdmp_pipeline.json");
    fs::write(&path, json).expect("write ftdmp pipeline json");
    println!("\n# wrote {}", path.display());
}
