//! Measured NPE-pipeline benchmark: prints the human-readable report and
//! writes the machine-readable `results/BENCH_npe_pipeline.json` artifact.
//! Pass `--fast` for a smaller (noisier) configuration.

use bench::reports::npe_pipeline::{measure_with, render, to_json, BenchParams};
use std::fs;

fn main() {
    let params = if bench::fast_flag() {
        BenchParams::fast()
    } else {
        BenchParams::full()
    };
    let m = measure_with(&params);
    println!("{}", render(&m));

    let out_dir = std::path::Path::new("results");
    fs::create_dir_all(out_dir).expect("create results dir");
    let path = out_dir.join("BENCH_npe_pipeline.json");
    fs::write(&path, to_json(&m)).expect("write benchmark json");
    println!("\n# wrote {}", path.display());
}
