//! Regenerates the paper's fig06 ndp breakdown result. Pass `--fast` for a
//! smaller configuration.

fn main() {
    println!(
        "{}",
        bench::reports::fig06_ndp_breakdown::run(bench::fast_flag())
    );
}
