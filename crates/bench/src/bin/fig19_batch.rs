//! Regenerates the paper's fig19 batch result. Pass `--fast` for a
//! smaller configuration.

fn main() {
    println!("{}", bench::reports::fig19_batch::run(bench::fast_flag()));
}
