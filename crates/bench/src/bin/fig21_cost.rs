//! Regenerates the paper's fig21 cost result. Pass `--fast` for a
//! smaller configuration.

fn main() {
    println!("{}", bench::reports::fig21_cost::run(bench::fast_flag()));
}
