//! Regenerates the paper's fig13 inference result. Pass `--fast` for a
//! smaller configuration.

fn main() {
    println!(
        "{}",
        bench::reports::fig13_inference::run(bench::fast_flag())
    );
}
