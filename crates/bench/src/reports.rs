//! One module per paper figure/table.

pub mod ablations;
pub mod artifact;
pub mod check_n_run;
pub mod cluster_fanout;
pub mod fig04_drift;
pub mod fig05_bottleneck;
pub mod fig06_ndp_breakdown;
pub mod fig09_partition;
pub mod fig11_apo;
pub mod fig12_npe;
pub mod fig13_inference;
pub mod fig14_power;
pub mod fig15_training;
pub mod fig16_energy;
pub mod fig17_pipelined;
pub mod fig18_bandwidth;
pub mod fig19_batch;
pub mod fig20_inferentia;
pub mod fig21_cost;
pub mod ftdmp_pipeline;
pub mod gemm_fast;
pub mod gemm_kernel;
pub mod npe_pipeline;
pub mod placement_rebalance;
pub mod rpc_concurrency;
pub mod table1_labels;
pub mod table2_accuracy;
pub mod telemetry_overhead;

/// Runs every report in paper order, returning `(name, report)` pairs.
pub fn run_all(fast: bool) -> Vec<(&'static str, String)> {
    vec![
        ("fig04_drift", fig04_drift::run(fast)),
        ("fig05_bottleneck", fig05_bottleneck::run(fast)),
        ("fig06_ndp_breakdown", fig06_ndp_breakdown::run(fast)),
        ("table1_labels", table1_labels::run(fast)),
        ("fig09_partition", fig09_partition::run(fast)),
        ("fig11_apo", fig11_apo::run(fast)),
        ("fig12_npe", fig12_npe::run(fast)),
        ("fig13_inference", fig13_inference::run(fast)),
        ("fig14_power", fig14_power::run(fast)),
        ("fig15_training", fig15_training::run(fast)),
        ("fig16_energy", fig16_energy::run(fast)),
        ("fig17_pipelined", fig17_pipelined::run(fast)),
        ("table2_accuracy", table2_accuracy::run(fast)),
        ("fig18_bandwidth", fig18_bandwidth::run(fast)),
        ("fig19_batch", fig19_batch::run(fast)),
        ("fig20_inferentia", fig20_inferentia::run(fast)),
        ("fig21_cost", fig21_cost::run(fast)),
        ("npe_pipeline", npe_pipeline::run(fast)),
        ("gemm_kernel", gemm_kernel::run(fast)),
        ("gemm_fast", gemm_fast::run(fast)),
        ("telemetry_overhead", telemetry_overhead::run(fast)),
        ("cluster_fanout", cluster_fanout::run(fast)),
        ("ftdmp_pipeline", ftdmp_pipeline::run(fast)),
        ("rpc_concurrency", rpc_concurrency::run(fast)),
        ("placement_rebalance", placement_rebalance::run(fast)),
        ("check_n_run", check_n_run::run(fast)),
        ("ablations", ablations::run(fast)),
        ("artifact", artifact::run(fast)),
    ]
}
