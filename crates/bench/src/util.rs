//! Report formatting shared by every experiment binary.

/// Whether `--fast` was passed on the command line (smaller, noisier
/// configurations for smoke runs).
pub fn fast_flag() -> bool {
    std::env::args().any(|a| a == "--fast")
}

/// A plain-text experiment report: a title, TSV rows, and free-form
/// paper-vs-measured notes.
#[derive(Debug, Clone, Default)]
pub struct Report {
    lines: Vec<String>,
}

impl Report {
    /// Starts a report for a figure/table id and description.
    pub fn new(id: &str, description: &str) -> Self {
        let mut r = Report { lines: Vec::new() };
        r.lines.push(format!("== {id}: {description} =="));
        r
    }

    /// Adds the TSV header row.
    pub fn header(&mut self, cols: &[&str]) -> &mut Self {
        self.lines.push(cols.join("\t"));
        self
    }

    /// Adds one TSV data row.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        self.lines.push(cells.join("\t"));
        self
    }

    /// Adds a blank line.
    pub fn blank(&mut self) -> &mut Self {
        self.lines.push(String::new());
        self
    }

    /// Adds a paper-vs-measured note.
    pub fn note(&mut self, text: &str) -> &mut Self {
        self.lines.push(format!("# {text}"));
        self
    }

    /// Renders the report.
    pub fn render(&self) -> String {
        self.lines.join("\n")
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a float with `digits` decimals.
pub fn fmt(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}

/// Formats a fraction as a percentage with two decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}", x * 100.0)
}

/// Formats bytes in a human unit.
pub fn human_bytes(b: f64) -> String {
    if b >= 1e12 {
        format!("{:.2}TB", b / 1e12)
    } else if b >= 1e9 {
        format!("{:.2}GB", b / 1e9)
    } else if b >= 1e6 {
        format!("{:.2}MB", b / 1e6)
    } else if b >= 1e3 {
        format!("{:.2}KB", b / 1e3)
    } else {
        format!("{b:.0}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_tsv() {
        let mut r = Report::new("Fig 1", "demo");
        r.header(&["a", "b"]);
        r.row(&["1".into(), "2".into()]);
        r.note("paper: 3");
        let s = r.render();
        assert!(s.contains("== Fig 1: demo =="));
        assert!(s.contains("a\tb"));
        assert!(s.contains("1\t2"));
        assert!(s.contains("# paper: 3"));
    }

    #[test]
    fn humanized_bytes() {
        assert_eq!(human_bytes(512.0), "512B");
        assert_eq!(human_bytes(2.5e3), "2.50KB");
        assert_eq!(human_bytes(9.16e9), "9.16GB");
        assert_eq!(human_bytes(3.2e12), "3.20TB");
    }

    #[test]
    fn percent_formatting() {
        assert_eq!(pct(0.7375), "73.75");
        assert_eq!(fmt(1.23456, 2), "1.23");
    }
}
