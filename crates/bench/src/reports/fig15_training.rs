//! Fig 15: fine-tuning time vs #PipeStores against SRV-C.

use crate::util::{fmt, Report};
use cluster::energy::training_energy;
use cluster::training::{srv_training_report, training_report, TrainSetup};
use dnn::ModelProfile;
use hw::LinkSpec;

/// Regenerates Fig 15: training time over 1..20 PipeStores for the four
/// plotted models, with the SRV-C baseline, the P1 crossover and the
/// BEST (max IPS/kJ) fleet size.
pub fn run(_fast: bool) -> String {
    let link = LinkSpec::ethernet_gbps(10.0);
    let mut r = Report::new("Fig 15", "fine-tuning time (min) vs #PipeStores");
    for model in ModelProfile::figure_models() {
        let srv = srv_training_report(&model, 1_200_000, 20, 512, &link);
        r.header(&[model.name(), "NDPipe (min)", "SRV-C (min)"]);
        let mut p1 = None;
        let mut best = (0usize, 0.0f64);
        for n in 1..=20 {
            let setup = TrainSetup::paper_default(model.clone(), n);
            let rep = training_report(&setup);
            if p1.is_none() && rep.total_secs <= srv.total_secs {
                p1 = Some(n);
            }
            let eff = training_energy(&setup).ips_per_kilojoule();
            if eff > best.1 {
                best = (n, eff);
            }
            if n == 1 || n % 4 == 0 {
                r.row(&[
                    format!("n={n}"),
                    fmt(rep.total_secs / 60.0, 2),
                    fmt(srv.total_secs / 60.0, 2),
                ]);
            }
        }
        r.note(&format!(
            "{}: P1 (≤ SRV-C) at {:?} stores, BEST (max IPS/kJ) at {} stores",
            model.name(),
            p1,
            best.0
        ));
        r.blank();
    }
    r.note("paper: ResNet50/InceptionV3 cross at 3 stores, ResNeXt101 at 6;");
    r.note("gains flatten once the Tuner stage dominates");
    r.render()
}

#[cfg(test)]
mod tests {
    #[test]
    fn models_and_crossovers_present() {
        let s = super::run(true);
        assert!(s.contains("ResNeXt101"));
        assert!(s.contains("P1 (≤ SRV-C)"));
        assert!(s.contains("BEST (max IPS/kJ)"));
    }
}
