//! Packed-panel GEMM kernel benchmark: GFLOP/s of the old naive kernel
//! (`linalg::reference_matmul`) vs the packed MR×NR microkernel, serial
//! and on the shared worker pool, with a machine-readable JSON artifact
//! (`BENCH_gemm_kernel.json`).
//!
//! Every measured point is checked bit-identical against the reference
//! kernel before its time is reported — a fast wrong kernel fails the
//! bench. On single-core machines the pooled points cannot scale, so the
//! JSON records the host CPU count alongside the thread sweep (same
//! convention as `BENCH_npe_pipeline.json`).

use crate::util::{fmt, Report};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use tensor::linalg::{self, Gemm};
use tensor::pack::{MR, NR};
use tensor::Tensor;

/// Workload knobs (exposed so tests can run a tiny configuration).
#[derive(Debug, Clone, Copy)]
pub struct BenchParams {
    /// Square problem size: C[m,n] = A[m,k]·B[k,n] with m = n = k = dim.
    pub dim: usize,
    /// Timed repetitions per point (best-of is reported).
    pub reps: usize,
}

impl BenchParams {
    /// Full configuration: the acceptance-criteria 512³ problem.
    pub fn full() -> Self {
        BenchParams { dim: 512, reps: 5 }
    }

    /// Smaller (noisier) configuration for `--fast` runs.
    pub fn fast() -> Self {
        BenchParams { dim: 256, reps: 3 }
    }

    /// Tiny configuration for unit tests (debug builds).
    pub fn tiny() -> Self {
        BenchParams { dim: 48, reps: 2 }
    }
}

/// One measured kernel configuration.
#[derive(Debug, Clone)]
pub struct GemmPoint {
    /// Which kernel ("old" or "packed").
    pub kernel: &'static str,
    /// Worker threads the packed driver was allowed (1 = serial).
    pub threads: usize,
    /// Best-of-reps throughput, GFLOP/s.
    pub gflops: f64,
    /// Best-of-reps wall seconds for one multiply.
    pub secs: f64,
}

/// Everything the bench measures, ready for rendering as text or JSON.
#[derive(Debug, Clone)]
pub struct GemmMeasurements {
    /// The workload that was run.
    pub params: BenchParams,
    /// Host parallelism (`NDPIPE_THREADS` or available cores).
    pub cpus: usize,
    /// Old naive kernel, then packed at 1/2/4 threads.
    pub points: Vec<GemmPoint>,
}

impl GemmMeasurements {
    fn find(&self, kernel: &str, threads: usize) -> Option<&GemmPoint> {
        self.points
            .iter()
            .find(|p| p.kernel == kernel && p.threads == threads)
    }

    /// Serial packed-kernel throughput (the acceptance-criteria number).
    pub fn packed_serial_gflops(&self) -> f64 {
        self.find("packed", 1).map_or(0.0, |p| p.gflops)
    }

    /// Packed serial speedup over the old kernel.
    pub fn speedup_vs_old(&self) -> f64 {
        match self.find("old", 1) {
            Some(old) if old.gflops > 0.0 => self.packed_serial_gflops() / old.gflops,
            _ => 0.0,
        }
    }

    /// Best pooled throughput across the thread sweep.
    pub fn best_pooled_gflops(&self) -> f64 {
        self.points
            .iter()
            .filter(|p| p.kernel == "packed")
            .map(|p| p.gflops)
            .fold(0.0, f64::max)
    }
}

/// Times `mul()` `reps` times, checks each product bit-identical to
/// `oracle`, and returns the best (wall secs, GFLOP/s) pair.
fn time_best(p: &BenchParams, oracle: &Tensor, mul: impl Fn() -> Tensor) -> (f64, f64) {
    let flops = 2.0 * (p.dim as f64).powi(3);
    let mut best = f64::INFINITY;
    for _ in 0..p.reps {
        let t0 = Instant::now();
        let c = mul();
        let secs = t0.elapsed().as_secs_f64();
        assert_eq!(
            c.data(),
            oracle.data(),
            "kernel diverged from the reference product"
        );
        best = best.min(secs);
    }
    (best, flops / best.max(1e-12) / 1e9)
}

/// Runs the measured benchmark at the given workload size.
pub fn measure_with(p: &BenchParams) -> GemmMeasurements {
    let mut rng = StdRng::seed_from_u64(2026);
    let a = Tensor::randn(&[p.dim, p.dim], &mut rng);
    let b = Tensor::randn(&[p.dim, p.dim], &mut rng);
    // On randn data the old kernel's zero-skip never fires, so all three
    // paths are bit-identical; the oracle doubles as the warm-up run.
    let oracle = linalg::reference_matmul(&a, &b);

    let mut points = Vec::new();
    let (secs, gflops) = time_best(p, &oracle, || linalg::reference_matmul(&a, &b));
    points.push(GemmPoint {
        kernel: "old",
        threads: 1,
        gflops,
        secs,
    });
    for threads in [1usize, 2, 4] {
        let (secs, gflops) = time_best(p, &oracle, || Gemm::new(&a, &b).threads(threads).run());
        points.push(GemmPoint {
            kernel: "packed",
            threads,
            gflops,
            secs,
        });
    }

    GemmMeasurements {
        params: *p,
        cpus: ndpipe_data::deflate::configured_threads(),
        points,
    }
}

/// Renders the measurements as the machine-readable JSON artifact.
pub fn to_json(m: &GemmMeasurements) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"gemm_kernel\",\n");
    s.push_str(&format!("  \"cpus\": {},\n", m.cpus));
    s.push_str(&format!("  \"dim\": {},\n", m.params.dim));
    s.push_str(&format!("  \"mr\": {MR},\n"));
    s.push_str(&format!("  \"nr\": {NR},\n"));
    s.push_str(&format!(
        "  \"old_gflops\": {:.2},\n",
        m.find("old", 1).map_or(0.0, |p| p.gflops)
    ));
    s.push_str(&format!(
        "  \"packed_serial_gflops\": {:.2},\n",
        m.packed_serial_gflops()
    ));
    s.push_str(&format!(
        "  \"speedup_vs_old\": {:.3},\n",
        m.speedup_vs_old()
    ));
    s.push_str(&format!(
        "  \"best_pooled_gflops\": {:.2},\n",
        m.best_pooled_gflops()
    ));
    s.push_str("  \"points\": [\n");
    for (i, pt) in m.points.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"threads\": {}, \"gflops\": {:.2}, \"secs\": {:.5}}}{}\n",
            pt.kernel,
            pt.threads,
            pt.gflops,
            pt.secs,
            if i + 1 < m.points.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n");
    s.push_str("}\n");
    s
}

/// Renders the measurements as a human-readable report.
pub fn render(m: &GemmMeasurements) -> String {
    let mut r = Report::new(
        "GEMM kernel",
        "packed MRxNR microkernel vs old naive kernel (bit-identical products)",
    );
    r.note(&format!(
        "{d}x{d}x{d} f32, best of {} reps, MR={MR} NR={NR}, host parallelism: {}",
        m.params.reps,
        m.cpus,
        d = m.params.dim
    ));
    r.blank();
    r.header(&["kernel", "threads", "GFLOP/s", "secs"]);
    for pt in &m.points {
        r.row(&[
            pt.kernel.into(),
            pt.threads.to_string(),
            fmt(pt.gflops, 2),
            fmt(pt.secs, 4),
        ]);
    }
    r.blank();
    r.note(&format!(
        "packed serial speedup over old kernel: {:.2}x",
        m.speedup_vs_old()
    ));
    r.render()
}

/// Standard entry point matching the other report modules.
pub fn run(fast: bool) -> String {
    let params = if fast {
        BenchParams::fast()
    } else {
        BenchParams::full()
    };
    render(&measure_with(&params))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_measurement_is_consistent_and_json_is_well_formed() {
        let m = measure_with(&BenchParams::tiny());
        assert_eq!(m.points.len(), 4);
        assert!(m.points.iter().all(|p| p.gflops > 0.0 && p.secs > 0.0));
        assert!(m.packed_serial_gflops() > 0.0);

        let json = to_json(&m);
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces:\n{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        for key in [
            "\"bench\"",
            "\"cpus\"",
            "\"old_gflops\"",
            "\"packed_serial_gflops\"",
            "\"speedup_vs_old\"",
            "\"kernel\"",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        assert!(!json.contains("NaN") && !json.contains("inf"));

        let text = render(&m);
        assert!(text.contains("packed"));
        assert!(text.contains("GFLOP/s"));
    }
}
