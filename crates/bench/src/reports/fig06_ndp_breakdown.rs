//! Fig 6: naive-NDP vs Typical per-phase execution times (§4).

use crate::util::{fmt, Report};
use cluster::baseline::{
    baseline_fine_tune, baseline_inference, naive_ndp_fine_tune, naive_ndp_inference, BaselineHost,
};
use dnn::ModelProfile;
use hw::LinkSpec;

/// Regenerates Fig 6: each phase of fine-tuning and offline inference,
/// normalized to the Typical system.
pub fn run(_fast: bool) -> String {
    let model = ModelProfile::resnet50();
    let link = LinkSpec::ethernet_gbps(10.0);

    let mut r = Report::new(
        "Fig 6",
        "naive NDP vs Typical, per-phase times normalized to Typical",
    );

    // (a) fine-tuning.
    let typ = baseline_fine_tune(BaselineHost::Typical, &model, 4, &link);
    let ndp = naive_ndp_fine_tune(&model, 4, &link, 512);
    r.header(&["fine-tune phase", "Typical (norm)", "NDP (norm)"]);
    let norm = |x: f64, base: f64| if base > 0.0 { x / base } else { f64::INFINITY };
    for (phase, t, n) in [
        ("Read", typ.read, ndp.read),
        ("Data Trans.", typ.data_trans, ndp.data_trans),
        ("FE&CT", typ.fe_ct, ndp.fe_ct),
        ("Weight Sync.", typ.weight_sync.max(1e-12), ndp.weight_sync),
    ] {
        r.row(&[
            phase.to_string(),
            fmt(1.0, 2),
            if t > 0.0 {
                fmt(norm(n, t), 2)
            } else {
                format!("{} (new)", fmt(n * 1e3, 3))
            },
        ]);
    }
    r.blank();

    // (b) offline inference.
    let typ_i = baseline_inference(BaselineHost::Typical, &model, 4, &link);
    let ndp_i = naive_ndp_inference(&model, 4);
    r.header(&["inference phase", "Typical (norm)", "NDP (norm)"]);
    for (phase, t, n) in [
        ("Read", typ_i.read, ndp_i.read),
        ("Data Trans.", typ_i.data_trans, ndp_i.data_trans),
        ("Preproc.", typ_i.preproc, ndp_i.preproc),
        ("FE&Cl", typ_i.fe_cl, ndp_i.fe_cl),
    ] {
        r.row(&[phase.to_string(), fmt(1.0, 2), fmt(norm(n, t), 2)]);
    }
    r.blank();
    r.note("paper: NDP kills Data Trans.; fine-tuning gains a weight-sync bottleneck,");
    r.note("inference gains a preprocessing bottleneck (1 core vs 8); FE&CT ~1.36x, FE&Cl ~1.33x");
    r.render()
}

#[cfg(test)]
mod tests {
    #[test]
    fn both_panels_present() {
        let s = super::run(true);
        assert!(s.contains("Weight Sync."));
        assert!(s.contains("Preproc."));
    }
}
