//! Fig 19: impact of the inference batch size (with the ViT OOM).

use crate::util::{fmt, Report};
use dnn::ModelProfile;
use ndpipe::npe::t4_throughput_at_batch;

/// Regenerates Fig 19: one-PipeStore throughput over batch sizes 1..512
/// for the four plotted models; `OOM` marks batches that no longer fit
/// in T4 memory.
pub fn run(_fast: bool) -> String {
    let batches = [1usize, 8, 32, 128, 256, 512];
    let mut r = Report::new("Fig 19", "PipeStore throughput (KIPS) vs batch size");
    let mut header = vec!["model"];
    let batch_labels: Vec<String> = batches.iter().map(|b| format!("BS={b}")).collect();
    header.extend(batch_labels.iter().map(String::as_str));
    r.header(&header);
    for model in ModelProfile::figure_models() {
        let mut cells = vec![model.name().to_string()];
        for &b in &batches {
            cells.push(match t4_throughput_at_batch(&model, b) {
                Some(ips) => fmt(ips / 1e3, 2),
                None => "OOM".to_string(),
            });
        }
        r.row(&cells);
    }
    r.blank();
    r.note("paper: throughput saturates past BS=128 (decompression becomes the");
    r.note("bottleneck for InceptionV3); ViT hits out-of-memory at large batches");
    r.render()
}

#[cfg(test)]
mod tests {
    #[test]
    fn vit_shows_oom_and_cnn_does_not() {
        let s = super::run(true);
        assert!(s.contains("OOM"));
        let resnet_line = s.lines().find(|l| l.starts_with("ResNet50")).unwrap();
        assert!(!resnet_line.contains("OOM"));
        let vit_line = s.lines().find(|l| l.starts_with("ViT")).unwrap();
        assert!(vit_line.contains("OOM"));
    }
}
