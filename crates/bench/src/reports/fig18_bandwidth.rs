//! Fig 18: impact of network bandwidth on inference power efficiency.

use crate::util::{fmt, Report};
use cluster::energy::inference_energy;
use cluster::inference::{inference_report, InferenceSetup, InferenceVariant};
use dnn::ModelProfile;
use hw::LinkSpec;

/// Regenerates Fig 18: IPS/W of SRV-C vs NDPipe as the fabric grows from
/// 1 to 40 Gbps (ResNet50 and ResNeXt101, as the paper plots).
pub fn run(_fast: bool) -> String {
    let mut r = Report::new("Fig 18", "inference IPS/W vs network bandwidth");
    for model in [ModelProfile::resnet50(), ModelProfile::resnext101()] {
        r.header(&[
            model.name(),
            "SRV-C IPS/W",
            "NDPipe IPS/W",
            "SRV-C bottleneck",
        ]);
        let mut first = None;
        let mut last = None;
        for gbps in [1.0, 10.0, 20.0, 40.0] {
            let mk = |n: usize| InferenceSetup {
                link: LinkSpec::ethernet_gbps(gbps),
                ..InferenceSetup::paper_default(model.clone(), n)
            };
            let srv = inference_energy(InferenceVariant::SrvCompressed, &mk(4), 1_000_000);
            let ndp = inference_energy(InferenceVariant::NdPipe, &mk(8), 1_000_000);
            let bottleneck = inference_report(InferenceVariant::SrvCompressed, &mk(4)).bottleneck;
            let ratio = ndp.ips_per_watt() / srv.ips_per_watt();
            if first.is_none() {
                first = Some(ratio);
            }
            last = Some(ratio);
            r.row(&[
                format!("{gbps:.0}Gb"),
                fmt(srv.ips_per_watt(), 2),
                fmt(ndp.ips_per_watt(), 2),
                bottleneck.to_string(),
            ]);
        }
        r.note(&format!(
            "{}: NDPipe/SRV-C efficiency ratio {:.1}x at 1Gbps, {:.1}x at 40Gbps (paper: 3.7x / 1.3x)",
            model.name(),
            first.expect("at least one point"),
            last.expect("at least one point"),
        ));
        r.blank();
    }
    r.note("paper: SRV-C stops improving past 20Gbps — eight decompression cores saturate");
    r.render()
}

#[cfg(test)]
mod tests {
    #[test]
    fn bandwidth_sweep_runs() {
        let s = super::run(true);
        assert!(s.contains("1Gb"));
        assert!(s.contains("40Gb"));
        assert!(s.contains("efficiency ratio"));
    }
}
