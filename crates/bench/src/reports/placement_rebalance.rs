//! Placement self-healing: read-failover (reroute) latency and
//! rebalance throughput against real loopback `PipeStoreServer` fleets,
//! with a machine-readable artifact (`BENCH_placement.json`).
//!
//! Per fleet size the bench replicates a synthetic photo corpus R ways,
//! measures healthy read latency, kills one store *without updating the
//! map* and measures rerouted reads (the stale map still ranks the dead
//! store first for its share of the corpus), then marks the store down
//! and measures the bounded-rate rebalance sweep that re-establishes
//! the replication factor on the survivors.

use crate::util::{fmt, Report};
use ndpipe::rpc::wire::PhotoRecord;
use ndpipe::rpc::{
    Cluster, ConnectOptions, FailurePolicy, PipeStoreServer, RebalanceConfig, ServerConfig,
};
use ndpipe::{PipeStore, PlacementMap};
use ndpipe_data::{ClassUniverse, LabeledDataset};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// Workload knobs for the placement measurement.
#[derive(Debug, Clone, Copy)]
pub struct PlacementParams {
    /// Fleet sizes to measure, one sub-report each.
    pub peer_counts: &'static [usize],
    /// Replication factor of the placement map.
    pub replicas: usize,
    /// Photos replicated across each fleet.
    pub photos: u64,
    /// Raw blob bytes per photo.
    pub blob_bytes: usize,
}

impl PlacementParams {
    /// Full configuration: the acceptance setup (4- and 8-store fleets).
    pub fn full() -> Self {
        PlacementParams {
            peer_counts: &[4, 8],
            replicas: 2,
            photos: 64,
            blob_bytes: 32 << 10,
        }
    }

    /// Smaller (noisier) configuration for `--fast` runs.
    pub fn fast() -> Self {
        PlacementParams {
            peer_counts: &[4, 8],
            replicas: 2,
            photos: 24,
            blob_bytes: 8 << 10,
        }
    }

    /// Tiny configuration for unit tests (debug builds).
    pub fn tiny() -> Self {
        PlacementParams {
            peer_counts: &[3],
            replicas: 2,
            photos: 8,
            blob_bytes: 1 << 10,
        }
    }
}

/// One fleet size's measurements.
#[derive(Debug, Clone)]
pub struct FleetMeasurement {
    /// Stores in the fleet.
    pub peers: usize,
    /// Reads timed with every replica healthy.
    pub healthy_reads: usize,
    /// Mean healthy read latency, milliseconds.
    pub healthy_mean_ms: f64,
    /// Reads whose first-ranked replica was dead (failover exercised).
    pub reroute_reads: usize,
    /// Mean rerouted read latency, milliseconds.
    pub reroute_mean_ms: f64,
    /// Photos the healing sweep backfilled.
    pub rebalance_photos: u64,
    /// Payload bytes the healing sweep shipped.
    pub rebalance_bytes: u64,
    /// Wall-clock seconds of the healing sweep.
    pub rebalance_secs: f64,
}

impl FleetMeasurement {
    /// Rebalance throughput in MB/s (payload bytes over sweep time).
    pub fn rebalance_mb_per_s(&self) -> f64 {
        if self.rebalance_secs > 0.0 {
            self.rebalance_bytes as f64 / (1024.0 * 1024.0) / self.rebalance_secs
        } else {
            0.0
        }
    }
}

/// Everything the bench measures, ready for rendering.
#[derive(Debug, Clone)]
pub struct PlacementMeasurements {
    /// The workload that was run.
    pub params: PlacementParams,
    /// Per-fleet-size results, in `peer_counts` order.
    pub fleets: Vec<FleetMeasurement>,
}

fn photo(id: u64, blob_bytes: usize) -> PhotoRecord {
    PhotoRecord {
        id,
        class: (id % 8) as u32,
        day: (id % 30) as u32,
        preproc_bytes: 256,
        blob: vec![(id as u8).wrapping_mul(37).wrapping_add(11); blob_bytes],
        sidecar: vec![(id as u8) ^ 0x5a; 64],
    }
}

fn tiny_shard(rng: &mut StdRng) -> LabeledDataset {
    let u = ClassUniverse::new(8, 4, 2, 0.3, rng);
    let rows = vec![u.sample(0, rng), u.sample(1, rng)];
    LabeledDataset::new(rows, vec![0, 1], 2)
}

fn opts() -> ConnectOptions {
    ConnectOptions::new()
        .retries(1)
        .backoff(Duration::from_millis(1), Duration::from_millis(2))
}

fn measure_fleet(peers: usize, p: &PlacementParams) -> FleetMeasurement {
    let mut rng = StdRng::seed_from_u64(48_611 + peers as u64);
    let mut servers = Vec::with_capacity(peers);
    let mut addrs = Vec::with_capacity(peers);
    for i in 0..peers {
        let server = PipeStoreServer::bind(
            PipeStore::new(i, tiny_shard(&mut rng)),
            "127.0.0.1:0",
            ServerConfig::default(),
        )
        .expect("bind bench server");
        addrs.push(server.local_addr().to_string());
        servers.push(server);
    }
    let ids: Vec<u64> = (0..peers as u64).collect();
    let mut map = PlacementMap::new(&ids, p.replicas).expect("placement map");
    let cluster = Cluster::builder()
        .policy(FailurePolicy::Quorum(1))
        .connect_options(opts())
        .op_attempts(1)
        .connect(&addrs)
        .expect("connect cluster");
    let fan = cluster.publish_placement(&map);
    assert!(fan.failures.is_empty(), "publish: {:?}", fan.failures);
    for id in 0..p.photos {
        let fan = cluster.put_photo(&map, &photo(id, p.blob_bytes));
        assert!(fan.failures.is_empty(), "put: {:?}", fan.failures);
    }

    // Healthy baseline: every read lands on its first-ranked replica.
    let t0 = Instant::now();
    for id in 0..p.photos {
        cluster.get_photo(&map, id).expect("healthy read");
    }
    let healthy_reads = p.photos as usize;
    let healthy_mean_ms = t0.elapsed().as_secs_f64() * 1e3 / healthy_reads.max(1) as f64;

    // Kill store 0 but leave the map stale: reads whose first-ranked
    // replica is the corpse must fail over — that detour is the
    // reroute latency.
    let victim: Vec<u64> = (0..p.photos)
        .filter(|id| map.replicas_for(*id).first() == Some(&0))
        .collect();
    servers.remove(0).abort().expect("abort victim");
    let t0 = Instant::now();
    for id in &victim {
        cluster.get_photo(&map, *id).expect("rerouted read");
    }
    let reroute_reads = victim.len();
    let reroute_mean_ms = t0.elapsed().as_secs_f64() * 1e3 / reroute_reads.max(1) as f64;

    // Heal: mark the corpse down and re-establish R on the survivors.
    let old = map.clone();
    map.mark_down(0).expect("mark down");
    let report = cluster
        .rebalance(
            &old,
            &map,
            &RebalanceConfig {
                max_bytes_per_wave: 64 << 20,
                wave_pause: Duration::ZERO,
            },
        )
        .expect("rebalance sweep");

    cluster.shutdown();
    for s in servers {
        s.shutdown().expect("server drain");
    }

    FleetMeasurement {
        peers,
        healthy_reads,
        healthy_mean_ms,
        reroute_reads,
        reroute_mean_ms,
        rebalance_photos: report.photos_copied,
        rebalance_bytes: report.bytes_copied,
        rebalance_secs: report.elapsed.as_secs_f64(),
    }
}

/// Runs the measurement at the given workload size.
pub fn measure_with(p: &PlacementParams) -> PlacementMeasurements {
    let fleets = p
        .peer_counts
        .iter()
        .map(|&n| measure_fleet(n, p))
        .collect();
    PlacementMeasurements { params: *p, fleets }
}

/// Renders the measurements as the machine-readable JSON artifact.
pub fn to_json(m: &PlacementMeasurements) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"placement_rebalance\",\n");
    s.push_str(&format!("  \"replicas\": {},\n", m.params.replicas));
    s.push_str(&format!("  \"photos\": {},\n", m.params.photos));
    s.push_str(&format!("  \"blob_bytes\": {},\n", m.params.blob_bytes));
    s.push_str("  \"fleets\": [\n");
    for (i, f) in m.fleets.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!("      \"peers\": {},\n", f.peers));
        s.push_str(&format!("      \"healthy_reads\": {},\n", f.healthy_reads));
        s.push_str(&format!(
            "      \"healthy_mean_ms\": {:.4},\n",
            f.healthy_mean_ms
        ));
        s.push_str(&format!("      \"reroute_reads\": {},\n", f.reroute_reads));
        s.push_str(&format!(
            "      \"reroute_mean_ms\": {:.4},\n",
            f.reroute_mean_ms
        ));
        s.push_str(&format!(
            "      \"rebalance_photos\": {},\n",
            f.rebalance_photos
        ));
        s.push_str(&format!(
            "      \"rebalance_bytes\": {},\n",
            f.rebalance_bytes
        ));
        s.push_str(&format!(
            "      \"rebalance_secs\": {:.5},\n",
            f.rebalance_secs
        ));
        s.push_str(&format!(
            "      \"rebalance_mb_per_s\": {:.3}\n",
            f.rebalance_mb_per_s()
        ));
        s.push_str(if i + 1 < m.fleets.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    s.push_str("  ]\n");
    s.push_str("}\n");
    s
}

/// Renders the measurements as a human-readable report.
pub fn render(m: &PlacementMeasurements) -> String {
    let mut r = Report::new(
        "Placement self-healing",
        "read failover latency and rebalance throughput per fleet size",
    );
    r.note(&format!(
        "R = {}, {} photos x {} KiB blobs, one store killed per fleet",
        m.params.replicas,
        m.params.photos,
        m.params.blob_bytes >> 10
    ));
    r.blank();
    r.header(&[
        "peers",
        "healthy ms",
        "reroute ms",
        "reroutes",
        "heal photos",
        "heal MB/s",
    ]);
    for f in &m.fleets {
        r.row(&[
            f.peers.to_string(),
            fmt(f.healthy_mean_ms, 3),
            fmt(f.reroute_mean_ms, 3),
            f.reroute_reads.to_string(),
            f.rebalance_photos.to_string(),
            fmt(f.rebalance_mb_per_s(), 1),
        ]);
    }
    r.render()
}

/// Standard entry point matching the other report modules.
pub fn run(fast: bool) -> String {
    let params = if fast {
        PlacementParams::fast()
    } else {
        PlacementParams::full()
    };
    render(&measure_with(&params))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_measurement_produces_valid_json() {
        let m = measure_with(&PlacementParams::tiny());
        assert_eq!(m.fleets.len(), 1);
        let f = &m.fleets[0];
        assert_eq!(f.healthy_reads, 8);
        assert!(f.reroute_reads > 0, "no photo had the corpse as primary");
        assert!(f.rebalance_photos > 0, "kill must trigger backfill");
        assert!(f.rebalance_bytes > 0);
        assert!(f.healthy_mean_ms >= 0.0 && f.reroute_mean_ms > 0.0);

        let json = to_json(&m);
        telemetry::export::validate_json(&json).expect("well-formed JSON");
        for key in [
            "\"bench\"",
            "\"fleets\"",
            "\"reroute_mean_ms\"",
            "\"rebalance_mb_per_s\"",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        assert!(!json.contains("NaN") && !json.contains("inf"));

        let text = render(&m);
        assert!(text.contains("Placement self-healing"));
        assert!(text.contains("MB/s"));
    }
}
