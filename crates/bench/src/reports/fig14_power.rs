//! Fig 14: power breakdown at throughput-matched operating points.

use crate::util::{fmt, Report};
use cluster::energy::fleet_power;
use cluster::inference::{inference_report, InferenceSetup, InferenceVariant};
use dnn::ModelProfile;

/// Regenerates Fig 14: GPU/CPU/Other power of each system at the points
/// P1/P2/P3 where NDPipe matches SRV-P/SRV-C/SRV-I throughput.
pub fn run(_fast: bool) -> String {
    let mut r = Report::new(
        "Fig 14",
        "inference power (W) by component at matched-throughput points",
    );
    for model in ModelProfile::figure_models() {
        let setup4 = |v| inference_report(v, &InferenceSetup::paper_default(model.clone(), 4));
        let targets = [
            ("P1", InferenceVariant::SrvPreproc),
            ("P2", InferenceVariant::SrvCompressed),
            ("P3", InferenceVariant::SrvIdeal),
        ];
        r.header(&[
            model.name(),
            "system",
            "GPU W",
            "CPU W",
            "Other W",
            "total W",
        ]);
        for (point, srv_variant) in targets {
            let srv_ips = setup4(srv_variant).ips;
            // Match NDPipe store count to the SRV throughput.
            let n_match = (1..=60)
                .find(|&n| {
                    inference_report(
                        InferenceVariant::NdPipe,
                        &InferenceSetup::paper_default(model.clone(), n),
                    )
                    .ips >= srv_ips
                })
                .unwrap_or(60);
            for (name, variant, n) in [
                (srv_variant.label(), srv_variant, 4usize),
                ("NDPipe", InferenceVariant::NdPipe, n_match),
            ] {
                let p = fleet_power(variant, &InferenceSetup::paper_default(model.clone(), n));
                r.row(&[
                    point.to_string(),
                    format!("{name} (n={n})"),
                    fmt(p.gpu, 0),
                    fmt(p.cpu, 0),
                    fmt(p.other, 0),
                    fmt(p.total(), 0),
                ]);
            }
        }
        r.blank();
    }
    r.note("paper: NDPipe is 1.83x / 1.39x more power-efficient than SRV-P / SRV-C;");
    r.note("SRV variants waste power idling on network stalls");
    r.render()
}

#[cfg(test)]
mod tests {
    #[test]
    fn power_points_present() {
        let s = super::run(true);
        for p in ["P1", "P2", "P3"] {
            assert!(s.contains(p));
        }
        assert!(s.contains("NDPipe (n="));
    }
}
