//! §5 claim: Check-N-Run delta distribution traffic reduction.

use crate::util::{fmt, human_bytes, Report};
use dnn::Mlp;
use ndpipe::ModelDelta;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tensor::Tensor;

/// Measures the wire cost of delta model distribution versus full-model
/// distribution for a ResNet50-proportioned mini model (frozen body ≫
/// trainable head), after a realistic amount of head fine-tuning.
pub fn run(fast: bool) -> String {
    let mut rng = StdRng::seed_from_u64(2024);
    // Body/head proportions like ResNet50: ~24M frozen vs ~2M trainable
    // at full scale; here scaled down but with the same ~12x ratio.
    let dims: &[usize] = if fast {
        &[64, 256, 256, 64, 10]
    } else {
        &[128, 512, 512, 128, 100]
    };
    let split = dims.len() - 2;
    let old = Mlp::new(dims, split, &mut rng);
    let mut new = old.clone();
    let x = Tensor::randn(&[64, dims[0]], &mut rng);
    let labels: Vec<usize> = (0..64).map(|i| i % dims[dims.len() - 1]).collect();
    for _ in 0..20 {
        new.train_step(&x, &labels, 0.05, 0.9, split);
    }
    let delta = ModelDelta::between(&old, &new);
    let full_bytes = new.param_count() * 4;

    let mut r = Report::new("Check-N-Run", "compressed-delta model distribution (§5)");
    r.header(&["quantity", "value"]);
    r.row(&["full model".into(), human_bytes(full_bytes as f64)]);
    r.row(&[
        "delta on the wire".into(),
        human_bytes(delta.wire_bytes() as f64),
    ]);
    r.row(&[
        "traffic reduction".into(),
        format!("{}x", fmt(delta.traffic_reduction(), 1)),
    ]);
    r.blank();
    r.note("paper: up to 427.4x reduction — frozen layers are skipped entirely,");
    r.note("changed layers ship as 8-bit quantized, DEFLATE-compressed diffs");
    r.render()
}

#[cfg(test)]
mod tests {
    #[test]
    fn reduction_is_large() {
        let s = super::run(true);
        let line = s
            .lines()
            .find(|l| l.starts_with("traffic reduction"))
            .unwrap();
        let x: f64 = line
            .split('\t')
            .nth(1)
            .unwrap()
            .trim_end_matches('x')
            .parse()
            .unwrap();
        assert!(x > 20.0, "reduction only {x}");
    }
}
