//! Fig 11: APO's choice of PipeStore count (training time, T_diff,
//! energy efficiency vs fleet size).

use crate::util::{fmt, Report};
use cluster::energy::training_energy;
use cluster::training::TrainSetup;
use dnn::ModelProfile;
use ndpipe::apo::{best_organization, ApoInput};

/// Regenerates Fig 11: ResNet50 training time and IPS/kJ over 1..20
/// PipeStores, plus the organization Algorithm 1 picks.
pub fn run(_fast: bool) -> String {
    let input = ApoInput::paper_default(ModelProfile::resnet50());
    let result = best_organization(&input);

    let mut r = Report::new(
        "Fig 11",
        "training time, T_diff and energy efficiency vs #PipeStores (ResNet50)",
    );
    r.header(&[
        "#stores",
        "partition",
        "train time (s)",
        "T_ps (s)",
        "T_tuner (s)",
        "T_diff (s)",
        "IPS/kJ",
    ]);
    for c in &result.sweep {
        let setup = TrainSetup {
            partition: c.partition,
            ..TrainSetup::paper_default(input.model.clone(), c.n_pipestores)
        };
        let energy = training_energy(&setup);
        let cut_name = if c.partition == 0 {
            "None".to_string()
        } else {
            input.model.stages()[c.partition - 1].name.clone()
        };
        r.row(&[
            c.n_pipestores.to_string(),
            cut_name,
            fmt(c.total_secs, 1),
            fmt(c.t_ps, 1),
            fmt(c.t_tuner, 1),
            fmt(c.t_diff, 1),
            fmt(energy.ips_per_kilojoule(), 1),
        ]);
    }
    r.blank();
    r.note(&format!(
        "APO picks {} PipeStores (paper: 8); T_diff approaches zero there,",
        result.best.n_pipestores
    ));
    r.note("training time flattens beyond the pick and IPS/kJ decays as stores idle");
    r.render()
}

#[cfg(test)]
mod tests {
    #[test]
    fn sweep_and_pick_present() {
        let s = super::run(true);
        assert!(s.contains("APO picks"));
        assert!(s.contains("IPS/kJ"));
        // 20 rows.
        assert!(
            s.lines()
                .filter(|l| l.ends_with(|c: char| c.is_ascii_digit()))
                .count()
                >= 20
        );
    }
}
