//! Opt-in fast-math benchmark: the `MathPolicy::Fast` FMA/AVX-512
//! microkernels and the `MathPolicy::Int8` quantized FE path against the
//! deterministic packed oracle, with a machine-readable JSON artifact
//! (`BENCH_gemm_fast.json`).
//!
//! Three measurements, matching the fast-math acceptance criteria:
//!
//! 1. **Kernel throughput** — serial GFLOP/s of the deterministic packed
//!    kernel vs `Fast` vs `Int8` at one square problem size. `Fast` must
//!    land within rounding tolerance of the oracle before its time
//!    counts; the det point must be bit-identical.
//! 2. **End-to-end NPE** — items/s of one PipeStore's batched feature
//!    extraction under `Deterministic` vs `Fast` (same engine, same
//!    shard, only the store's math policy differs).
//! 3. **Int8 accuracy** — a Table-2-style mini drift experiment whose
//!    PipeStores extract features under `Int8`; the `Base ≥ NDPipe >
//!    Outdated` accuracy ordering must survive quantization, and the
//!    det-vs-int8 accuracy delta is recorded (and exported as the
//!    `ndpipe_quant_accuracy_delta` gauge).

use crate::util::{fmt, pct, Report};
use dnn::trainer::metrics_from_logits;
use dnn::{Mlp, TrainConfig, Trainer};
use ndpipe::ftdmp::FtdmpConfig;
use ndpipe::npe::engine::EngineConfig;
use ndpipe::{ftdmp_fine_tune, PipeStore, Tuner};
use ndpipe_data::{ClassUniverse, DatasetSpec, DriftScenario, LabeledDataset};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use tensor::linalg::{selected_kernel, Gemm};
use tensor::quant::QuantizedMatrix;
use tensor::{MathPolicy, Tensor};

/// Workload knobs (exposed so tests can run a tiny configuration).
#[derive(Debug, Clone, Copy)]
pub struct BenchParams {
    /// Square GEMM problem size (the acceptance number is 512).
    pub dim: usize,
    /// Timed repetitions per kernel point (best-of is reported).
    pub reps: usize,
    /// Shard rows for the end-to-end NPE extraction measurement.
    pub fe_rows: usize,
    /// Dataset universe of the int8 accuracy experiment.
    pub spec: DatasetSpec,
    /// Initial photo pool of the int8 accuracy experiment. The pool must
    /// be large relative to `spec` class count for the Base model to
    /// converge — an undertrained Base inverts the paper's Table 2
    /// ordering (fine-tuning on the grown pool then beats day-0 Base).
    pub pool: usize,
    /// Drift days of the accuracy experiment.
    pub days: usize,
    /// Training epochs (per fine-tune run; Base gets a 3x budget).
    pub epochs: usize,
}

impl BenchParams {
    /// Full configuration: the acceptance-criteria 512³ problem plus a
    /// paper-scale (3000-photo cifar100 pool) accuracy experiment.
    pub fn full() -> Self {
        BenchParams {
            dim: 512,
            reps: 5,
            fe_rows: 4096,
            spec: DatasetSpec::cifar100(),
            pool: 3000,
            days: 14,
            epochs: 12,
        }
    }

    /// Smaller (noisier) configuration for `--fast` runs.
    pub fn fast() -> Self {
        BenchParams {
            dim: 256,
            reps: 3,
            fe_rows: 1024,
            spec: DatasetSpec::cifar100(),
            pool: 800,
            days: 10,
            epochs: 10,
        }
    }

    /// Tiny configuration for unit tests (debug builds). Uses the
    /// 10-class tiny universe — 100-class cifar100 at a test-sized pool
    /// is pure noise and cannot resolve the variant ordering.
    pub fn tiny() -> Self {
        BenchParams {
            dim: 48,
            reps: 2,
            fe_rows: 128,
            spec: DatasetSpec::tiny(),
            pool: 300,
            days: 8,
            epochs: 10,
        }
    }
}

/// Per-policy accuracy of one experiment variant.
#[derive(Debug, Clone, Copy)]
pub struct VariantAccuracy {
    /// Which variant ("Base", "Outdated", "NDPipe").
    pub variant: &'static str,
    /// Top-1 accuracy with deterministic f32 feature extraction.
    pub det_top1: f64,
    /// Top-1 accuracy with int8 feature extraction.
    pub int8_top1: f64,
}

impl VariantAccuracy {
    /// Absolute det-vs-int8 accuracy gap.
    pub fn delta(&self) -> f64 {
        (self.det_top1 - self.int8_top1).abs()
    }
}

/// Everything the bench measures, ready for rendering as text or JSON.
#[derive(Debug, Clone)]
pub struct FastMeasurements {
    /// The workload that was run.
    pub params: BenchParams,
    /// Host parallelism (`NDPIPE_THREADS` or available cores).
    pub cpus: usize,
    /// Serial deterministic packed-kernel throughput, GFLOP/s.
    pub det_gflops: f64,
    /// Serial `Fast` throughput, GFLOP/s.
    pub fast_gflops: f64,
    /// Serial `Int8` (quantize + i8 accumulate + dequantize), GFLOP/s.
    pub int8_gflops: f64,
    /// Kernel family `Fast` dispatched to on this host.
    pub fast_kernel: &'static str,
    /// Batched-FE items/s with the store pinned to `Deterministic`.
    pub npe_det_ips: f64,
    /// Batched-FE items/s with the store pinned to `Fast`.
    pub npe_fast_ips: f64,
    /// Base / Outdated / NDPipe accuracy under det and int8 FE.
    pub accuracy: Vec<VariantAccuracy>,
}

impl FastMeasurements {
    /// Serial `Fast` speedup over the deterministic kernel — the
    /// acceptance-criteria ratio (must be ≥ 2 at 512³ on AVX-512 hosts).
    pub fn fast_speedup(&self) -> f64 {
        if self.det_gflops > 0.0 {
            self.fast_gflops / self.det_gflops
        } else {
            0.0
        }
    }

    /// End-to-end NPE extraction speedup under `Fast`.
    pub fn npe_speedup(&self) -> f64 {
        if self.npe_det_ips > 0.0 {
            self.npe_fast_ips / self.npe_det_ips
        } else {
            0.0
        }
    }

    /// Largest det-vs-int8 accuracy gap across the three variants — the
    /// value exported as `ndpipe_quant_accuracy_delta`.
    pub fn quant_accuracy_delta(&self) -> f64 {
        self.accuracy
            .iter()
            .map(VariantAccuracy::delta)
            .fold(0.0, f64::max)
    }

    fn variant(&self, name: &str) -> Option<&VariantAccuracy> {
        self.accuracy.iter().find(|v| v.variant == name)
    }

    /// Whether `Base ≥ NDPipe > Outdated` survives int8 quantization
    /// (Base is allowed a small slack against NDPipe: both are subject
    /// to run-to-run training noise).
    pub fn int8_ordering_holds(&self) -> bool {
        match (
            self.variant("Base"),
            self.variant("NDPipe"),
            self.variant("Outdated"),
        ) {
            (Some(b), Some(n), Some(o)) => {
                b.int8_top1 + 0.02 >= n.int8_top1 && n.int8_top1 > o.int8_top1
            }
            _ => false,
        }
    }
}

/// Times `mul()` `reps` times, checks each product against `oracle`
/// within `tol` (absolute, element-wise), and returns the best GFLOP/s.
fn time_best(dim: usize, reps: usize, oracle: &Tensor, tol: f32, mul: impl Fn() -> Tensor) -> f64 {
    let flops = 2.0 * (dim as f64).powi(3);
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        let c = mul();
        let secs = t0.elapsed().as_secs_f64();
        let worst = c
            .data()
            .iter()
            .zip(oracle.data())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f32, f32::max);
        assert!(
            worst <= tol,
            "kernel diverged from the oracle: worst |diff| {worst} > tol {tol}"
        );
        best = best.min(secs);
    }
    flops / best.max(1e-12) / 1e9
}

/// One PipeStore with `rows` shard rows and an installed model, for the
/// end-to-end extraction measurement (no photos needed — batched FE
/// reads preprocessed shard rows directly).
fn fe_store(p: &BenchParams, rng: &mut StdRng) -> PipeStore {
    const CLASSES: usize = 10;
    const INPUT_DIM: usize = 64;
    let universe = ClassUniverse::new(INPUT_DIM, 16, CLASSES, 0.25, rng);
    let rows: Vec<Tensor> = (0..p.fe_rows)
        .map(|i| universe.sample(i % CLASSES, rng))
        .collect();
    let labels: Vec<usize> = (0..p.fe_rows).map(|i| i % CLASSES).collect();
    let mut store = PipeStore::new(0, LabeledDataset::new(rows, labels, CLASSES));
    store.install_model(Mlp::new(&[INPUT_DIM, 96, 64, CLASSES], 2, rng));
    store
}

/// Best-of-2 batched-extraction throughput under the store's policy.
fn measure_ips(store: &PipeStore, p: &BenchParams) -> f64 {
    let cfg = EngineConfig {
        batch: 128,
        decomp_workers: 1,
        queue_depth: 256,
    };
    let mut best = 0.0f64;
    for _ in 0..2 {
        let ((features, labels), stats) = store.extract_features_batched(0..p.fe_rows, &cfg);
        assert_eq!(labels.len(), p.fe_rows);
        assert!(features.data().iter().all(|v| v.is_finite()));
        best = best.max(stats.ips());
    }
    best
}

/// Top-1 accuracy of `model` on `test` with feature extraction under
/// `policy` (the classifier head always runs deterministic f32 — only
/// the weight-freeze FE prefix is policy-dispatched, matching what a
/// PipeStore fleet actually quantizes).
fn accuracy_with(model: &Mlp, test: &LabeledDataset, policy: MathPolicy) -> f64 {
    let f = model.features_with(test.features(), policy);
    let logits = model.classify_features(&f);
    metrics_from_logits(&logits, test.labels()).top1
}

/// The Table-2-style mini drift experiment with int8 PipeStore FE.
fn int8_accuracy(p: &BenchParams, rng: &mut StdRng) -> Vec<VariantAccuracy> {
    let spec = p.spec;
    let mut scenario = DriftScenario::new(spec, p.pool, rng);
    let train_cfg = TrainConfig {
        batch: 32,
        max_epochs: p.epochs,
        ..TrainConfig::default()
    };
    // Base trains to convergence (the paper's fully-trained day-0 model);
    // the fine-tune runs get the smaller per-update budget.
    let base_trainer = Trainer::new(TrainConfig {
        max_epochs: p.epochs * 3,
        ..train_cfg
    });

    let mut base_model = Mlp::new(
        &[spec.input_dim, 48, 32, scenario.current_classes()],
        2,
        rng,
    );
    base_trainer.fit(&mut base_model, &scenario.train_set(), None, 0, rng);
    let test0 = scenario.test_set(rng);
    let base = VariantAccuracy {
        variant: "Base",
        det_top1: accuracy_with(&base_model, &test0, MathPolicy::Deterministic),
        int8_top1: accuracy_with(&base_model, &test0, MathPolicy::Int8),
    };

    for _ in 0..p.days {
        scenario.advance_day(rng);
    }
    // Out-of-range labels (emerged categories the stale model cannot
    // name) count as guaranteed misses in `metrics_from_logits`.
    let test = scenario.test_set(rng);
    let outdated = VariantAccuracy {
        variant: "Outdated",
        det_top1: accuracy_with(&base_model, &test, MathPolicy::Deterministic),
        int8_top1: accuracy_with(&base_model, &test, MathPolicy::Int8),
    };

    // NDPipe: FT-DMP fine-tuning where every store extracts int8
    // features — the deployed int8 path, not an after-the-fact cast.
    let mut model = base_model.clone();
    if scenario.current_classes() > model.num_classes() {
        model.widen_classes(scenario.current_classes(), rng);
    }
    let mut tuner = Tuner::new(model, train_cfg);
    let mut stores: Vec<PipeStore> = scenario
        .train_set()
        .shuffled(rng)
        .shards(4)
        .into_iter()
        .enumerate()
        .map(|(i, s)| {
            let mut store = PipeStore::new(i, s);
            store.set_math_policy(MathPolicy::Int8);
            store
        })
        .collect();
    ftdmp_fine_tune(
        &mut tuner,
        &mut stores,
        &FtdmpConfig {
            n_run: 3,
            epochs_per_run: p.epochs,
            train: train_cfg,
            ..FtdmpConfig::default()
        },
        rng,
    )
    .expect("experiment shards are always valid FT-DMP jobs");
    let ndpipe = VariantAccuracy {
        variant: "NDPipe",
        det_top1: accuracy_with(tuner.model(), &test, MathPolicy::Deterministic),
        int8_top1: accuracy_with(tuner.model(), &test, MathPolicy::Int8),
    };

    vec![base, outdated, ndpipe]
}

/// Runs the measured benchmark at the given workload size.
pub fn measure_with(p: &BenchParams) -> FastMeasurements {
    let mut rng = StdRng::seed_from_u64(2027);
    let a = Tensor::randn(&[p.dim, p.dim], &mut rng);
    let b = Tensor::randn(&[p.dim, p.dim], &mut rng);
    let oracle = Gemm::new(&a, &b).policy(MathPolicy::Deterministic).run();

    // Deterministic must reproduce the oracle bit-for-bit (tol 0); Fast
    // within FMA/reassociation rounding noise; Int8 within the symmetric
    // per-tensor quantization error bound.
    let amax = a.data().iter().fold(0.0f32, |m, v| m.max(v.abs()));
    let bmax = b.data().iter().fold(0.0f32, |m, v| m.max(v.abs()));
    let fast_tol = (32.0 * f32::EPSILON * amax * bmax * p.dim as f32).max(1e-6);
    let sa = amax / 127.0;
    let sb = bmax / 127.0;
    let int8_tol = p.dim as f32 * (amax * sb / 2.0 + bmax * sa / 2.0 + sa * sb / 4.0);

    let det_gflops = time_best(p.dim, p.reps, &oracle, 0.0, || {
        Gemm::new(&a, &b).policy(MathPolicy::Deterministic).run()
    });
    let fast_gflops = time_best(p.dim, p.reps, &oracle, fast_tol, || {
        Gemm::new(&a, &b).policy(MathPolicy::Fast).run()
    });
    // The int8 path is NT-layout (activations × quantized weightsᵀ), so
    // quantize Bᵀ once — the cached-weight shape `dnn::Linear` uses —
    // and time quantize-activations + i8 accumulate + dequantize.
    let bt = tensor::linalg::transpose(&b);
    let wq = QuantizedMatrix::quantize(&bt);
    let int8_gflops = time_best(p.dim, p.reps, &oracle, int8_tol, || {
        tensor::quant::matmul_nt_quant(&a, &wq)
    });

    // End-to-end: the same store, engine, and shard; only the policy
    // pinned on the store differs.
    let mut store = fe_store(p, &mut rng);
    store.set_math_policy(MathPolicy::Deterministic);
    let npe_det_ips = measure_ips(&store, p);
    store.set_math_policy(MathPolicy::Fast);
    let npe_fast_ips = measure_ips(&store, p);

    let accuracy = int8_accuracy(p, &mut rng);

    let m = FastMeasurements {
        params: *p,
        cpus: ndpipe_data::deflate::configured_threads(),
        det_gflops,
        fast_gflops,
        int8_gflops,
        fast_kernel: selected_kernel(MathPolicy::Fast).as_str(),
        npe_det_ips,
        npe_fast_ips,
        accuracy,
    };
    if telemetry::enabled() {
        telemetry::global()
            .gauge(
                "ndpipe_quant_accuracy_delta",
                "largest top-1 accuracy gap between deterministic f32 and int8 feature extraction",
            )
            .set(m.quant_accuracy_delta());
    }
    m
}

/// Renders the measurements as the machine-readable JSON artifact.
pub fn to_json(m: &FastMeasurements) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"gemm_fast\",\n");
    s.push_str(&format!("  \"cpus\": {},\n", m.cpus));
    s.push_str(&format!("  \"dim\": {},\n", m.params.dim));
    s.push_str(&format!("  \"fast_kernel\": \"{}\",\n", m.fast_kernel));
    s.push_str(&format!("  \"det_gflops\": {:.2},\n", m.det_gflops));
    s.push_str(&format!("  \"fast_gflops\": {:.2},\n", m.fast_gflops));
    s.push_str(&format!("  \"int8_gflops\": {:.2},\n", m.int8_gflops));
    s.push_str(&format!("  \"fast_speedup\": {:.3},\n", m.fast_speedup()));
    s.push_str(&format!("  \"npe_det_ips\": {:.1},\n", m.npe_det_ips));
    s.push_str(&format!("  \"npe_fast_ips\": {:.1},\n", m.npe_fast_ips));
    s.push_str(&format!("  \"npe_speedup\": {:.3},\n", m.npe_speedup()));
    s.push_str(&format!(
        "  \"quant_accuracy_delta\": {:.4},\n",
        m.quant_accuracy_delta()
    ));
    s.push_str(&format!(
        "  \"int8_ordering_holds\": {},\n",
        m.int8_ordering_holds()
    ));
    s.push_str("  \"accuracy\": [\n");
    for (i, v) in m.accuracy.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"variant\": \"{}\", \"det_top1\": {:.4}, \"int8_top1\": {:.4}}}{}\n",
            v.variant,
            v.det_top1,
            v.int8_top1,
            if i + 1 < m.accuracy.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n");
    s.push_str("}\n");
    s
}

/// Renders the measurements as a human-readable report.
pub fn render(m: &FastMeasurements) -> String {
    let mut r = Report::new(
        "Fast math",
        "opt-in FMA/AVX-512 + int8 kernels vs the deterministic packed oracle",
    );
    r.note(&format!(
        "{d}x{d}x{d} f32, best of {} reps, Fast dispatches to `{}`, host parallelism: {}",
        m.params.reps,
        m.fast_kernel,
        m.cpus,
        d = m.params.dim
    ));
    r.blank();
    r.header(&["policy", "GFLOP/s", "vs det"]);
    for (policy, gflops) in [
        ("deterministic", m.det_gflops),
        ("fast", m.fast_gflops),
        ("int8", m.int8_gflops),
    ] {
        let ratio = if m.det_gflops > 0.0 {
            gflops / m.det_gflops
        } else {
            0.0
        };
        r.row(&[policy.into(), fmt(gflops, 2), format!("{ratio:.2}x")]);
    }
    r.blank();
    r.note(&format!(
        "NPE batched FE: {:.0} items/s det -> {:.0} items/s fast ({:.2}x)",
        m.npe_det_ips,
        m.npe_fast_ips,
        m.npe_speedup()
    ));
    r.blank();
    r.header(&["variant", "det top-1", "int8 top-1"]);
    for v in &m.accuracy {
        r.row(&[v.variant.into(), pct(v.det_top1), pct(v.int8_top1)]);
    }
    r.blank();
    r.note(&format!(
        "int8 accuracy delta {:.2}pp, Base >= NDPipe > Outdated under int8: {}",
        m.quant_accuracy_delta() * 100.0,
        m.int8_ordering_holds()
    ));
    r.render()
}

/// Standard entry point matching the other report modules.
pub fn run(fast: bool) -> String {
    let params = if fast {
        BenchParams::fast()
    } else {
        BenchParams::full()
    };
    render(&measure_with(&params))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_measurement_is_consistent_and_json_is_well_formed() {
        let m = measure_with(&BenchParams::tiny());
        assert!(m.det_gflops > 0.0 && m.fast_gflops > 0.0 && m.int8_gflops > 0.0);
        assert!(m.npe_det_ips > 0.0 && m.npe_fast_ips > 0.0);
        assert_eq!(m.accuracy.len(), 3);

        // The ordering that must survive quantization (tiny scale still
        // separates the variants: drift costs the stale model real
        // accuracy, fine-tuning wins it back).
        assert!(m.int8_ordering_holds(), "{:?}", m.accuracy);
        assert!(
            m.quant_accuracy_delta() < 0.10,
            "int8 FE moved accuracy by {:.3}",
            m.quant_accuracy_delta()
        );

        let json = to_json(&m);
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces:\n{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        for key in [
            "\"bench\"",
            "\"fast_kernel\"",
            "\"det_gflops\"",
            "\"fast_speedup\"",
            "\"npe_speedup\"",
            "\"quant_accuracy_delta\"",
            "\"int8_ordering_holds\"",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        assert!(!json.contains("NaN") && !json.contains("inf"));

        let text = render(&m);
        assert!(text.contains("deterministic"));
        assert!(text.contains("NDPipe"));
    }
}
