//! Fig 21: operational cost of fine-tuning on AWS.

use crate::util::{fmt, Report};
use cluster::training::{srv_training_report, training_report, TrainSetup};
use dnn::ModelProfile;
use hw::cost::fleet_run_cost_usd;
use hw::{CostModel, InstanceSpec, LinkSpec};

/// Regenerates Fig 21(a): fine-tuning cost vs #PipeStores for NDPipe,
/// NDPipe-Inf1 and SRV-C, and 21(b)'s cost ordering note.
pub fn run(_fast: bool) -> String {
    let model = ModelProfile::resnet50();
    let link = LinkSpec::ethernet_gbps(10.0);
    let srv = srv_training_report(&model, 1_200_000, 20, 512, &link);
    // SRV-C: the p3.8xlarge host plus four storage servers.
    let srv_cost = fleet_run_cost_usd(
        CostModel::g4dn_4xlarge(),
        4,
        CostModel::p3_8xlarge(),
        srv.total_secs,
    );

    let mut r = Report::new(
        "Fig 21a",
        "fine-tuning cost (USD) vs #PipeStores (ResNet50)",
    );
    r.header(&["#stores", "NDPipe $", "NDPipe-Inf1 $", "SRV-C $"]);
    let mut ndp_best = f64::INFINITY;
    let mut inf1_best = f64::INFINITY;
    for n in (2..=20).step_by(2) {
        let t4 = training_report(&TrainSetup::paper_default(model.clone(), n));
        let ndp_cost = fleet_run_cost_usd(
            CostModel::g4dn_4xlarge(),
            n,
            CostModel::p3_2xlarge(),
            t4.total_secs,
        );
        let inf1 = training_report(&TrainSetup {
            store: InstanceSpec::pipestore_inf1(),
            ..TrainSetup::paper_default(model.clone(), n)
        });
        let inf1_cost = fleet_run_cost_usd(
            CostModel::inf1_2xlarge(),
            n,
            CostModel::p3_2xlarge(),
            inf1.total_secs,
        );
        ndp_best = ndp_best.min(ndp_cost);
        inf1_best = inf1_best.min(inf1_cost);
        r.row(&[
            n.to_string(),
            fmt(ndp_cost, 3),
            fmt(inf1_cost, 3),
            fmt(srv_cost, 3),
        ]);
    }
    r.blank();
    r.note(&format!(
        "cheapest fine-tune: NDPipe {:.2}x cheaper than SRV-C (paper 1.5x), \
         NDPipe-Inf1 {:.2}x (paper 2.5x)",
        srv_cost / ndp_best,
        srv_cost / inf1_best
    ));

    // Fig 21(b): cost-vs-accuracy ordering.
    r.blank();
    r.header(&["strategy", "relative cost", "relative accuracy"]);
    // Full training: 90 epochs of full forward+backward ≈ 3x fine-tune FE
    // work x (90/20) epochs; dominated by compute on the SRV host.
    let full_train_secs = srv.total_secs * (90.0 / 20.0) * 3.0;
    let full_cost = fleet_run_cost_usd(
        CostModel::g4dn_4xlarge(),
        4,
        CostModel::p3_8xlarge(),
        full_train_secs,
    );
    r.row(&[
        "Full training (SRV)".into(),
        fmt(full_cost / ndp_best, 1),
        "highest".into(),
    ]);
    r.row(&[
        "SRV-C fine-tune".into(),
        fmt(srv_cost / ndp_best, 2),
        "high".into(),
    ]);
    r.row(&["NDPipe fine-tune".into(), "1.00".into(), "high".into()]);
    r.row(&[
        "NDPipe-Inf1 fine-tune".into(),
        fmt(inf1_best / ndp_best, 2),
        "high".into(),
    ]);
    r.note("paper Fig 21b: full training is the most accurate but costs orders of");
    r.note("magnitude more; fine-tuning variants cluster at slightly lower accuracy");
    r.render()
}

#[cfg(test)]
mod tests {
    #[test]
    fn costs_reported_and_ndpipe_cheaper() {
        let s = super::run(true);
        assert!(s.contains("cheapest fine-tune"));
        // NDPipe at some fleet size is cheaper than SRV-C.
        let line = s
            .lines()
            .find(|l| l.contains("cheaper than SRV-C"))
            .unwrap();
        let x: f64 = line
            .split("NDPipe ")
            .nth(1)
            .unwrap()
            .split('x')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(x > 1.0, "NDPipe not cheaper: {line}");
    }
}
