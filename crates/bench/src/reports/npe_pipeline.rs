//! Executable NPE pipeline benchmark: measured serial-vs-pipelined
//! offline-inference throughput and parallel chunked-codec throughput,
//! with a machine-readable JSON artifact (`BENCH_npe_pipeline.json`).
//!
//! Unlike `fig12_npe` (the analytic capacity model), every number here is
//! wall-clock measured on the real threaded engine over real compressed
//! sidecars. On single-core machines the decode pool cannot speed up, but
//! batched FE still does (weights stream from memory once per batch
//! instead of once per photo) — the JSON records the host's CPU count so
//! scaling numbers can be read in context.

use crate::util::{fmt, Report};
use dnn::Mlp;
use ndpipe::npe::engine::EngineConfig;
use ndpipe::PipeStore;
use ndpipe_data::deflate;
use ndpipe_data::photo::{preprocessed_binary, PhotoFactory};
use ndpipe_data::{ClassUniverse, LabeledDataset};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Workload knobs (exposed so tests can run a tiny configuration).
#[derive(Debug, Clone, Copy)]
pub struct BenchParams {
    /// Photos stored on the PipeStore.
    pub photos: usize,
    /// Preprocessed-binary bytes per photo.
    pub sidecar_bytes: usize,
    /// Model input dimension (= shard feature dimension).
    pub input_dim: usize,
    /// Hidden widths of the local model replica.
    pub hidden: [usize; 2],
    /// Shard rows backing classification inputs.
    pub shard_rows: usize,
    /// Classes.
    pub classes: usize,
    /// Bytes of the codec thread-sweep input.
    pub codec_bytes: usize,
}

impl BenchParams {
    /// Full configuration: ≥512 photos, paper-like 1 MiB-class sidecars.
    pub fn full() -> Self {
        BenchParams {
            photos: 512,
            sidecar_bytes: 16 * 1024,
            input_dim: 512,
            hidden: [1024, 512],
            shard_rows: 64,
            classes: 16,
            codec_bytes: 16 * 1024 * 1024,
        }
    }

    /// Smaller (noisier) configuration for `--fast` runs.
    pub fn fast() -> Self {
        BenchParams {
            photos: 128,
            sidecar_bytes: 8 * 1024,
            input_dim: 256,
            hidden: [512, 256],
            shard_rows: 32,
            classes: 8,
            codec_bytes: 4 * 1024 * 1024,
        }
    }

    /// Tiny configuration for unit tests (debug builds).
    pub fn tiny() -> Self {
        BenchParams {
            photos: 24,
            sidecar_bytes: 1024,
            input_dim: 32,
            hidden: [48, 32],
            shard_rows: 8,
            classes: 4,
            codec_bytes: 192 * 1024,
        }
    }
}

/// One pipelined-engine measurement.
#[derive(Debug, Clone, Copy)]
pub struct PipelinePoint {
    /// Decode-pool worker count.
    pub decomp_workers: usize,
    /// Measured images/second.
    pub ips: f64,
    /// Wall-clock seconds.
    pub wall_secs: f64,
    /// `[load, decode, fe]` stage occupancy.
    pub occupancy: [f64; 3],
}

/// One codec thread-sweep measurement.
#[derive(Debug, Clone, Copy)]
pub struct CodecPoint {
    /// Worker threads.
    pub threads: usize,
    /// Chunked compression throughput over the raw input, MB/s.
    pub compress_mb_s: f64,
    /// Chunked decompression throughput (raw output bytes), MB/s.
    pub decompress_mb_s: f64,
}

/// Everything the bench measures, ready for rendering as text or JSON.
#[derive(Debug, Clone)]
pub struct NpeMeasurements {
    /// The workload that was run.
    pub params: BenchParams,
    /// Host parallelism (`NDPIPE_THREADS` or available cores).
    pub cpus: usize,
    /// Serial reference: seconds for all photos.
    pub serial_secs: f64,
    /// Serial reference throughput, images/second.
    pub serial_ips: f64,
    /// Pipelined engine at 1/2/4 decode workers (batch 128).
    pub pipelined: Vec<PipelinePoint>,
    /// Codec throughput at 1/2/4 worker threads.
    pub codec: Vec<CodecPoint>,
}

impl NpeMeasurements {
    /// Best pipelined throughput across the worker sweep.
    pub fn best_pipelined_ips(&self) -> f64 {
        self.pipelined.iter().map(|p| p.ips).fold(0.0, f64::max)
    }

    /// Best pipelined speedup over the serial reference.
    pub fn speedup(&self) -> f64 {
        if self.serial_ips > 0.0 {
            self.best_pipelined_ips() / self.serial_ips
        } else {
            0.0
        }
    }

    /// Decompression speedup of the widest sweep point over 1 thread.
    pub fn codec_decompress_speedup(&self) -> f64 {
        let one = self.codec.iter().find(|c| c.threads == 1);
        let top = self.codec.iter().max_by_key(|c| c.threads);
        match (one, top) {
            (Some(a), Some(b)) if a.decompress_mb_s > 0.0 => b.decompress_mb_s / a.decompress_mb_s,
            _ => 0.0,
        }
    }
}

/// Builds the benchmark world: one PipeStore with a model replica and
/// `p.photos` stored photos carrying real compressed preprocessed sidecars.
/// Shared with the `telemetry_overhead` report so both benches measure the
/// same workload.
pub(crate) fn build_store(p: &BenchParams, rng: &mut StdRng) -> PipeStore {
    let universe = ClassUniverse::new(p.input_dim, 16, p.classes, 0.25, rng);
    let rows: Vec<tensor::Tensor> = (0..p.shard_rows)
        .map(|i| universe.sample(i % p.classes, rng))
        .collect();
    let labels: Vec<usize> = (0..p.shard_rows).map(|i| i % p.classes).collect();
    let shard = LabeledDataset::new(rows, labels, p.classes);
    let mut store = PipeStore::new(0, shard);
    store.install_model(Mlp::new(
        &[p.input_dim, p.hidden[0], p.hidden[1], p.classes],
        2,
        rng,
    ));
    let mut factory = PhotoFactory::new(4096);
    for i in 0..p.photos {
        let photo = factory.make(i % p.classes, 0, rng);
        store.store_photo(photo, preprocessed_binary(p.sidecar_bytes, rng));
    }
    store
}

/// Measures just the engine (no codec sweep): serial seconds plus one
/// pipelined run at `workers` decode workers. Used by the `fig12_npe`
/// report to put measured bars next to the analytic ones.
pub fn measure_engine(p: &BenchParams, workers: usize) -> (f64, PipelinePoint) {
    let mut rng = StdRng::seed_from_u64(1207);
    let store = build_store(p, &mut rng);
    let t0 = Instant::now();
    let serial = store.offline_inference_serial();
    let serial_secs = t0.elapsed().as_secs_f64();
    let cfg = EngineConfig {
        batch: 128,
        decomp_workers: workers,
        queue_depth: 256,
    };
    let (out, stats) = store.offline_inference_pipelined(&cfg);
    assert_eq!(out, serial, "pipelined result diverged from serial");
    (
        serial_secs,
        PipelinePoint {
            decomp_workers: workers,
            ips: stats.ips(),
            wall_secs: stats.wall_secs,
            occupancy: stats.occupancies(),
        },
    )
}

/// Runs the measured benchmark at the given workload size.
pub fn measure_with(p: &BenchParams) -> NpeMeasurements {
    let mut rng = StdRng::seed_from_u64(1207);
    let store = build_store(p, &mut rng);

    // Serial reference: one photo at a time, one forward per photo.
    let t0 = Instant::now();
    let serial = store.offline_inference_serial();
    let serial_secs = t0.elapsed().as_secs_f64();
    let serial_ips = p.photos as f64 / serial_secs.max(1e-9);

    // Pipelined engine across decode-pool sizes.
    let mut pipelined = Vec::new();
    for workers in [1usize, 2, 4] {
        let cfg = EngineConfig {
            batch: 128,
            decomp_workers: workers,
            queue_depth: 256,
        };
        let (out, stats) = store.offline_inference_pipelined(&cfg);
        assert_eq!(out, serial, "pipelined result diverged from serial");
        pipelined.push(PipelinePoint {
            decomp_workers: workers,
            ips: stats.ips(),
            wall_secs: stats.wall_secs,
            occupancy: stats.occupancies(),
        });
    }

    // Codec thread sweep over one big photo-like buffer.
    let data = preprocessed_binary(p.codec_bytes, &mut rng);
    let mb = data.len() as f64 / 1e6;
    let mut codec = Vec::new();
    for threads in [1usize, 2, 4] {
        let t0 = Instant::now();
        let packed = deflate::compress_chunked_with(&data, deflate::DEFAULT_CHUNK_SIZE, threads);
        let compress_mb_s = mb / t0.elapsed().as_secs_f64().max(1e-9);
        let t0 = Instant::now();
        let restored = deflate::decompress_framed_with(&packed, threads).expect("codec roundtrip");
        let decompress_mb_s = mb / t0.elapsed().as_secs_f64().max(1e-9);
        assert_eq!(restored.len(), data.len(), "codec roundtrip length");
        codec.push(CodecPoint {
            threads,
            compress_mb_s,
            decompress_mb_s,
        });
    }

    NpeMeasurements {
        params: *p,
        cpus: deflate::configured_threads(),
        serial_secs,
        serial_ips,
        pipelined,
        codec,
    }
}

/// Renders the measurements as the machine-readable JSON artifact.
pub fn to_json(m: &NpeMeasurements) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"npe_pipeline\",\n");
    s.push_str(&format!("  \"cpus\": {},\n", m.cpus));
    s.push_str(&format!("  \"photos\": {},\n", m.params.photos));
    s.push_str(&format!(
        "  \"sidecar_bytes\": {},\n",
        m.params.sidecar_bytes
    ));
    s.push_str(&format!("  \"serial_ips\": {:.2},\n", m.serial_ips));
    s.push_str(&format!(
        "  \"pipelined_ips\": {:.2},\n",
        m.best_pipelined_ips()
    ));
    s.push_str(&format!("  \"speedup_vs_serial\": {:.3},\n", m.speedup()));
    s.push_str("  \"pipelined\": [\n");
    for (i, pt) in m.pipelined.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"decomp_workers\": {}, \"ips\": {:.2}, \"wall_secs\": {:.4}, \
             \"occupancy\": {{\"load\": {:.3}, \"decode\": {:.3}, \"fe\": {:.3}}}}}{}\n",
            pt.decomp_workers,
            pt.ips,
            pt.wall_secs,
            pt.occupancy[0],
            pt.occupancy[1],
            pt.occupancy[2],
            if i + 1 < m.pipelined.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"codec\": {\n");
    s.push_str(&format!(
        "    \"input_mb\": {:.2},\n",
        m.params.codec_bytes as f64 / 1e6
    ));
    s.push_str(&format!(
        "    \"chunk_bytes\": {},\n",
        deflate::DEFAULT_CHUNK_SIZE
    ));
    s.push_str("    \"points\": [\n");
    for (i, pt) in m.codec.iter().enumerate() {
        s.push_str(&format!(
            "      {{\"threads\": {}, \"compress_mb_s\": {:.2}, \"decompress_mb_s\": {:.2}}}{}\n",
            pt.threads,
            pt.compress_mb_s,
            pt.decompress_mb_s,
            if i + 1 < m.codec.len() { "," } else { "" }
        ));
    }
    s.push_str("    ],\n");
    s.push_str(&format!(
        "    \"decompress_speedup_widest\": {:.3}\n",
        m.codec_decompress_speedup()
    ));
    s.push_str("  }\n");
    s.push_str("}\n");
    s
}

/// Renders the measurements as a human-readable report.
pub fn render(m: &NpeMeasurements) -> String {
    let mut r = Report::new(
        "NPE pipeline",
        "measured 3-stage engine vs serial reference (real codec, real forwards)",
    );
    r.note(&format!(
        "host parallelism: {} (NDPIPE_THREADS or available cores)",
        m.cpus
    ));
    r.blank();
    r.header(&[
        "path",
        "decomp workers",
        "IPS",
        "wall s",
        "occ load/decode/fe",
    ]);
    r.row(&[
        "serial".into(),
        "1".into(),
        fmt(m.serial_ips, 1),
        fmt(m.serial_secs, 3),
        "-".into(),
    ]);
    for pt in &m.pipelined {
        r.row(&[
            "pipelined".into(),
            pt.decomp_workers.to_string(),
            fmt(pt.ips, 1),
            fmt(pt.wall_secs, 3),
            format!(
                "{}/{}/{}",
                fmt(pt.occupancy[0], 2),
                fmt(pt.occupancy[1], 2),
                fmt(pt.occupancy[2], 2)
            ),
        ]);
    }
    r.blank();
    r.note(&format!(
        "best pipelined speedup over serial: {:.2}x ({} photos, {} KiB sidecars)",
        m.speedup(),
        m.params.photos,
        m.params.sidecar_bytes / 1024
    ));
    r.blank();
    r.header(&["codec threads", "compress MB/s", "decompress MB/s"]);
    for pt in &m.codec {
        r.row(&[
            pt.threads.to_string(),
            fmt(pt.compress_mb_s, 1),
            fmt(pt.decompress_mb_s, 1),
        ]);
    }
    r.note(&format!(
        "chunked decompression speedup at widest sweep point: {:.2}x",
        m.codec_decompress_speedup()
    ));
    r.render()
}

/// Standard entry point matching the other report modules.
pub fn run(fast: bool) -> String {
    let params = if fast {
        BenchParams::fast()
    } else {
        BenchParams::full()
    };
    render(&measure_with(&params))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_measurement_is_consistent_and_json_is_well_formed() {
        let m = measure_with(&BenchParams::tiny());
        assert!(m.serial_ips > 0.0);
        assert_eq!(m.pipelined.len(), 3);
        assert_eq!(m.codec.len(), 3);
        assert!(m.best_pipelined_ips() > 0.0);

        let json = to_json(&m);
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces:\n{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        for key in [
            "\"bench\"",
            "\"serial_ips\"",
            "\"pipelined_ips\"",
            "\"speedup_vs_serial\"",
            "\"decomp_workers\"",
            "\"compress_mb_s\"",
            "\"decompress_speedup_widest\"",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        assert!(!json.contains("NaN") && !json.contains("inf"));

        let text = render(&m);
        assert!(text.contains("pipelined"));
        assert!(text.contains("codec threads"));
    }
}
