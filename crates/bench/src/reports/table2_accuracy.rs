//! Table 2: Base / Outdated / NDPipe / Full accuracy across datasets and
//! model capacities.

use crate::util::{pct, Report};
use ndpipe::experiment::{table2_row, ExperimentConfig};
use ndpipe_data::DatasetSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Mini-model capacities standing in for the paper's five architectures,
/// ordered as Table 2 lists them (capacity tracks the real models'
/// relative strength).
fn capacities() -> Vec<(&'static str, Vec<usize>)> {
    vec![
        ("ShuffleNetV2", vec![40, 32]),
        ("ResNet50", vec![72, 56]),
        ("InceptionV3", vec![80, 56]),
        ("ResNeXt101", vec![104, 72]),
        ("ViT", vec![144, 96]),
    ]
}

/// Regenerates Table 2 over the three dataset families and five model
/// capacities. In fast mode only ResNet50-on-CIFAR100 runs.
pub fn run(fast: bool) -> String {
    let mut cfg = if fast {
        ExperimentConfig::fast()
    } else {
        ExperimentConfig::paper()
    };
    let mut rng = StdRng::seed_from_u64(2024);
    let mut r = Report::new(
        "Table 2",
        "model accuracy (%): Base / Outdated / NDPipe / Full",
    );
    let datasets = if fast {
        vec![DatasetSpec::cifar100()]
    } else {
        DatasetSpec::paper_benchmarks().to_vec()
    };
    let caps = if fast {
        capacities()[1..2].to_vec()
    } else {
        capacities()
    };
    for spec in datasets {
        r.header(&[spec.name, "variant", "top-1", "top-5"]);
        for (model_name, widths) in &caps {
            cfg.feature_widths = widths.clone();
            let row = table2_row(spec, &cfg, 10, &mut rng);
            for (variant, m) in [
                ("Base", row.base),
                ("Outdated", row.outdated),
                ("NDPipe", row.ndpipe),
                ("Full", row.full),
            ] {
                r.row(&[
                    model_name.to_string(),
                    variant.to_string(),
                    pct(m.top1),
                    pct(m.top5),
                ]);
            }
        }
        r.blank();
    }
    r.note("paper: NDPipe beats Outdated on every dataset (avg +1.7pp top-1,");
    r.note("+2.4pp top-5) and trails Full by ~2.3pp top-1 at >300x less training time");
    r.render()
}

#[cfg(test)]
mod tests {
    #[test]
    fn fast_mode_runs_one_cell() {
        let s = super::run(true);
        assert!(s.contains("cifar100-like"));
        assert!(s.contains("NDPipe"));
        assert!(s.contains("Outdated"));
    }
}
