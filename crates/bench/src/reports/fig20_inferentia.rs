//! Fig 20: NDPipe on AWS Inferentia (NeuronCoreV1) PipeStores.

use crate::util::{fmt, Report};
use cluster::energy::{inference_energy, srv_training_energy, training_energy};
use cluster::inference::{inference_report, InferenceSetup, InferenceVariant};
use cluster::training::{srv_training_report, training_report, TrainSetup};
use dnn::ModelProfile;
use hw::{InstanceSpec, LinkSpec};

/// Regenerates Fig 20: offline-inference and fine-tuning scaling of
/// NDPipe-Inf1 vs SRV-C, plus the power/energy-efficiency comparison.
pub fn run(_fast: bool) -> String {
    let link = LinkSpec::ethernet_gbps(10.0);
    let mut r = Report::new("Fig 20", "NDPipe on Inferentia (NeuronCoreV1) vs SRV-C");

    for model in [ModelProfile::resnet50(), ModelProfile::resnext101()] {
        // (a) offline inference crossover.
        let srv_ips = inference_report(
            InferenceVariant::SrvCompressed,
            &InferenceSetup::paper_default(model.clone(), 4),
        )
        .ips;
        let inf_cross = (1..=40)
            .find(|&n| {
                inference_report(
                    InferenceVariant::NdPipeInf1,
                    &InferenceSetup::paper_default(model.clone(), n),
                )
                .ips >= srv_ips
            })
            .unwrap_or(40);

        // (b) fine-tuning crossover with Inferentia stores.
        let srv_time = srv_training_report(&model, 1_200_000, 20, 512, &link).total_secs;
        let inf1_setup = |n: usize| TrainSetup {
            store: InstanceSpec::pipestore_inf1(),
            ..TrainSetup::paper_default(model.clone(), n)
        };
        let ft_cross = (1..=40)
            .find(|&n| training_report(&inf1_setup(n)).total_secs <= srv_time)
            .unwrap_or(40);

        // Efficiency at the crossovers.
        let e_srv_inf = inference_energy(
            InferenceVariant::SrvCompressed,
            &InferenceSetup::paper_default(model.clone(), 4),
            1_000_000,
        );
        let e_inf1 = inference_energy(
            InferenceVariant::NdPipeInf1,
            &InferenceSetup::paper_default(model.clone(), inf_cross),
            1_000_000,
        );
        let e_srv_ft =
            srv_training_energy(&model, 1_200_000, 20, 512, &link, 4).ips_per_kilojoule();
        let e_inf1_ft = training_energy(&inf1_setup(ft_cross)).ips_per_kilojoule();

        r.header(&[model.name(), "value"]);
        r.row(&[
            "inference crossover vs SRV-C".into(),
            format!("{inf_cross} stores (paper: 11–16)"),
        ]);
        r.row(&[
            "fine-tune crossover vs SRV-C".into(),
            format!("{ft_cross} stores (paper: 8–13)"),
        ]);
        r.row(&[
            "inference power efficiency".into(),
            format!(
                "{:.2}x SRV-C (paper ~1.17x)",
                e_inf1.ips_per_watt() / e_srv_inf.ips_per_watt()
            ),
        ]);
        r.row(&[
            "fine-tune energy efficiency".into(),
            format!("{:.2}x SRV-C (paper ~1.5x)", e_inf1_ft / e_srv_ft),
        ]);
        r.row(&[
            "NeuronCore vs T4 throughput".into(),
            fmt(hw::GpuSpec::neuron_core_v1().dnn_factor, 2),
        ]);
        r.blank();
    }
    r.note("NeuronCoreV1 is slower than a T4 but wins on perf/W; the fleet needs");
    r.note("more stores to match SRV-C yet still draws less power");
    r.render()
}

#[cfg(test)]
mod tests {
    #[test]
    fn crossovers_and_efficiency_reported() {
        let s = super::run(true);
        assert!(s.contains("inference crossover"));
        assert!(s.contains("fine-tune crossover"));
        assert!(s.contains("power efficiency"));
    }
}
