//! Fig 17: pipelined FT-DMP — wall-time savings vs accuracy.

use crate::util::{fmt, pct, Report};
use cluster::training::{training_report, TrainSetup};
use dnn::ModelProfile;
use ndpipe::experiment::{pipelined_accuracy, ExperimentConfig};
use ndpipe_data::DatasetSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Regenerates Fig 17: for `N_run` in 1..=4, the simulated training-time
/// reduction (cluster timeline) and the measured accuracy of real
/// pipelined FT-DMP on the mini model (4 PipeStores).
pub fn run(fast: bool) -> String {
    let mut r = Report::new(
        "Fig 17",
        "pipelined FT-DMP: time reduction and accuracy vs N_run (ResNet50, 4 stores)",
    );

    // Simulated wall-time at the APO-balanced fleet (stages comparable).
    let balanced = TrainSetup::paper_default(ModelProfile::resnet50(), 8);
    let t1 = training_report(&TrainSetup {
        n_run: 1,
        ..balanced.clone()
    })
    .total_secs;

    // Functional accuracy on the mini model.
    let cfg = if fast {
        ExperimentConfig::fast()
    } else {
        ExperimentConfig::paper()
    };
    let mut rng = StdRng::seed_from_u64(2024);
    let total_epochs = cfg.update_epochs.max(4);
    let acc = pipelined_accuracy(
        DatasetSpec::imagenet_1k(),
        &cfg,
        4,
        total_epochs,
        &[1, 2, 3, 4],
        &mut rng,
    );

    r.header(&["N_run", "train time (s)", "time saved", "top-1 %"]);
    for &(n_run, top1) in &acc {
        let t = training_report(&TrainSetup {
            n_run,
            ..balanced.clone()
        })
        .total_secs;
        r.row(&[
            n_run.to_string(),
            fmt(t, 1),
            format!("{:.0}%", (1.0 - t / t1) * 100.0),
            pct(top1),
        ]);
    }
    r.blank();
    r.note("paper: N_run=2 saves 23%, N_run=3 saves 32%; accuracy 71.61 / 71.55 /");
    r.note("71.52%, dropping to 70.36% at N_run=4 (catastrophic forgetting on small runs)");
    r.render()
}

#[cfg(test)]
mod tests {
    #[test]
    fn four_runs_reported() {
        let s = super::run(true);
        for n in 1..=4 {
            assert!(
                s.lines().any(|l| l.starts_with(&n.to_string())),
                "missing N_run={n}"
            );
        }
        assert!(s.contains("time saved"));
    }
}
