//! Cross-session dynamic batching vs per-session inference: many
//! pipelining Tuner sessions firing `Infer` rows at one loopback
//! `PipeStoreServer`, once with coalescing disabled (every row is its
//! own single-row forward — the per-session baseline) and once with the
//! event loop's batch window on. Writes the machine-readable artifact
//! `results/BENCH_rpc_concurrency.json`.
//!
//! `NDPIPE_THREADS` is pinned to 1 so each forward pass is serial: the
//! win reported at high session counts is genuine batching (one `[n, d]`
//! GEMM amortizing per-call overhead over `n` rows), not the tensor pool
//! racing itself. p99 latency comes from the server's own
//! `ndpipe_rpc_server_op_seconds{op="infer"}` histogram, so the artifact
//! records what the telemetry path records — not a bench-side stopwatch.

use crate::util::{fmt, Report};
use dnn::Mlp;
use ndpipe::online::BatchPolicy;
use ndpipe::rpc::{ConnectOptions, PipeStoreServer, RemotePipeStore, ServerConfig};
use ndpipe::PipeStore;
use ndpipe_data::{ClassUniverse, LabeledDataset};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};
use tensor::Tensor;

/// Workload knobs for the concurrency sweep.
#[derive(Debug, Clone)]
pub struct ConcurrencyParams {
    /// Concurrent session counts to sweep (ascending).
    pub session_counts: Vec<usize>,
    /// `Infer` rows each session sends.
    pub infers_per_session: usize,
    /// Client pipelining window (in-flight rows per session).
    pub window: usize,
    /// Input feature dimension (also the model's hidden width).
    pub input_dim: usize,
    /// Label-space width of the synthetic corpus.
    pub classes: usize,
}

impl ConcurrencyParams {
    /// Full configuration: the acceptance setup (batching must win at
    /// the 64-session point).
    pub fn full() -> Self {
        ConcurrencyParams {
            session_counts: vec![1, 8, 64],
            infers_per_session: 192,
            window: 8,
            input_dim: 32,
            classes: 8,
        }
    }

    /// Smaller (noisier) configuration for `--fast` runs.
    pub fn fast() -> Self {
        ConcurrencyParams {
            session_counts: vec![1, 8, 64],
            infers_per_session: 64,
            window: 8,
            input_dim: 16,
            classes: 4,
        }
    }

    /// Tiny configuration for unit tests (debug builds).
    pub fn tiny() -> Self {
        ConcurrencyParams {
            session_counts: vec![1, 4],
            infers_per_session: 16,
            window: 4,
            input_dim: 16,
            classes: 4,
        }
    }
}

/// One (mode, session-count) sweep cell.
#[derive(Debug, Clone)]
pub struct Cell {
    /// `"baseline"` (coalescing off) or `"batched"`.
    pub mode: &'static str,
    /// Concurrent sessions driving the server.
    pub sessions: usize,
    /// Total `Infer` rows answered.
    pub rows: usize,
    /// Wall seconds from release barrier to last session joined.
    pub wall_secs: f64,
    /// Rows per second over the whole fleet.
    pub rps: f64,
    /// p99 of `ndpipe_rpc_server_op_seconds{op="infer"}` — for the
    /// batched mode this is arrival-to-completion, so it *includes* the
    /// batch window delay.
    pub p99_secs: f64,
    /// Mean rows per coalesced batch (1.0 in baseline mode).
    pub mean_batch: f64,
}

/// Everything the bench measures, ready for rendering as text or JSON.
#[derive(Debug, Clone)]
pub struct ConcurrencyMeasurements {
    pub params: ConcurrencyParams,
    /// Physical parallelism available to server + sessions.
    pub cpus: usize,
    /// Sweep cells, baseline and batched interleaved per session count.
    pub cells: Vec<Cell>,
}

impl ConcurrencyMeasurements {
    fn cell(&self, mode: &str, sessions: usize) -> Option<&Cell> {
        self.cells
            .iter()
            .find(|c| c.mode == mode && c.sessions == sessions)
    }

    /// The largest swept session count.
    pub fn max_sessions(&self) -> usize {
        self.params
            .session_counts
            .iter()
            .copied()
            .max()
            .unwrap_or(1)
    }

    /// Baseline throughput at the largest session count.
    pub fn baseline_rps_at_max(&self) -> f64 {
        self.cell("baseline", self.max_sessions())
            .map_or(0.0, |c| c.rps)
    }

    /// Batched throughput at the largest session count.
    pub fn batched_rps_at_max(&self) -> f64 {
        self.cell("batched", self.max_sessions())
            .map_or(0.0, |c| c.rps)
    }

    /// The acceptance bar: with ≥ 64 concurrent sessions, cross-session
    /// batching must beat the per-session baseline outright.
    pub fn pass(&self) -> bool {
        self.batched_rps_at_max() > self.baseline_rps_at_max()
    }
}

/// Runs the measurement at the given workload size. Pins
/// `NDPIPE_THREADS=1` while the servers are alive and restores the prior
/// value before returning (all server threads are joined first).
pub fn measure_with(p: &ConcurrencyParams) -> ConcurrencyMeasurements {
    let prior = std::env::var("NDPIPE_THREADS").ok();
    std::env::set_var("NDPIPE_THREADS", "1");
    let m = measure_pinned(p);
    match prior {
        Some(v) => std::env::set_var("NDPIPE_THREADS", v),
        None => std::env::remove_var("NDPIPE_THREADS"),
    }
    m
}

fn corpus(p: &ConcurrencyParams, rng: &mut StdRng) -> LabeledDataset {
    let u = ClassUniverse::new(p.input_dim, 8, p.classes, 0.3, rng);
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for c in 0..p.classes {
        for _ in 0..8 {
            rows.push(u.sample(c, rng));
            labels.push(c);
        }
    }
    LabeledDataset::new(rows, labels, p.classes)
}

/// Drives one sweep cell: a fresh server in `mode`, `sessions` client
/// threads each pushing `infers_per_session` rows through a pipelined
/// window, wall-clocked from the release barrier.
fn run_cell(
    p: &ConcurrencyParams,
    model: &Arc<Mlp>,
    coalesce: bool,
    sessions: usize,
    rng: &mut StdRng,
) -> Cell {
    let cfg = ServerConfig {
        coalesce,
        batch: BatchPolicy::default(),
        ..ServerConfig::default()
    };
    let server = PipeStoreServer::bind(PipeStore::new(0, corpus(p, rng)), "127.0.0.1:0", cfg)
        .expect("bind bench server");
    let addr = server.local_addr();
    {
        let mut c = RemotePipeStore::connect(addr).expect("installer connect");
        c.install_model(model).expect("install");
        c.shutdown().expect("installer end");
    }

    let start = Arc::new(Barrier::new(sessions + 1));
    let dim = p.input_dim;
    let per = p.infers_per_session;
    let window = p.window;
    let mut handles = Vec::with_capacity(sessions);
    for s in 0..sessions {
        let start = Arc::clone(&start);
        let model = Arc::clone(model);
        handles.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(9_000 + s as u64);
            let rows: Vec<Vec<f32>> = (0..per)
                .map(|_| Tensor::randn(&[dim], &mut rng).data().to_vec())
                .collect();
            let expected: Vec<u32> = rows
                .iter()
                .map(|r| {
                    model
                        .forward(&Tensor::from_vec(r.clone(), &[1, dim]))
                        .argmax() as u32
                })
                .collect();
            let opts = ConnectOptions::new()
                .retries(10)
                .backoff(Duration::from_millis(5), Duration::from_millis(200));
            let mut client = RemotePipeStore::connect_with(addr, opts).expect("session connect");
            start.wait();
            let got = client
                .infer_pipelined(&rows, window)
                .expect("pipelined infer");
            assert_eq!(got, expected, "bench replies demuxed to the wrong request");
            client.shutdown().expect("end session");
        }));
    }

    start.wait();
    let t0 = Instant::now();
    for h in handles {
        h.join().expect("session thread");
    }
    let wall = t0.elapsed().as_secs_f64().max(1e-9);
    let rows = sessions * per;

    let store = server.shutdown().expect("server drain");
    let snap = store.metrics().snapshot();
    let p99 = match snap
        .find_with("ndpipe_rpc_server_op_seconds", &[("op", "infer")])
        .map(|s| &s.value)
    {
        Some(telemetry::SampleValue::Histogram(h)) => h.quantile(0.99),
        _ => f64::NAN,
    };
    let mean_batch = match snap.find("ndpipe_rpc_batch_size").map(|s| &s.value) {
        Some(telemetry::SampleValue::Histogram(h)) => h.mean(),
        _ => 1.0, // baseline mode never forms a batch
    };

    Cell {
        mode: if coalesce { "batched" } else { "baseline" },
        sessions,
        rows,
        wall_secs: wall,
        rps: rows as f64 / wall,
        p99_secs: p99,
        mean_batch,
    }
}

fn measure_pinned(p: &ConcurrencyParams) -> ConcurrencyMeasurements {
    let mut rng = StdRng::seed_from_u64(45_205);
    let model = Arc::new(Mlp::new(
        &[p.input_dim, p.input_dim, p.classes],
        1,
        &mut rng,
    ));
    let mut cells = Vec::new();
    for &sessions in &p.session_counts {
        // Warm cell (socket stack, allocator) discarded, then the two
        // modes back-to-back so they see the same machine state.
        for coalesce in [false, true] {
            cells.push(run_cell(p, &model, coalesce, sessions, &mut rng));
        }
    }
    ConcurrencyMeasurements {
        params: p.clone(),
        cpus: std::thread::available_parallelism().map_or(1, |n| n.get()),
        cells,
    }
}

/// Renders the measurements as the machine-readable JSON artifact.
pub fn to_json(m: &ConcurrencyMeasurements) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"rpc_concurrency\",\n");
    s.push_str(&format!("  \"window\": {},\n", m.params.window));
    s.push_str(&format!(
        "  \"infers_per_session\": {},\n",
        m.params.infers_per_session
    ));
    s.push_str(&format!("  \"input_dim\": {},\n", m.params.input_dim));
    s.push_str(&format!("  \"cpus\": {},\n", m.cpus));
    s.push_str("  \"cells\": [\n");
    for (i, c) in m.cells.iter().enumerate() {
        let p99 = if c.p99_secs.is_finite() {
            format!("{:.6}", c.p99_secs)
        } else {
            "null".to_string()
        };
        s.push_str(&format!(
            "    {{\"mode\": \"{}\", \"sessions\": {}, \"rows\": {}, \
             \"wall_secs\": {:.5}, \"rps\": {:.1}, \"p99_secs\": {}, \
             \"mean_batch\": {:.2}}}{}\n",
            c.mode,
            c.sessions,
            c.rows,
            c.wall_secs,
            c.rps,
            p99,
            c.mean_batch,
            if i + 1 < m.cells.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!("  \"max_sessions\": {},\n", m.max_sessions()));
    s.push_str(&format!(
        "  \"baseline_rps_at_max\": {:.1},\n",
        m.baseline_rps_at_max()
    ));
    s.push_str(&format!(
        "  \"batched_rps_at_max\": {:.1},\n",
        m.batched_rps_at_max()
    ));
    s.push_str(&format!("  \"pass_batching_bar\": {}\n", m.pass()));
    s.push_str("}\n");
    s
}

/// Renders the measurements as a human-readable report.
pub fn render(m: &ConcurrencyMeasurements) -> String {
    let mut r = Report::new(
        "RPC concurrency",
        "cross-session dynamic batching vs per-session inference",
    );
    r.note(&format!(
        "{} infers/session, window {}, dim {}, server GEMM pinned to 1 \
         thread ({} cores); p99 from the server's op_seconds histogram \
         (arrival to completion, batch window included)",
        m.params.infers_per_session, m.params.window, m.params.input_dim, m.cpus
    ));
    r.blank();
    r.header(&["mode", "sessions", "rows/s", "p99 ms", "mean batch"]);
    for c in &m.cells {
        r.row(&[
            c.mode.into(),
            c.sessions.to_string(),
            fmt(c.rps, 0),
            fmt(c.p99_secs * 1e3, 3),
            fmt(c.mean_batch, 2),
        ]);
    }
    r.blank();
    r.note(&format!(
        "at {} sessions: baseline {:.0} rows/s vs batched {:.0} rows/s — \
         batching must win at the top of the sweep: {}",
        m.max_sessions(),
        m.baseline_rps_at_max(),
        m.batched_rps_at_max(),
        if m.pass() { "PASS" } else { "FAIL" }
    ));
    r.render()
}

/// Standard entry point matching the other report modules.
pub fn run(fast: bool) -> String {
    let params = if fast {
        ConcurrencyParams::fast()
    } else {
        ConcurrencyParams::full()
    };
    render(&measure_with(&params))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_measurement_produces_valid_json_and_restores_env() {
        let before = std::env::var("NDPIPE_THREADS").ok();
        let m = measure_with(&ConcurrencyParams::tiny());
        assert_eq!(
            std::env::var("NDPIPE_THREADS").ok(),
            before,
            "NDPIPE_THREADS not restored"
        );
        // Two modes per swept session count, all rows answered.
        assert_eq!(m.cells.len(), 2 * m.params.session_counts.len());
        for c in &m.cells {
            assert_eq!(c.rows, c.sessions * m.params.infers_per_session);
            assert!(c.rps > 0.0, "cell produced no throughput: {c:?}");
            assert!(
                c.p99_secs.is_finite() && c.p99_secs >= 0.0,
                "p99 unrecorded for {c:?}"
            );
        }
        // Coalescing actually formed multi-row batches somewhere, and
        // the baseline never did.
        for c in m.cells.iter().filter(|c| c.mode == "baseline") {
            assert!((c.mean_batch - 1.0).abs() < 1e-9, "baseline batched: {c:?}");
        }

        let json = to_json(&m);
        telemetry::export::validate_json(&json).expect("well-formed JSON");
        for key in [
            "\"bench\"",
            "\"cells\"",
            "\"baseline_rps_at_max\"",
            "\"batched_rps_at_max\"",
            "\"pass_batching_bar\"",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        // `": inf"` not bare "inf" — the `infers_per_session` key would
        // trip a substring check.
        assert!(!json.contains("NaN") && !json.contains(": inf") && !json.contains("-inf"));

        let text = render(&m);
        assert!(text.contains("RPC concurrency"));
        assert!(text.contains("batched"));
    }
}
