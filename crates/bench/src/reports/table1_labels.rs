//! Table 1: % of labels fixed by successive model generations.

use crate::util::{pct, Report};
use ndpipe::experiment::{label_fix_experiment, ExperimentConfig};
use ndpipe_data::DatasetSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Regenerates Table 1: a 50K-image-equivalent photo set is labeled by
/// the initial model `M0`; generations `M1..M4` (each trained after two
/// more weeks of drift) progressively fix its mistakes.
pub fn run(fast: bool) -> String {
    let cfg = if fast {
        let mut c = ExperimentConfig::fast();
        c.days = 6;
        c
    } else {
        ExperimentConfig::paper()
    };
    let mut rng = StdRng::seed_from_u64(2024);
    let fixes = label_fix_experiment(DatasetSpec::imagenet_1k(), &cfg, 4, &mut rng);

    let mut r = Report::new("Table 1", "% of M0's labels fixed by newer models");
    let headers: Vec<String> = (0..fixes.len()).map(|i| format!("M{i}")).collect();
    r.header(&headers.iter().map(String::as_str).collect::<Vec<_>>());
    r.row(
        &fixes
            .iter()
            .map(|&f| format!("{}%", pct(f)))
            .collect::<Vec<_>>(),
    );
    r.blank();
    r.note("paper: 0% / 6.67% / 7.29% / 7.96% / 8.98% — each generation fixes more");
    r.note("stale labels, motivating offline re-inference near the data");
    r.render()
}

#[cfg(test)]
mod tests {
    #[test]
    fn generations_reported() {
        let s = super::run(true);
        assert!(s.contains("M0"));
        assert!(s.contains("M4"));
    }
}
