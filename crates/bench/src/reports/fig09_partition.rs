//! Fig 9: impact of the partition point on traffic and training time.

use crate::util::{fmt, human_bytes, Report};
use cluster::training::{training_report, TrainSetup};
use dnn::ModelProfile;

/// Regenerates Fig 9: ResNet50 on 4 PipeStores, sweeping the offload
/// point from `None` (ship raw inputs) through `+Conv5` to `+FC`
/// (everything on the stores, weight sync over the network).
pub fn run(_fast: bool) -> String {
    let model = ModelProfile::resnet50();
    let labels = [
        "None", "+Conv1", "+Conv2", "+Conv3", "+Conv4", "+Conv5", "+FC",
    ];

    let mut r = Report::new(
        "Fig 9",
        "layer offloading vs data traffic and training time (ResNet50, 4 PipeStores)",
    );
    r.header(&[
        "offload",
        "data traffic",
        "weight-sync traffic",
        "training time (s)",
        "store (s)",
        "transfer (s)",
        "tuner (s)",
        "sync (s)",
    ]);
    let mut best = (0usize, f64::INFINITY);
    for (k, label) in labels.iter().enumerate() {
        let mut setup = TrainSetup::paper_default(model.clone(), 4);
        setup.partition = k;
        let rep = training_report(&setup);
        if rep.total_secs < best.1 {
            best = (k, rep.total_secs);
        }
        r.row(&[
            label.to_string(),
            human_bytes(rep.data_traffic_bytes),
            human_bytes(rep.sync_traffic_bytes),
            fmt(rep.total_secs, 1),
            fmt(rep.store_stage_secs, 1),
            fmt(rep.transfer_secs, 1),
            fmt(rep.tuner_stage_secs, 1),
            fmt(rep.weight_sync_secs, 1),
        ]);
    }
    r.blank();
    r.note(&format!(
        "best partition: {} (paper: +Conv5; paper annotates +Conv5 traffic at 9.16GB)",
        labels[best.0]
    ));
    r.note("traffic falls as the cut deepens, then explodes at +FC on weight sync");
    r.render()
}

#[cfg(test)]
mod tests {
    #[test]
    fn sweep_covers_all_points_and_picks_conv5() {
        let s = super::run(true);
        for l in ["None", "+Conv1", "+Conv5", "+FC"] {
            assert!(s.contains(l), "missing {l}");
        }
        assert!(s.contains("best partition: +Conv5"));
    }
}
