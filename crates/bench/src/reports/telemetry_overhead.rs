//! Telemetry instrumentation overhead: measured NPE pipelined IPS with the
//! `ndpipe-telemetry` kill-switch off (uninstrumented baseline) vs. on
//! (every hot-path counter, histogram, and queue-depth sample live), with
//! a machine-readable artifact (`BENCH_telemetry_overhead.json`).
//!
//! The acceptance bar is < 5% IPS regression. Runs of the two modes are
//! interleaved so thermal/frequency drift hits both equally, and each
//! mode reports its *best* run (atomic-add overhead is deterministic;
//! scheduler noise is not).

use crate::reports::npe_pipeline::{build_store, BenchParams};
use crate::util::{fmt, Report};
use ndpipe::npe::engine::EngineConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Workload knobs for the overhead measurement.
#[derive(Debug, Clone, Copy)]
pub struct OverheadParams {
    /// The NPE workload (shared with the `npe_pipeline` report).
    pub base: BenchParams,
    /// Interleaved baseline/instrumented run pairs.
    pub repeats: usize,
    /// Decode-pool workers for every run.
    pub decomp_workers: usize,
}

impl OverheadParams {
    /// Full configuration.
    pub fn full() -> Self {
        OverheadParams {
            base: BenchParams::full(),
            repeats: 5,
            decomp_workers: 2,
        }
    }

    /// Smaller (noisier) configuration for `--fast` runs.
    pub fn fast() -> Self {
        OverheadParams {
            base: BenchParams::fast(),
            repeats: 3,
            decomp_workers: 2,
        }
    }

    /// Tiny configuration for unit tests (debug builds).
    pub fn tiny() -> Self {
        OverheadParams {
            base: BenchParams::tiny(),
            repeats: 2,
            decomp_workers: 1,
        }
    }
}

/// Everything the bench measures, ready for rendering as text or JSON.
#[derive(Debug, Clone)]
pub struct OverheadMeasurements {
    /// The workload that was run.
    pub params: OverheadParams,
    /// Host parallelism (`NDPIPE_THREADS` or available cores).
    pub cpus: usize,
    /// Per-run IPS with telemetry disabled, in run order.
    pub baseline_runs: Vec<f64>,
    /// Per-run IPS with telemetry enabled, in run order.
    pub instrumented_runs: Vec<f64>,
    /// Metric series the instrumented runs left in the store's registry.
    pub registry_series: usize,
}

impl OverheadMeasurements {
    /// Best uninstrumented throughput, images/second.
    pub fn baseline_ips(&self) -> f64 {
        self.baseline_runs.iter().copied().fold(0.0, f64::max)
    }

    /// Best instrumented throughput, images/second.
    pub fn instrumented_ips(&self) -> f64 {
        self.instrumented_runs.iter().copied().fold(0.0, f64::max)
    }

    /// Relative IPS regression, percent (negative = instrumented was
    /// faster, i.e. the difference is inside measurement noise).
    pub fn overhead_pct(&self) -> f64 {
        let base = self.baseline_ips();
        if base > 0.0 {
            (1.0 - self.instrumented_ips() / base) * 100.0
        } else {
            0.0
        }
    }

    /// Whether the < 5% acceptance bar holds.
    pub fn pass(&self) -> bool {
        self.overhead_pct() < 5.0
    }
}

/// Runs the measurement at the given workload size. Restores the global
/// telemetry kill-switch to its prior state before returning.
pub fn measure_with(p: &OverheadParams) -> OverheadMeasurements {
    let mut rng = StdRng::seed_from_u64(2207);
    let store = build_store(&p.base, &mut rng);
    let cfg = EngineConfig {
        batch: 128,
        decomp_workers: p.decomp_workers,
        queue_depth: 256,
    };

    let was_enabled = telemetry::enabled();
    // Warm both paths (thread spawns, page faults, decode dictionaries).
    telemetry::set_enabled(false);
    store.offline_inference_pipelined(&cfg);
    telemetry::set_enabled(true);
    store.offline_inference_pipelined(&cfg);

    let mut baseline_runs = Vec::with_capacity(p.repeats);
    let mut instrumented_runs = Vec::with_capacity(p.repeats);
    for _ in 0..p.repeats.max(1) {
        telemetry::set_enabled(false);
        let (_, stats) = store.offline_inference_pipelined(&cfg);
        baseline_runs.push(stats.ips());
        telemetry::set_enabled(true);
        let (_, stats) = store.offline_inference_pipelined(&cfg);
        instrumented_runs.push(stats.ips());
    }
    let registry_series = store.metrics().snapshot().len();
    telemetry::set_enabled(was_enabled);

    OverheadMeasurements {
        params: *p,
        cpus: ndpipe_data::deflate::configured_threads(),
        baseline_runs,
        instrumented_runs,
        registry_series,
    }
}

fn json_run_list(runs: &[f64]) -> String {
    let items: Vec<String> = runs.iter().map(|r| format!("{r:.2}")).collect();
    format!("[{}]", items.join(", "))
}

/// Renders the measurements as the machine-readable JSON artifact.
pub fn to_json(m: &OverheadMeasurements) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"telemetry_overhead\",\n");
    s.push_str(&format!("  \"cpus\": {},\n", m.cpus));
    s.push_str(&format!("  \"photos\": {},\n", m.params.base.photos));
    s.push_str(&format!(
        "  \"sidecar_bytes\": {},\n",
        m.params.base.sidecar_bytes
    ));
    s.push_str(&format!(
        "  \"decomp_workers\": {},\n",
        m.params.decomp_workers
    ));
    s.push_str(&format!("  \"repeats\": {},\n", m.params.repeats));
    s.push_str(&format!("  \"baseline_ips\": {:.2},\n", m.baseline_ips()));
    s.push_str(&format!(
        "  \"instrumented_ips\": {:.2},\n",
        m.instrumented_ips()
    ));
    s.push_str(&format!("  \"overhead_pct\": {:.3},\n", m.overhead_pct()));
    s.push_str(&format!("  \"pass_under_5pct\": {},\n", m.pass()));
    s.push_str(&format!("  \"registry_series\": {},\n", m.registry_series));
    s.push_str(&format!(
        "  \"baseline_runs_ips\": {},\n",
        json_run_list(&m.baseline_runs)
    ));
    s.push_str(&format!(
        "  \"instrumented_runs_ips\": {}\n",
        json_run_list(&m.instrumented_runs)
    ));
    s.push_str("}\n");
    s
}

/// Renders the measurements as a human-readable report.
pub fn render(m: &OverheadMeasurements) -> String {
    let mut r = Report::new(
        "Telemetry overhead",
        "NPE pipelined IPS, kill-switch off (baseline) vs on (instrumented)",
    );
    r.note(&format!(
        "host parallelism: {}, {} photos, {} KiB sidecars, {} decode workers",
        m.cpus,
        m.params.base.photos,
        m.params.base.sidecar_bytes / 1024,
        m.params.decomp_workers
    ));
    r.blank();
    r.header(&["mode", "best IPS", "runs"]);
    r.row(&[
        "baseline (disabled)".into(),
        fmt(m.baseline_ips(), 1),
        m.baseline_runs
            .iter()
            .map(|x| fmt(*x, 0))
            .collect::<Vec<_>>()
            .join(" "),
    ]);
    r.row(&[
        "instrumented".into(),
        fmt(m.instrumented_ips(), 1),
        m.instrumented_runs
            .iter()
            .map(|x| fmt(*x, 0))
            .collect::<Vec<_>>()
            .join(" "),
    ]);
    r.blank();
    r.note(&format!(
        "overhead: {:.2}% ({} metric series live) — acceptance bar < 5%: {}",
        m.overhead_pct(),
        m.registry_series,
        if m.pass() { "PASS" } else { "FAIL" }
    ));
    r.render()
}

/// Standard entry point matching the other report modules.
pub fn run(fast: bool) -> String {
    let params = if fast {
        OverheadParams::fast()
    } else {
        OverheadParams::full()
    };
    render(&measure_with(&params))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_measurement_produces_valid_json_and_restores_kill_switch() {
        let before = telemetry::enabled();
        let m = measure_with(&OverheadParams::tiny());
        assert_eq!(telemetry::enabled(), before, "kill-switch not restored");
        assert_eq!(m.baseline_runs.len(), 2);
        assert_eq!(m.instrumented_runs.len(), 2);
        assert!(m.baseline_ips() > 0.0);
        assert!(m.instrumented_ips() > 0.0);
        assert!(
            m.registry_series > 0,
            "instrumented runs left no metric series"
        );

        let json = to_json(&m);
        telemetry::export::validate_json(&json).expect("well-formed JSON");
        for key in [
            "\"bench\"",
            "\"baseline_ips\"",
            "\"instrumented_ips\"",
            "\"overhead_pct\"",
            "\"pass_under_5pct\"",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        assert!(!json.contains("NaN") && !json.contains("inf"));

        let text = render(&m);
        assert!(text.contains("instrumented"));
        assert!(text.contains("acceptance bar"));
    }
}
