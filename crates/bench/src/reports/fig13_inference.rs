//! Fig 13: offline-inference throughput scaling vs the SRV baselines.

use crate::util::{fmt, Report};
use cluster::inference::{inference_report, InferenceSetup, InferenceVariant};
use dnn::ModelProfile;

/// Regenerates Fig 13: KIPS for SRV-I/P/C and NDPipe over 1..20
/// PipeStores, for the four plotted models, plus the P1/P2/P3 crossover
/// points.
pub fn run(_fast: bool) -> String {
    let mut r = Report::new(
        "Fig 13",
        "offline-inference throughput (KIPS) vs #PipeStores",
    );
    for model in ModelProfile::figure_models() {
        let srv = |v: InferenceVariant| {
            inference_report(v, &InferenceSetup::paper_default(model.clone(), 4)).ips
        };
        let srv_i = srv(InferenceVariant::SrvIdeal);
        let srv_p = srv(InferenceVariant::SrvPreproc);
        let srv_c = srv(InferenceVariant::SrvCompressed);

        r.header(&[model.name(), "NDPipe KIPS", "SRV-I", "SRV-P", "SRV-C"]);
        let mut crossings = [None; 3];
        for n in 1..=20 {
            let ndp = inference_report(
                InferenceVariant::NdPipe,
                &InferenceSetup::paper_default(model.clone(), n),
            )
            .ips;
            for (i, &target) in [srv_p, srv_c, srv_i].iter().enumerate() {
                if crossings[i].is_none() && ndp >= target {
                    crossings[i] = Some(n);
                }
            }
            if n == 1 || n % 5 == 0 {
                r.row(&[
                    format!("n={n}"),
                    fmt(ndp / 1e3, 2),
                    fmt(srv_i / 1e3, 2),
                    fmt(srv_p / 1e3, 2),
                    fmt(srv_c / 1e3, 2),
                ]);
            }
        }
        r.note(&format!(
            "{}: P1(≥SRV-P)={:?} P2(≥SRV-C)={:?} P3(≥SRV-I)={:?} (paper: P1 1–7, P2 4–7, P3 5–7)",
            model.name(),
            crossings[0],
            crossings[1],
            crossings[2]
        ));
        r.blank();
    }
    r.note("paper per-PipeStore anchors: ResNet50 2129, InceptionV3 2439,");
    r.note("ResNeXt101 449, ViT 277 IPS; big models make the SRV variants converge");
    r.render()
}

#[cfg(test)]
mod tests {
    #[test]
    fn four_models_with_crossovers() {
        let s = super::run(true);
        for m in ["ResNet50", "InceptionV3", "ResNeXt101", "ViT"] {
            assert!(s.contains(m), "missing {m}");
        }
        assert!(s.contains("P1(≥SRV-P)"));
    }
}
