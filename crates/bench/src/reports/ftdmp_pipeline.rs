//! Pipelined FT-DMP vs the run-at-a-time barrier schedule, end to end
//! over real loopback `PipeStoreServer`s with one deliberately slow peer,
//! producing `BENCH_ftdmp_pipeline.json`.
//!
//! The slow store sleeps per *extracted row* (a genuinely slow device),
//! so the barrier schedule pays its full shard every round while the
//! pipelined schedule keeps only a small in-flight window there and lets
//! the placement-map replica steal the rest. `NDPIPE_THREADS` is pinned
//! to 1 during measurement so per-server forward passes are serial and
//! the reported speedup is schedule overlap plus stealing, not the GEMM
//! pool racing itself. Barrier and pipelined sweeps are interleaved per
//! repeat; each path reports its best sweep.
//!
//! Besides the speedup the artifact records the two acceptance facts the
//! schedule is sold on: `S = 0` bit-identity against the barrier
//! schedule, and the accuracy ordering Base ≥ NDPipe > Outdated (Base is
//! the Tuner's full-precision master, NDPipe a store replica rebuilt
//! from 8-bit Check-N-Run deltas — ties allowed — and Outdated the
//! never-fine-tuned initial model).

use crate::util::{fmt, Report};
use dnn::{Mlp, TrainConfig, Trainer};
use ndpipe::ftdmp::FtdmpConfig;
use ndpipe::rpc::{Cluster, ConnectOptions, FailurePolicy, PipeStoreServer, ServerConfig};
use ndpipe::{PipeStore, PlacementMap, Tuner};
use ndpipe_data::{ClassUniverse, LabeledDataset};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// Workload knobs for the pipelined-schedule measurement.
#[derive(Debug, Clone, Copy)]
pub struct PipelineParams {
    /// Loopback PipeStore servers (one of which is the straggler).
    pub peers: usize,
    /// Placement-map replication factor (R ≥ 2 enables stealing).
    pub replicas: usize,
    /// Label-space width of the synthetic corpus.
    pub classes: usize,
    /// Examples per class across the whole corpus (pre-sharding).
    pub per_class: usize,
    /// Input feature dimension (also the hidden width of the model).
    pub input_dim: usize,
    /// FT-DMP pipeline runs per round.
    pub n_run: usize,
    /// Classifier epochs per pipeline run.
    pub epochs_per_run: usize,
    /// Rows per extraction micro-batch (0 = auto).
    pub micro_batch: usize,
    /// Staleness bound for the pipelined path (the barrier path is S=0
    /// by construction).
    pub staleness: usize,
    /// Fine-tuning rounds per sweep (each round ends in Check-N-Run
    /// delta distribution).
    pub rounds: usize,
    /// Interleaved barrier/pipelined sweep pairs.
    pub repeats: usize,
    /// Per-row extraction sleep on the slow store (node 0).
    pub slow_row_delay_us: u64,
}

impl PipelineParams {
    /// Full configuration: the acceptance setup (4 stores, one slow).
    pub fn full() -> Self {
        PipelineParams {
            peers: 4,
            replicas: 2,
            classes: 8,
            per_class: 200,
            input_dim: 64,
            n_run: 3,
            epochs_per_run: 3,
            micro_batch: 4,
            staleness: 1,
            rounds: 2,
            repeats: 3,
            slow_row_delay_us: 200,
        }
    }

    /// Smaller (noisier) configuration for `--fast` runs.
    pub fn fast() -> Self {
        PipelineParams {
            peers: 4,
            replicas: 2,
            classes: 6,
            per_class: 100,
            input_dim: 32,
            n_run: 2,
            epochs_per_run: 3,
            micro_batch: 3,
            staleness: 1,
            rounds: 2,
            repeats: 2,
            slow_row_delay_us: 150,
        }
    }

    /// Tiny configuration for unit tests (debug builds).
    pub fn tiny() -> Self {
        PipelineParams {
            peers: 2,
            replicas: 2,
            classes: 4,
            per_class: 24,
            input_dim: 16,
            n_run: 2,
            epochs_per_run: 2,
            micro_batch: 2,
            staleness: 1,
            rounds: 1,
            repeats: 1,
            slow_row_delay_us: 100,
        }
    }

    fn ftdmp(&self, train: TrainConfig) -> FtdmpConfig {
        FtdmpConfig {
            n_run: self.n_run,
            epochs_per_run: self.epochs_per_run,
            micro_batch: self.micro_batch,
            staleness: self.staleness,
            train,
        }
    }
}

/// Everything the bench measures, ready for rendering as text or JSON.
#[derive(Debug, Clone)]
pub struct PipelineMeasurements {
    /// The workload that was run.
    pub params: PipelineParams,
    /// Physical parallelism available for overlap.
    pub cpus: usize,
    /// Shard size each server holds (home shard, replicas excluded).
    pub rows_per_peer: usize,
    /// Seconds per barrier sweep (`rounds` run-at-a-time jobs), in order.
    pub barrier_runs: Vec<f64>,
    /// Seconds per pipelined sweep (one `S ≥ 1` pipelined job covering
    /// the same rounds), in order.
    pub pipelined_runs: Vec<f64>,
    /// Micro-batches the last pipelined sweep executed.
    pub micro_batches: usize,
    /// Micro-batches stolen away from the slow store (last sweep).
    pub steals: usize,
    /// Micro-batches extracted ahead of training (last sweep).
    pub stale_steps: usize,
    /// Seconds the Tuner idled waiting for features (last sweep).
    pub bubble_secs: f64,
    /// Whether an `S = 0` pipelined job reproduced the barrier schedule
    /// bit for bit (losses, example counts, final weights).
    pub s0_bit_identical: bool,
    /// Top-1 of the Tuner's full-precision master after fine-tuning.
    pub base_top1: f64,
    /// Top-1 of a store replica rebuilt from quantized deltas.
    pub ndpipe_top1: f64,
    /// Top-1 of the initial, never-fine-tuned model.
    pub outdated_top1: f64,
}

impl PipelineMeasurements {
    /// Best barrier sweep, seconds.
    pub fn barrier_secs(&self) -> f64 {
        self.barrier_runs.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Best pipelined sweep, seconds.
    pub fn pipelined_secs(&self) -> f64 {
        self.pipelined_runs
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    /// Best-vs-best speedup of the pipelined schedule over the barrier.
    pub fn speedup(&self) -> f64 {
        let pipe = self.pipelined_secs();
        if pipe > 0.0 {
            self.barrier_secs() / pipe
        } else {
            0.0
        }
    }

    /// The acceptance bar: ≥ 1.3× with cores to overlap on. The straggler
    /// sleeps rather than computes, so stealing pays off even on one
    /// core, but training/extraction overlap does not — the single-core
    /// bar only asks the pipeline to win at all.
    pub fn pass_speedup(&self) -> bool {
        if self.cpus >= 2 {
            self.speedup() >= 1.3
        } else {
            self.speedup() > 1.0
        }
    }

    /// Base ≥ NDPipe (8-bit delta quantization may tie, never win) and
    /// NDPipe strictly above the never-updated model.
    pub fn accuracy_ordering_ok(&self) -> bool {
        self.base_top1 >= self.ndpipe_top1 && self.ndpipe_top1 > self.outdated_top1
    }
}

fn fast_opts() -> ConnectOptions {
    ConnectOptions::new()
        .retries(2)
        .backoff(Duration::from_millis(1), Duration::from_millis(5))
}

/// Boots one server per shard, wiring replica shards from the placement
/// map and the per-row straggler delay on node 0.
fn spawn_fleet(
    shards: &[LabeledDataset],
    map: &PlacementMap,
    slow_delay: Option<Duration>,
) -> (Vec<PipeStoreServer>, Vec<String>) {
    let mut servers = Vec::with_capacity(shards.len());
    let mut addrs = Vec::with_capacity(shards.len());
    for (i, shard) in shards.iter().enumerate() {
        let mut store = PipeStore::new(i, shard.clone());
        for node in 0..shards.len() as u64 {
            if node != i as u64 && map.shard_holders(node).contains(&(i as u64)) {
                store.add_replica_shard(node, shards[node as usize].clone());
            }
        }
        if i == 0 {
            if let Some(delay) = slow_delay {
                store.set_extract_delay(Some(delay));
            }
        }
        let server = PipeStoreServer::bind(store, "127.0.0.1:0", ServerConfig::default())
            .expect("bind bench server");
        addrs.push(server.local_addr().to_string());
        servers.push(server);
    }
    (servers, addrs)
}

fn connect(addrs: &[String], map: &PlacementMap, quorum: usize) -> Cluster {
    let addrs: Vec<&str> = addrs.iter().map(String::as_str).collect();
    let cluster = Cluster::builder()
        .policy(FailurePolicy::Quorum(quorum))
        .connect_options(fast_opts())
        .connect(&addrs)
        .expect("connect bench cluster");
    let fan = cluster.publish_placement(map);
    assert!(fan.failures.is_empty(), "publish: {:?}", fan.failures);
    cluster
}

fn drain(cluster: Cluster, servers: Vec<PipeStoreServer>) -> Vec<PipeStore> {
    let fan = cluster.shutdown();
    assert!(fan.failures.is_empty(), "shutdown: {:?}", fan.failures);
    servers
        .into_iter()
        .map(|s| s.shutdown().expect("server drain"))
        .collect()
}

/// Runs the measurement at the given workload size. Pins
/// `NDPIPE_THREADS=1` while the servers are alive and restores the prior
/// value before returning (all server threads are joined first).
pub fn measure_with(p: &PipelineParams) -> PipelineMeasurements {
    let prior = std::env::var("NDPIPE_THREADS").ok();
    std::env::set_var("NDPIPE_THREADS", "1");
    let m = measure_pinned(p);
    match prior {
        Some(v) => std::env::set_var("NDPIPE_THREADS", v),
        None => std::env::remove_var("NDPIPE_THREADS"),
    }
    m
}

fn measure_pinned(p: &PipelineParams) -> PipelineMeasurements {
    let mut rng = StdRng::seed_from_u64(46_210);
    let universe = ClassUniverse::new(p.input_dim, 8, p.classes, 0.3, &mut rng);
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for c in 0..p.classes {
        for _ in 0..p.per_class {
            rows.push(universe.sample(c, &mut rng));
            labels.push(c);
        }
    }
    let dataset = LabeledDataset::new(rows, labels, p.classes).shuffled(&mut rng);
    let shards = dataset.shards(p.peers);
    let rows_per_peer = shards.iter().map(LabeledDataset::len).max().unwrap_or(0);
    let model = Mlp::new(
        &[p.input_dim, p.input_dim, p.input_dim, p.classes],
        2,
        &mut rng,
    );
    let train = TrainConfig {
        batch: 32,
        ..TrainConfig::default()
    };
    let ft = p.ftdmp(train);
    let nodes: Vec<u64> = (0..p.peers as u64).collect();
    let map = PlacementMap::new(&nodes, p.replicas.min(p.peers)).expect("placement map");
    let quorum = p.peers.saturating_sub(1).max(1);
    let delay = Duration::from_micros(p.slow_row_delay_us);

    // Oracle first: S = 0 pipelined vs the barrier schedule, bit for bit,
    // on a healthy fleet (no straggler — this checks semantics, not
    // speed, and one round keeps it cheap).
    let s0 = FtdmpConfig {
        staleness: 0,
        ..ft
    };
    let mut ref_tuner = Tuner::new(model.clone(), train);
    let mut ref_rng = StdRng::seed_from_u64(9_201);
    let (servers, addrs) = spawn_fleet(&shards, &map, None);
    let cluster = connect(&addrs, &map, quorum);
    let reference = cluster
        .ftdmp_fine_tune_with(&mut ref_tuner, &s0, &mut ref_rng, Some(&map))
        .expect("barrier oracle job");
    drain(cluster, servers);

    let mut s0_tuner = Tuner::new(model.clone(), train);
    let mut s0_rng = StdRng::seed_from_u64(9_201);
    let (servers, addrs) = spawn_fleet(&shards, &map, None);
    let cluster = connect(&addrs, &map, quorum);
    let oracle = cluster
        .ftdmp_fine_tune_pipelined(&mut s0_tuner, &s0, 1, &mut s0_rng, Some(&map))
        .expect("pipelined oracle job");
    drain(cluster, servers);
    let s0_bit_identical = reference.failures.is_empty()
        && oracle.failures.is_empty()
        && reference.report.run_losses == oracle.report.run_losses
        && reference.report.examples == oracle.report.examples
        && ref_tuner.model().to_bytes() == s0_tuner.model().to_bytes();

    // Timed sweeps: interleave barrier and pipelined, fresh fleet and
    // fresh seeds each sweep so neither path warms the other.
    let mut barrier_runs = Vec::with_capacity(p.repeats);
    let mut pipelined_runs = Vec::with_capacity(p.repeats);
    let mut micro_batches = 0;
    let mut steals = 0;
    let mut stale_steps = 0;
    let mut bubble_secs = 0.0;
    let mut base_top1 = 0.0;
    let mut ndpipe_top1 = 0.0;
    for _ in 0..p.repeats.max(1) {
        // Barrier: `rounds` sequential run-at-a-time jobs.
        let mut tuner = Tuner::new(model.clone(), train);
        let mut sweep_rng = StdRng::seed_from_u64(31_337);
        let (servers, addrs) = spawn_fleet(&shards, &map, Some(delay));
        let cluster = connect(&addrs, &map, quorum);
        let t = Instant::now();
        for _ in 0..p.rounds {
            let out = cluster
                .ftdmp_fine_tune_with(&mut tuner, &ft, &mut sweep_rng, Some(&map))
                .expect("barrier sweep");
            assert!(out.failures.is_empty(), "barrier: {:?}", out.failures);
        }
        barrier_runs.push(t.elapsed().as_secs_f64());
        drain(cluster, servers);

        // Pipelined: one S ≥ 1 job covering the same rounds.
        let mut tuner = Tuner::new(model.clone(), train);
        let mut sweep_rng = StdRng::seed_from_u64(31_337);
        let (servers, addrs) = spawn_fleet(&shards, &map, Some(delay));
        let cluster = connect(&addrs, &map, quorum);
        let t = Instant::now();
        let out = cluster
            .ftdmp_fine_tune_pipelined(&mut tuner, &ft, p.rounds, &mut sweep_rng, Some(&map))
            .expect("pipelined sweep");
        pipelined_runs.push(t.elapsed().as_secs_f64());
        assert!(out.failures.is_empty(), "pipelined: {:?}", out.failures);
        let stores = drain(cluster, servers);

        micro_batches = out.report.schedule.micro_batches;
        steals = out.report.schedule.steals;
        stale_steps = out.report.schedule.stale_steps;
        bubble_secs = out.report.schedule.bubble_secs;

        // Accuracy triple off the final sweep's fleet: the Tuner master
        // (Base) and a replica reassembled from quantized deltas
        // (NDPipe), both on a held-out test set from the same universe.
        let test = held_out_test(&universe, p.classes);
        base_top1 = f64::from(Trainer::evaluate(tuner.model(), &test).top1);
        let replica = stores
            .iter()
            .find_map(PipeStore::model)
            .expect("a drained store still holds its model");
        ndpipe_top1 = f64::from(Trainer::evaluate(replica, &test).top1);
    }

    // The never-updated model, on the same held-out set.
    let test = held_out_test(&universe, p.classes);
    let outdated_top1 = f64::from(Trainer::evaluate(&model, &test).top1);

    PipelineMeasurements {
        params: *p,
        cpus: std::thread::available_parallelism().map_or(1, |n| n.get()),
        rows_per_peer,
        barrier_runs,
        pipelined_runs,
        micro_batches,
        steals,
        stale_steps,
        bubble_secs,
        s0_bit_identical,
        base_top1,
        ndpipe_top1,
        outdated_top1,
    }
}

/// A fixed-seed held-out test set drawn from the training universe, so
/// every accuracy number in the triple reads the same distribution.
fn held_out_test(universe: &ClassUniverse, classes: usize) -> LabeledDataset {
    let mut rng = StdRng::seed_from_u64(52_808);
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for c in 0..classes {
        for _ in 0..20 {
            rows.push(universe.sample(c, &mut rng));
            labels.push(c);
        }
    }
    LabeledDataset::new(rows, labels, classes)
}

fn json_run_list(runs: &[f64]) -> String {
    let items: Vec<String> = runs.iter().map(|r| format!("{r:.5}")).collect();
    format!("[{}]", items.join(", "))
}

/// Renders the measurements as the machine-readable JSON artifact.
pub fn to_json(m: &PipelineMeasurements) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"ftdmp_pipeline\",\n");
    s.push_str(&format!("  \"peers\": {},\n", m.params.peers));
    s.push_str(&format!("  \"replicas\": {},\n", m.params.replicas));
    s.push_str(&format!("  \"rounds\": {},\n", m.params.rounds));
    s.push_str(&format!("  \"n_run\": {},\n", m.params.n_run));
    s.push_str(&format!("  \"micro_batch\": {},\n", m.params.micro_batch));
    s.push_str(&format!("  \"staleness\": {},\n", m.params.staleness));
    s.push_str(&format!("  \"rows_per_peer\": {},\n", m.rows_per_peer));
    s.push_str(&format!(
        "  \"slow_row_delay_us\": {},\n",
        m.params.slow_row_delay_us
    ));
    s.push_str(&format!("  \"repeats\": {},\n", m.params.repeats));
    s.push_str(&format!("  \"cpus\": {},\n", m.cpus));
    s.push_str(&format!(
        "  \"barrier_best_secs\": {:.5},\n",
        m.barrier_secs()
    ));
    s.push_str(&format!(
        "  \"pipelined_best_secs\": {:.5},\n",
        m.pipelined_secs()
    ));
    s.push_str(&format!("  \"speedup\": {:.3},\n", m.speedup()));
    s.push_str(&format!("  \"pass_speedup_bar\": {},\n", m.pass_speedup()));
    s.push_str(&format!("  \"s0_bit_identical\": {},\n", m.s0_bit_identical));
    s.push_str(&format!("  \"micro_batches\": {},\n", m.micro_batches));
    s.push_str(&format!("  \"steals\": {},\n", m.steals));
    s.push_str(&format!("  \"stale_steps\": {},\n", m.stale_steps));
    s.push_str(&format!("  \"bubble_secs\": {:.5},\n", m.bubble_secs));
    s.push_str(&format!("  \"base_top1\": {:.4},\n", m.base_top1));
    s.push_str(&format!("  \"ndpipe_top1\": {:.4},\n", m.ndpipe_top1));
    s.push_str(&format!("  \"outdated_top1\": {:.4},\n", m.outdated_top1));
    s.push_str(&format!(
        "  \"accuracy_ordering_ok\": {},\n",
        m.accuracy_ordering_ok()
    ));
    s.push_str(&format!(
        "  \"barrier_runs_secs\": {},\n",
        json_run_list(&m.barrier_runs)
    ));
    s.push_str(&format!(
        "  \"pipelined_runs_secs\": {}\n",
        json_run_list(&m.pipelined_runs)
    ));
    s.push_str("}\n");
    s
}

/// Renders the measurements as a human-readable report.
pub fn render(m: &PipelineMeasurements) -> String {
    let mut r = Report::new(
        "FT-DMP pipeline",
        "micro-batch pipelined schedule vs run-at-a-time barriers, one slow store",
    );
    r.note(&format!(
        "{} loopback stores (R={}), {} rows/peer, store 0 sleeps {}us/row, \
         {} round(s) x {} run(s), mb {}, S={}, {} cores",
        m.params.peers,
        m.params.replicas,
        m.rows_per_peer,
        m.params.slow_row_delay_us,
        m.params.rounds,
        m.params.n_run,
        m.params.micro_batch,
        m.params.staleness,
        m.cpus
    ));
    r.blank();
    r.header(&["schedule", "best sweep s", "sweeps"]);
    r.row(&[
        "run-at-a-time".into(),
        fmt(m.barrier_secs(), 4),
        m.barrier_runs
            .iter()
            .map(|x| fmt(*x, 3))
            .collect::<Vec<_>>()
            .join(" "),
    ]);
    r.row(&[
        "pipelined".into(),
        fmt(m.pipelined_secs(), 4),
        m.pipelined_runs
            .iter()
            .map(|x| fmt(*x, 3))
            .collect::<Vec<_>>()
            .join(" "),
    ]);
    r.blank();
    r.note(&format!(
        "speedup {:.2}x ({} micro-batches, {} steals, {} stale, {:.3}s bubble) — {}",
        m.speedup(),
        m.micro_batches,
        m.steals,
        m.stale_steps,
        m.bubble_secs,
        if m.pass_speedup() { "PASS" } else { "FAIL" }
    ));
    r.note(&format!(
        "S=0 bit-identical: {}; accuracy base {:.3} >= ndpipe {:.3} > outdated {:.3}: {}",
        if m.s0_bit_identical { "yes" } else { "NO" },
        m.base_top1,
        m.ndpipe_top1,
        m.outdated_top1,
        if m.accuracy_ordering_ok() { "PASS" } else { "FAIL" }
    ));
    r.render()
}

/// Standard entry point matching the other report modules.
pub fn run(fast: bool) -> String {
    let params = if fast {
        PipelineParams::fast()
    } else {
        PipelineParams::full()
    };
    render(&measure_with(&params))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_measurement_produces_valid_json_and_restores_env() {
        let before = std::env::var("NDPIPE_THREADS").ok();
        let m = measure_with(&PipelineParams::tiny());
        assert_eq!(
            std::env::var("NDPIPE_THREADS").ok(),
            before,
            "NDPIPE_THREADS not restored"
        );
        assert_eq!(m.barrier_runs.len(), 1);
        assert_eq!(m.pipelined_runs.len(), 1);
        assert!(m.barrier_secs() > 0.0);
        assert!(m.pipelined_secs() > 0.0);
        assert!(m.speedup().is_finite());
        assert!(m.s0_bit_identical, "S=0 oracle diverged");
        assert!(m.micro_batches > 0);
        assert!(m.base_top1 >= 0.0 && m.outdated_top1 >= 0.0);

        let json = to_json(&m);
        telemetry::export::validate_json(&json).expect("well-formed JSON");
        for key in [
            "\"bench\"",
            "\"barrier_best_secs\"",
            "\"pipelined_best_secs\"",
            "\"speedup\"",
            "\"pass_speedup_bar\"",
            "\"s0_bit_identical\"",
            "\"steals\"",
            "\"stale_steps\"",
            "\"accuracy_ordering_ok\"",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        assert!(!json.contains("NaN") && !json.contains("inf"));

        let text = render(&m);
        assert!(text.contains("pipelined"));
        assert!(text.contains("speedup"));
    }
}
