//! Fig 12: NPE optimization ablation on one PipeStore.

use crate::reports::npe_pipeline::{self, BenchParams};
use crate::util::{fmt, Report};
use dnn::ModelProfile;
use ndpipe::npe::{stage_times, NpeLevel, NpeTask};

/// Regenerates Fig 12: per-task elapsed times (ms/image) for fine-tuning
/// and offline inference at each cumulative NPE level, then validates the
/// analytic pipelining claim (`IPS = 1/max(stage)` vs `1/sum(stage)`)
/// against the real threaded engine.
pub fn run(fast: bool) -> String {
    let model = ModelProfile::resnet50();
    let mut r = Report::new(
        "Fig 12",
        "NPE ablation: per-task time on one PipeStore (ms/image, ResNet50)",
    );
    for (task, name) in [
        (NpeTask::FineTune, "fine-tuning"),
        (NpeTask::OfflineInference, "offline inference"),
    ] {
        r.header(&[name, "Read", "Preproc.", "Decomp.", "FE", "pipelined IPS"]);
        for level in NpeLevel::all() {
            let t = stage_times(&model, task, level);
            r.row(&[
                level.label().to_string(),
                fmt(t.read * 1e3, 3),
                fmt(t.preproc * 1e3, 3),
                fmt(t.decomp * 1e3, 3),
                fmt(t.fe * 1e3, 3),
                fmt(t.pipelined_ips(), 0),
            ]);
        }
        r.blank();
    }
    r.note("paper: offload removes preprocessing, compression shrinks reads and");
    r.note("hides decompression behind FE, batching shrinks FE; final IPS ≈ 2129 anchor");
    r.blank();

    // Measured counterpart: run the real threaded engine (crate `ndpipe`,
    // `npe::engine`) on a synthetic world and check the analytic claim that
    // pipelining takes wall-clock from sum(stage busy) toward max(stage
    // busy). Stage occupancy = busy/wall; the bottleneck stage should sit
    // near 1.0 while the others idle.
    let params = if fast {
        BenchParams::tiny()
    } else {
        BenchParams::fast()
    };
    let (serial_secs, pt) = npe_pipeline::measure_engine(&params, 2);
    r.header(&[
        "measured engine",
        "wall s",
        "IPS",
        "occ load",
        "occ decode",
        "occ FE",
    ]);
    r.row(&[
        "serial".to_string(),
        fmt(serial_secs, 3),
        fmt(params.photos as f64 / serial_secs.max(1e-9), 0),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);
    r.row(&[
        "pipelined".to_string(),
        fmt(pt.wall_secs, 3),
        fmt(pt.ips, 0),
        fmt(pt.occupancy[0], 2),
        fmt(pt.occupancy[1], 2),
        fmt(pt.occupancy[2], 2),
    ]);
    r.note(&format!(
        "measured on {} photos: pipelined wall tracks the busiest stage, not the sum; \
         see bench_report for the full sweep",
        params.photos
    ));
    r.render()
}

#[cfg(test)]
mod tests {
    #[test]
    fn all_levels_for_both_tasks() {
        let s = super::run(true);
        assert_eq!(s.matches("Naive").count(), 2);
        assert_eq!(s.matches("+Batch").count(), 2);
    }
}
