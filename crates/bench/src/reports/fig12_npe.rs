//! Fig 12: NPE optimization ablation on one PipeStore.

use crate::util::{fmt, Report};
use dnn::ModelProfile;
use ndpipe::npe::{stage_times, NpeLevel, NpeTask};

/// Regenerates Fig 12: per-task elapsed times (ms/image) for fine-tuning
/// and offline inference at each cumulative NPE level.
pub fn run(_fast: bool) -> String {
    let model = ModelProfile::resnet50();
    let mut r = Report::new(
        "Fig 12",
        "NPE ablation: per-task time on one PipeStore (ms/image, ResNet50)",
    );
    for (task, name) in [
        (NpeTask::FineTune, "fine-tuning"),
        (NpeTask::OfflineInference, "offline inference"),
    ] {
        r.header(&[
            name,
            "Read",
            "Preproc.",
            "Decomp.",
            "FE",
            "pipelined IPS",
        ]);
        for level in NpeLevel::all() {
            let t = stage_times(&model, task, level);
            r.row(&[
                level.label().to_string(),
                fmt(t.read * 1e3, 3),
                fmt(t.preproc * 1e3, 3),
                fmt(t.decomp * 1e3, 3),
                fmt(t.fe * 1e3, 3),
                fmt(t.pipelined_ips(), 0),
            ]);
        }
        r.blank();
    }
    r.note("paper: offload removes preprocessing, compression shrinks reads and");
    r.note("hides decompression behind FE, batching shrinks FE; final IPS ≈ 2129 anchor");
    r.render()
}

#[cfg(test)]
mod tests {
    #[test]
    fn all_levels_for_both_tasks() {
        let s = super::run(true);
        assert_eq!(s.matches("Naive").count(), 2);
        assert_eq!(s.matches("+Batch").count(), 2);
    }
}
