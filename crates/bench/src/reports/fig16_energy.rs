//! Fig 16: training energy efficiency at P1 and BEST.

use crate::util::{fmt, Report};
use cluster::energy::{srv_training_energy, training_energy};
use cluster::training::{srv_training_report, training_report, TrainSetup};
use dnn::ModelProfile;
use hw::LinkSpec;

/// Regenerates Fig 16: IPS/kJ of SRV-C vs NDPipe at the matched-time
/// point (P1) and at the best-efficiency fleet size (BEST).
pub fn run(_fast: bool) -> String {
    let link = LinkSpec::ethernet_gbps(10.0);
    let mut r = Report::new(
        "Fig 16",
        "training energy efficiency (IPS/kJ) at P1 and BEST",
    );
    r.header(&["model", "point", "SRV-C", "NDPipe", "gain"]);
    let mut gains_p1 = Vec::new();
    let mut gains_best = Vec::new();
    for model in ModelProfile::figure_models() {
        let srv_time = srv_training_report(&model, 1_200_000, 20, 512, &link).total_secs;
        let srv_energy =
            srv_training_energy(&model, 1_200_000, 20, 512, &link, 4).ips_per_kilojoule();

        let p1 = (1..=30)
            .find(|&n| {
                training_report(&TrainSetup::paper_default(model.clone(), n)).total_secs <= srv_time
            })
            .unwrap_or(30);
        let best = (1..=20)
            .max_by(|&a, &b| {
                let ea = training_energy(&TrainSetup::paper_default(model.clone(), a))
                    .ips_per_kilojoule();
                let eb = training_energy(&TrainSetup::paper_default(model.clone(), b))
                    .ips_per_kilojoule();
                ea.partial_cmp(&eb).expect("finite")
            })
            .expect("non-empty range");

        for (label, n, gains) in [("P1", p1, &mut gains_p1), ("BEST", best, &mut gains_best)] {
            let ndp =
                training_energy(&TrainSetup::paper_default(model.clone(), n)).ips_per_kilojoule();
            let gain = ndp / srv_energy;
            gains.push(gain);
            r.row(&[
                model.name().to_string(),
                format!("{label} (n={n})"),
                fmt(srv_energy, 1),
                fmt(ndp, 1),
                format!("{:.2}x", gain),
            ]);
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    r.blank();
    r.note(&format!(
        "mean gain: P1 {:.2}x (paper 1.44x), BEST {:.2}x (paper 2.64x)",
        mean(&gains_p1),
        mean(&gains_best)
    ));
    r.render()
}

#[cfg(test)]
mod tests {
    #[test]
    fn gains_reported_for_both_points() {
        let s = super::run(true);
        assert!(s.contains("P1 (n="));
        assert!(s.contains("BEST (n="));
        assert!(s.contains("mean gain"));
    }
}
