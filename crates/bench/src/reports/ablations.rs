//! Design-choice ablations beyond the paper's figures (DESIGN.md).
//!
//! Quantifies the decisions DESIGN.md calls out: how many CPU cores to
//! reserve for decompression, delta vs full model distribution, and
//! APO's partition choice vs the naive extremes.

use crate::util::{fmt, human_bytes, Report};
use cluster::training::{training_report, TrainSetup};
use dnn::{Mlp, ModelProfile};
use hw::{InstanceSpec, COMPRESSED_IMAGE_BYTES};
use ndpipe::apo::{find_best_point, ApoInput};
use ndpipe::ModelDelta;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tensor::Tensor;

/// Runs all three ablations.
pub fn run(_fast: bool) -> String {
    let mut r = Report::new("Ablations", "design-choice studies from DESIGN.md");

    // --- 1. Decompression core count (§5.4 reserves "a maximum of two").
    let model = ModelProfile::resnet50();
    let store = InstanceSpec::pipestore();
    r.header(&[
        "decompress cores",
        "decomp cap (IPS)",
        "store throughput (IPS)",
        "hidden by FE?",
    ]);
    let gpu_ips = model.t4_inference_ips();
    for cores in [1usize, 2, 4, 8] {
        let decomp_ips = store.cpu.decompress_bps(cores) / COMPRESSED_IMAGE_BYTES;
        let throughput = gpu_ips.min(decomp_ips);
        r.row(&[
            cores.to_string(),
            fmt(decomp_ips, 0),
            fmt(throughput, 0),
            (decomp_ips >= gpu_ips).to_string(),
        ]);
    }
    r.note("two cores suffice: decompression already outruns the T4, so more");
    r.note("cores only steal capacity from the storage service (§5.4)");
    r.blank();

    // --- 2. Delta vs full model distribution at growing fleet sizes.
    let mut rng = StdRng::seed_from_u64(7);
    let old = Mlp::new(&[64, 256, 256, 64, 100], 3, &mut rng);
    let mut new = old.clone();
    let x = Tensor::randn(&[64, 64], &mut rng);
    let labels: Vec<usize> = (0..64).map(|i| i % 100).collect();
    for _ in 0..10 {
        new.train_step(&x, &labels, 0.05, 0.9, new.split());
    }
    let delta = ModelDelta::between(&old, &new);
    let full_bytes = new.param_count() * 4;
    r.header(&[
        "fleet size",
        "full distribution",
        "delta distribution",
        "saving",
    ]);
    for n in [4usize, 10, 20] {
        r.row(&[
            n.to_string(),
            human_bytes((full_bytes * n) as f64),
            human_bytes((delta.wire_bytes() * n) as f64),
            format!("{:.0}x", delta.traffic_reduction()),
        ]);
    }
    r.blank();

    // --- 3. Partition choice: APO vs the naive extremes.
    r.header(&["strategy", "partition", "training time (s)"]);
    let input = ApoInput::paper_default(model.clone());
    let apo = find_best_point(&input, 8);
    for (name, k) in [
        ("ship raw inputs (None)", 0usize),
        ("APO pick", apo.partition),
        ("everything on stores (+FC)", model.stages().len()),
    ] {
        let setup = TrainSetup {
            partition: k,
            ..TrainSetup::paper_default(model.clone(), 8)
        };
        r.row(&[
            name.to_string(),
            k.to_string(),
            fmt(training_report(&setup).total_secs, 1),
        ]);
    }
    r.note("the APO cut beats both extremes: shipping inputs floods the network,");
    r.note("offloading the trainable tail pays per-iteration weight sync");
    r.render()
}

#[cfg(test)]
mod tests {
    #[test]
    fn ablations_report_complete() {
        let s = super::run(true);
        assert!(s.contains("decompress cores"));
        assert!(s.contains("delta distribution"));
        assert!(s.contains("APO pick"));
    }

    #[test]
    fn apo_pick_beats_extremes() {
        let s = super::run(true);
        let time_of = |needle: &str| -> f64 {
            s.lines()
                .find(|l| l.contains(needle))
                .and_then(|l| l.split('\t').next_back())
                .and_then(|v| v.parse().ok())
                .unwrap()
        };
        let apo = time_of("APO pick");
        assert!(apo < time_of("ship raw inputs"));
        assert!(apo < time_of("everything on stores"));
    }
}
