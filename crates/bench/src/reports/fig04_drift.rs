//! Fig 4: the outdated-model problem — accuracy decay and recovery.

use crate::util::{pct, Report};
use ndpipe::experiment::{dataset_size_sweep, drift_experiment, ExperimentConfig, UpdateStrategy};
use ndpipe_data::DatasetSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn config(fast: bool) -> ExperimentConfig {
    if fast {
        ExperimentConfig::fast()
    } else {
        ExperimentConfig::paper()
    }
}

/// Regenerates Fig 4(a): top-1 accuracy over two weeks under the three
/// strategies, and Fig 4(b): fine-tuning accuracy vs dataset size.
pub fn run(fast: bool) -> String {
    let spec = DatasetSpec::imagenet_1k();
    let cfg = config(fast);
    let mut rng = StdRng::seed_from_u64(2024);

    let mut r = Report::new(
        "Fig 4a",
        "top-1 accuracy over 14 days: Outdated vs Full training vs Fine-tuning",
    );
    let strategies = [
        UpdateStrategy::Outdated,
        UpdateStrategy::FullTraining,
        UpdateStrategy::FineTuning,
    ];
    let series: Vec<Vec<ndpipe::experiment::DriftPoint>> = strategies
        .iter()
        .map(|&s| drift_experiment(spec, &cfg, s, &mut rng))
        .collect();

    let mut header = vec!["day".to_string()];
    header.extend(strategies.iter().map(|s| s.label().to_string()));
    r.header(&header.iter().map(String::as_str).collect::<Vec<_>>());
    for i in 0..series[0].len() {
        let mut cells = vec![format!("+{}d", series[0][i].day)];
        for s in &series {
            cells.push(pct(s[i].metrics.top1));
        }
        r.row(&cells);
    }
    let base = series[0][0].metrics.top1;
    let outdated_end = series[0].last().expect("non-empty").metrics.top1;
    let tuned_end = series[2].last().expect("non-empty").metrics.top1;
    r.blank();
    r.note(&format!(
        "outdated decay: {:.1}pp (paper: 73.8% -> 68.9%, 4.9pp); fine-tuning \
         holds within {:.1}pp of base (paper: 1.95pp)",
        (base - outdated_end) * 100.0,
        (base - tuned_end) * 100.0
    ));

    // Fig 4(b).
    r.blank();
    let sizes: Vec<usize> = if fast {
        vec![40, 150, 400]
    } else {
        vec![100, 400, 1000, 2000, 3600]
    };
    let sweep = dataset_size_sweep(spec, &cfg, &sizes, &mut rng);
    r.header(&["Fig 4b: fine-tune set size", "top-1 %"]);
    for (n, top1) in &sweep {
        r.row(&[n.to_string(), pct(*top1)]);
    }
    r.note("paper: noticeable gains need a large training set (>500K images at full scale)");
    r.render()
}

#[cfg(test)]
mod tests {
    #[test]
    fn drift_report_has_all_strategies() {
        let s = super::run(true);
        assert!(s.contains("Outdated model"));
        assert!(s.contains("Full training"));
        assert!(s.contains("Fine-tuning"));
        assert!(s.contains("Fig 4b"));
    }
}
