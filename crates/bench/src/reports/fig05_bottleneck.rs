//! Fig 5: the §3.4 network-bottleneck motivation — Typical vs Ideal.

use crate::util::{fmt, Report};
use cluster::baseline::{baseline_fine_tune, baseline_inference, BaselineHost};
use dnn::ModelProfile;
use hw::LinkSpec;

/// Regenerates Fig 5: fine-tuning time and offline-inference throughput
/// on the unoptimized Typical / Ideal hosts.
pub fn run(_fast: bool) -> String {
    let model = ModelProfile::resnet50();
    let link = LinkSpec::ethernet_gbps(10.0);
    let images = 1_200_000f64;

    let mut r = Report::new(
        "Fig 5",
        "impact of the network bottleneck (Typical vs Ideal, unoptimized hosts)",
    );
    r.header(&["setup", "fine-tune time (min)", "offline inference (IPS)"]);
    let mut times = Vec::new();
    for (name, host) in [
        ("Typical", BaselineHost::Typical),
        ("Ideal", BaselineHost::Ideal),
    ] {
        let ft = baseline_fine_tune(host, &model, 4, &link);
        let inf = baseline_inference(host, &model, 4, &link);
        let minutes = ft.total() * images / 60.0;
        times.push(minutes);
        r.row(&[name.to_string(), fmt(minutes, 1), fmt(inf.ips(), 1)]);
    }
    r.blank();
    r.note(&format!(
        "fine-tune slowdown Typical/Ideal: measured {:.1}x, paper 3.7x",
        times[0] / times[1]
    ));
    r.note("offline inference: paper reports Typical 94 IPS, Ideal 123 IPS");
    r.render()
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_contains_both_setups() {
        let s = super::run(true);
        assert!(s.contains("Typical"));
        assert!(s.contains("Ideal"));
        assert!(s.contains("slowdown"));
    }
}
