//! Cluster fan-out vs sequential RPC: the extract phase of FT-DMP driven
//! one peer at a time (the old free-function style) vs concurrently
//! through the [`Cluster`] worker pool, against real loopback
//! `PipeStoreServer`s, with a machine-readable artifact
//! (`BENCH_cluster_fanout.json`).
//!
//! `NDPIPE_THREADS` is pinned to 1 for the duration of the measurement so
//! each peer's server-side forward pass is serial — the speedup reported
//! here is genuine peer-level overlap, not the GEMM pool racing itself.
//! Sequential and fanned-out sweeps are interleaved per repeat and each
//! path reports its *best* (fastest) sweep.

use crate::util::{fmt, Report};
use dnn::Mlp;
use ndpipe::rpc::{Cluster, PipeStoreServer, RemotePipeStore, ServerConfig};
use ndpipe::PipeStore;
use ndpipe_data::{ClassUniverse, LabeledDataset};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Workload knobs for the fan-out measurement.
#[derive(Debug, Clone, Copy)]
pub struct FanoutParams {
    /// Loopback PipeStore servers to drive.
    pub peers: usize,
    /// Label-space width of the synthetic corpus.
    pub classes: usize,
    /// Examples per class across the whole corpus (pre-sharding).
    pub per_class: usize,
    /// Input feature dimension (also the hidden width of the model).
    pub input_dim: usize,
    /// FT-DMP runs per sweep — each sweep extracts every run slice.
    pub n_run: usize,
    /// Interleaved sequential/fanout sweep pairs.
    pub repeats: usize,
}

impl FanoutParams {
    /// Full configuration: the acceptance setup (4 peers).
    pub fn full() -> Self {
        FanoutParams {
            peers: 4,
            classes: 8,
            per_class: 400,
            input_dim: 128,
            n_run: 2,
            repeats: 5,
        }
    }

    /// Smaller (noisier) configuration for `--fast` runs.
    pub fn fast() -> Self {
        FanoutParams {
            peers: 4,
            classes: 8,
            per_class: 160,
            input_dim: 64,
            n_run: 2,
            repeats: 3,
        }
    }

    /// Tiny configuration for unit tests (debug builds).
    pub fn tiny() -> Self {
        FanoutParams {
            peers: 2,
            classes: 4,
            per_class: 24,
            input_dim: 16,
            n_run: 1,
            repeats: 2,
        }
    }
}

/// Everything the bench measures, ready for rendering as text or JSON.
#[derive(Debug, Clone)]
pub struct FanoutMeasurements {
    /// The workload that was run.
    pub params: FanoutParams,
    /// Physical parallelism available for overlapping peers.
    pub cpus: usize,
    /// Shard size each server holds.
    pub rows_per_peer: usize,
    /// Seconds per sequential sweep (all runs × all peers, one at a
    /// time), in run order.
    pub sequential_runs: Vec<f64>,
    /// Seconds per fanned-out sweep (all runs, peers concurrent), in
    /// run order.
    pub fanout_runs: Vec<f64>,
    /// Feature bytes received off the wire by one full fanout sweep.
    pub feature_bytes: u64,
}

impl FanoutMeasurements {
    /// Best sequential sweep, seconds.
    pub fn sequential_secs(&self) -> f64 {
        self.sequential_runs
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    /// Best fanned-out sweep, seconds.
    pub fn fanout_secs(&self) -> f64 {
        self.fanout_runs
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    /// Best-vs-best speedup of fan-out over the sequential loop.
    pub fn speedup(&self) -> f64 {
        let fan = self.fanout_secs();
        if fan > 0.0 {
            self.sequential_secs() / fan
        } else {
            0.0
        }
    }

    /// Whether the acceptance bar holds. With ≥ 2 cores, fan-out must
    /// beat the sequential loop outright — peers genuinely overlap. On a
    /// single-core host overlap is impossible by construction (the
    /// extract phase is pure CPU on both sides of the socket), so the
    /// bar there is bounded coordination overhead: fan-out within 15% of
    /// sequential. The JSON records `cpus` so the number reads in
    /// context.
    pub fn pass(&self) -> bool {
        if self.cpus >= 2 {
            self.speedup() > 1.0
        } else {
            self.speedup() > 0.85
        }
    }
}

/// Runs the measurement at the given workload size. Pins
/// `NDPIPE_THREADS=1` while the servers are alive and restores the prior
/// value before returning (all server threads are joined first, so the
/// variable is never mutated while another thread could read it).
pub fn measure_with(p: &FanoutParams) -> FanoutMeasurements {
    let prior = std::env::var("NDPIPE_THREADS").ok();
    std::env::set_var("NDPIPE_THREADS", "1");
    let m = measure_pinned(p);
    match prior {
        Some(v) => std::env::set_var("NDPIPE_THREADS", v),
        None => std::env::remove_var("NDPIPE_THREADS"),
    }
    m
}

fn measure_pinned(p: &FanoutParams) -> FanoutMeasurements {
    let mut rng = StdRng::seed_from_u64(45_107);
    let universe = ClassUniverse::new(p.input_dim, 8, p.classes, 0.3, &mut rng);
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for c in 0..p.classes {
        for _ in 0..p.per_class {
            rows.push(universe.sample(c, &mut rng));
            labels.push(c);
        }
    }
    let dataset = LabeledDataset::new(rows, labels, p.classes).shuffled(&mut rng);
    let model = Mlp::new(
        &[p.input_dim, p.input_dim, p.input_dim, p.classes],
        2,
        &mut rng,
    );

    let mut servers = Vec::with_capacity(p.peers);
    let mut addrs = Vec::with_capacity(p.peers);
    let mut rows_per_peer = 0;
    for (i, shard) in dataset.shards(p.peers).into_iter().enumerate() {
        rows_per_peer = rows_per_peer.max(shard.len());
        let server = PipeStoreServer::bind(
            PipeStore::new(i, shard),
            "127.0.0.1:0",
            ServerConfig::default(),
        )
        .expect("bind bench server");
        addrs.push(server.local_addr());
        servers.push(server);
    }

    // Sequential baseline: one plain handle per peer, driven in a loop —
    // exactly what the deprecated free functions did.
    let mut seq: Vec<RemotePipeStore> = addrs
        .iter()
        .map(|a| RemotePipeStore::connect(a).expect("connect sequential handle"))
        .collect();
    let addr_strings: Vec<String> = addrs.iter().map(|a| a.to_string()).collect();
    let cluster = Cluster::builder()
        .connect(&addr_strings)
        .expect("connect cluster");

    let n_run = p.n_run.max(1) as u32;
    for c in &mut seq {
        c.install_model(&model).expect("install (sequential)");
    }
    let fan = cluster.install_model(&model);
    assert!(
        fan.failures.is_empty(),
        "install failures: {:?}",
        fan.failures
    );

    // Warm both paths: socket buffers, the GEMM pool, packing scratch.
    for c in &mut seq {
        c.extract_features(0, n_run).expect("warm sequential");
    }
    let warm = cluster.extract_features(0, n_run);
    assert!(
        warm.failures.is_empty(),
        "warm failures: {:?}",
        warm.failures
    );

    let mut sequential_runs = Vec::with_capacity(p.repeats);
    let mut fanout_runs = Vec::with_capacity(p.repeats);
    let mut feature_bytes = 0u64;
    for _ in 0..p.repeats.max(1) {
        let t = Instant::now();
        for run in 0..n_run {
            for c in &mut seq {
                c.extract_features(run, n_run).expect("sequential extract");
            }
        }
        sequential_runs.push(t.elapsed().as_secs_f64());

        let t = Instant::now();
        let mut sweep_bytes = 0u64;
        for run in 0..n_run {
            let fan = cluster.extract_features(run, n_run);
            assert!(
                fan.failures.is_empty(),
                "fanout failures: {:?}",
                fan.failures
            );
            sweep_bytes += fan.ok.iter().map(|r| r.recv_bytes).sum::<u64>();
        }
        fanout_runs.push(t.elapsed().as_secs_f64());
        feature_bytes = sweep_bytes;
    }

    for c in seq {
        c.shutdown().expect("sequential handle shutdown");
    }
    let fan = cluster.shutdown();
    assert!(
        fan.failures.is_empty(),
        "shutdown failures: {:?}",
        fan.failures
    );
    for s in servers {
        s.shutdown().expect("server drain");
    }

    FanoutMeasurements {
        params: *p,
        cpus: std::thread::available_parallelism().map_or(1, |n| n.get()),
        rows_per_peer,
        sequential_runs,
        fanout_runs,
        feature_bytes,
    }
}

fn json_run_list(runs: &[f64]) -> String {
    let items: Vec<String> = runs.iter().map(|r| format!("{r:.5}")).collect();
    format!("[{}]", items.join(", "))
}

/// Renders the measurements as the machine-readable JSON artifact.
pub fn to_json(m: &FanoutMeasurements) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"cluster_fanout\",\n");
    s.push_str(&format!("  \"peers\": {},\n", m.params.peers));
    s.push_str(&format!("  \"n_run\": {},\n", m.params.n_run));
    s.push_str(&format!("  \"input_dim\": {},\n", m.params.input_dim));
    s.push_str(&format!("  \"rows_per_peer\": {},\n", m.rows_per_peer));
    s.push_str(&format!("  \"repeats\": {},\n", m.params.repeats));
    s.push_str(&format!("  \"cpus\": {},\n", m.cpus));
    s.push_str(&format!(
        "  \"sequential_best_secs\": {:.5},\n",
        m.sequential_secs()
    ));
    s.push_str(&format!(
        "  \"fanout_best_secs\": {:.5},\n",
        m.fanout_secs()
    ));
    s.push_str(&format!("  \"speedup\": {:.3},\n", m.speedup()));
    s.push_str(&format!("  \"pass_fanout_bar\": {},\n", m.pass()));
    s.push_str(&format!(
        "  \"feature_bytes_per_sweep\": {},\n",
        m.feature_bytes
    ));
    s.push_str(&format!(
        "  \"sequential_runs_secs\": {},\n",
        json_run_list(&m.sequential_runs)
    ));
    s.push_str(&format!(
        "  \"fanout_runs_secs\": {}\n",
        json_run_list(&m.fanout_runs)
    ));
    s.push_str("}\n");
    s
}

/// Renders the measurements as a human-readable report.
pub fn render(m: &FanoutMeasurements) -> String {
    let mut r = Report::new(
        "Cluster fan-out",
        "FT-DMP extract phase: sequential per-peer loop vs Cluster fan-out",
    );
    r.note(&format!(
        "{} loopback stores, {} rows/peer, {} run(s)/sweep, dim {}, \
         server GEMM pinned to 1 thread ({} cores available for overlap)",
        m.params.peers, m.rows_per_peer, m.params.n_run, m.params.input_dim, m.cpus
    ));
    r.blank();
    r.header(&["path", "best sweep s", "sweeps"]);
    r.row(&[
        "sequential loop".into(),
        fmt(m.sequential_secs(), 4),
        m.sequential_runs
            .iter()
            .map(|x| fmt(*x, 3))
            .collect::<Vec<_>>()
            .join(" "),
    ]);
    r.row(&[
        "cluster fan-out".into(),
        fmt(m.fanout_secs(), 4),
        m.fanout_runs
            .iter()
            .map(|x| fmt(*x, 3))
            .collect::<Vec<_>>()
            .join(" "),
    ]);
    r.blank();
    let bar = if m.cpus >= 2 {
        "fan-out faster than sequential"
    } else {
        "single core, nothing to overlap: fan-out overhead < 15%"
    };
    r.note(&format!(
        "speedup: {:.2}x ({} feature bytes/sweep) — {}: {}",
        m.speedup(),
        m.feature_bytes,
        bar,
        if m.pass() { "PASS" } else { "FAIL" }
    ));
    r.render()
}

/// Standard entry point matching the other report modules.
pub fn run(fast: bool) -> String {
    let params = if fast {
        FanoutParams::fast()
    } else {
        FanoutParams::full()
    };
    render(&measure_with(&params))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_measurement_produces_valid_json_and_restores_env() {
        let before = std::env::var("NDPIPE_THREADS").ok();
        let m = measure_with(&FanoutParams::tiny());
        assert_eq!(
            std::env::var("NDPIPE_THREADS").ok(),
            before,
            "NDPIPE_THREADS not restored"
        );
        assert_eq!(m.sequential_runs.len(), 2);
        assert_eq!(m.fanout_runs.len(), 2);
        assert!(m.sequential_secs() > 0.0);
        assert!(m.fanout_secs() > 0.0);
        assert!(m.speedup().is_finite());
        assert!(
            m.feature_bytes > 0,
            "fanout sweep reported no wire bytes for features"
        );

        let json = to_json(&m);
        telemetry::export::validate_json(&json).expect("well-formed JSON");
        for key in [
            "\"bench\"",
            "\"sequential_best_secs\"",
            "\"fanout_best_secs\"",
            "\"speedup\"",
            "\"pass_fanout_bar\"",
            "\"feature_bytes_per_sweep\"",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        assert!(!json.contains("NaN") && !json.contains("inf"));

        let text = render(&m);
        assert!(text.contains("cluster fan-out"));
        assert!(text.contains("speedup"));
    }
}
