//! Artifact-appendix smoke run (§A): the end-to-end deployment the
//! paper's artifact demonstrates — Tuner + PipeStores fine-tuning and
//! offline inference on CIFAR-100-like data with ResNet50-like capacity.

use crate::util::{fmt, pct, Report};
use ndpipe::system::{NdPipeSystem, SystemConfig};
use ndpipe_data::DatasetSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Runs the artifact workflow: boot a deployment, drift for a week,
/// fine-tune near the data, and refresh labels offline. Reports wall
/// times and throughputs like the artifact's expected output.
pub fn run(fast: bool) -> String {
    let mut rng = StdRng::seed_from_u64(2024);
    let config = if fast {
        SystemConfig::small_test()
    } else {
        SystemConfig::paper_mini()
    };
    let spec = DatasetSpec::cifar100();

    let t0 = Instant::now();
    let mut system = NdPipeSystem::bootstrap(config, spec, &mut rng);
    let boot_secs = t0.elapsed().as_secs_f64();

    for _ in 0..7 {
        system.advance_day(&mut rng);
    }
    let stale = system.evaluate(&mut rng);

    let t1 = Instant::now();
    let outcome = system.fine_tune(&mut rng);
    let ft_secs = t1.elapsed().as_secs_f64();

    let t2 = Instant::now();
    let relabel = system.offline_relabel();
    let inf_secs = t2.elapsed().as_secs_f64();

    let mut r = Report::new("Artifact", "end-to-end NDPipe smoke run (§A workflow)");
    r.header(&["step", "value"]);
    r.row(&["bootstrap + initial training (s)".into(), fmt(boot_secs, 2)]);
    r.row(&[
        "stale top-1 after 7 days".into(),
        format!("{}%", pct(stale.top1)),
    ]);
    r.row(&["fine-tune time (s)".into(), fmt(ft_secs, 2)]);
    r.row(&[
        "feature-extraction throughput (img/s)".into(),
        fmt(outcome.report.examples as f64 / ft_secs.max(1e-9), 0),
    ]);
    r.row(&[
        "post-tune top-1".into(),
        format!("{}%", pct(outcome.final_accuracy.top1)),
    ]);
    r.row(&["offline inference time (s)".into(), fmt(inf_secs, 3)]);
    r.row(&[
        "offline inference throughput (img/s)".into(),
        fmt(relabel.examined as f64 / inf_secs.max(1e-9), 0),
    ]);
    r.row(&[
        "labels changed by relabel".into(),
        format!("{} of {}", relabel.changed, relabel.examined),
    ]);
    r.row(&[
        "model distribution reduction".into(),
        format!("{:.1}x", outcome.report.distribution_reduction),
    ]);
    r.blank();
    r.note("artifact expected output (their hardware): FE 1913 img/s, fine-tune");
    r.note("75.19s, offline inference 2417 img/s — ours runs a mini model on CPU");
    r.render()
}

#[cfg(test)]
mod tests {
    #[test]
    fn smoke_run_completes() {
        let s = super::run(true);
        assert!(s.contains("post-tune top-1"));
        assert!(s.contains("labels changed"));
    }
}
