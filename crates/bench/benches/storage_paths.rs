//! Micro-benchmarks of the storage substrate: object-store needle I/O
//! and the RPC wire codec.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ndpipe::rpc::wire::{read_reply, write_reply, Reply};
use objstore::ObjectStore;
use tensor::Tensor;

fn bench_objstore(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("objstore-bench-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let mut store = ObjectStore::open(&dir, 64 << 20).expect("open");
    let payload = vec![0xABu8; 64 * 1024];
    let mut key = 0u64;
    let mut group = c.benchmark_group("objstore_64k");
    group.throughput(Throughput::Bytes(payload.len() as u64));
    group.bench_function("put", |b| {
        b.iter(|| {
            key += 1;
            store.put(key, &payload).expect("put")
        })
    });
    store.put(1, &payload).expect("seed");
    group.bench_function("get", |b| {
        b.iter(|| store.get(1).expect("get").expect("present"))
    });
    group.finish();
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
}

fn bench_wire(c: &mut Criterion) {
    let reply = Reply::Features {
        features: Tensor::zeros(&[128, 64]),
        labels: vec![0; 128],
    };
    let mut encoded = Vec::new();
    write_reply(&mut encoded, &reply).expect("encode");
    let mut group = c.benchmark_group("rpc_wire_features_128x64");
    group.throughput(Throughput::Bytes(encoded.len() as u64));
    group.bench_function("encode", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(encoded.len());
            write_reply(&mut buf, &reply).expect("encode");
            buf
        })
    });
    group.bench_function("decode", |b| {
        b.iter(|| read_reply(&mut encoded.as_slice()).expect("decode"))
    });
    group.finish();
}

criterion_group!(benches, bench_objstore, bench_wire);
criterion_main!(benches);
