//! Micro-benchmarks of the tensor substrate's hot kernels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tensor::conv::{conv2d, max_pool2d, Conv2dSpec};
use tensor::linalg::Gemm;
use tensor::{activation, Tensor};

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("matmul");
    for n in [32usize, 128, 256] {
        let a = Tensor::randn(&[n, n], &mut rng);
        let b = Tensor::randn(&[n, n], &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| Gemm::new(std::hint::black_box(&a), std::hint::black_box(&b)).run())
        });
    }
    group.finish();
}

fn bench_matmul_variants(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let a = Tensor::randn(&[128, 128], &mut rng);
    let b = Tensor::randn(&[128, 128], &mut rng);
    c.bench_function("matmul_tn_128", |bench| {
        bench.iter(|| {
            Gemm::new(std::hint::black_box(&a), std::hint::black_box(&b))
                .transpose_a()
                .run()
        })
    });
    c.bench_function("matmul_nt_128", |bench| {
        bench.iter(|| {
            Gemm::new(std::hint::black_box(&a), std::hint::black_box(&b))
                .transpose_b()
                .run()
        })
    });
}

fn bench_conv(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let input = Tensor::randn(&[1, 16, 32, 32], &mut rng);
    let weight = Tensor::randn(&[32, 16, 3, 3], &mut rng);
    let spec = Conv2dSpec::new(3, 1, 1);
    c.bench_function("conv2d_16x32x32_3x3", |bench| {
        bench.iter(|| conv2d(std::hint::black_box(&input), &weight, None, spec))
    });
    c.bench_function("max_pool2d_16x32x32", |bench| {
        bench.iter(|| max_pool2d(std::hint::black_box(&input), Conv2dSpec::new(2, 2, 0)))
    });
}

fn bench_softmax(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let logits = Tensor::randn(&[256, 1000], &mut rng);
    c.bench_function("softmax_256x1000", |bench| {
        bench.iter(|| activation::softmax_rows(std::hint::black_box(&logits)))
    });
}

criterion_group!(
    benches,
    bench_matmul,
    bench_matmul_variants,
    bench_conv,
    bench_softmax
);
criterion_main!(benches);
