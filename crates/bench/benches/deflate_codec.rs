//! Micro-benchmarks of the from-scratch DEFLATE codec on the two blob
//! kinds NPE handles: compressible preprocessed binaries and
//! incompressible JPEG-like photos.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ndpipe_data::deflate::{compress, decompress};
use ndpipe_data::photo::{preprocessed_binary, PhotoFactory};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_preprocessed(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let bin = preprocessed_binary(64 * 1024, &mut rng);
    let packed = compress(&bin);
    let mut group = c.benchmark_group("deflate_preprocessed_64k");
    group.throughput(Throughput::Bytes(bin.len() as u64));
    group.bench_function("compress", |b| {
        b.iter(|| compress(std::hint::black_box(&bin)))
    });
    group.bench_function("decompress", |b| {
        b.iter(|| decompress(std::hint::black_box(&packed)).expect("valid"))
    });
    group.finish();
}

fn bench_photo(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let photo = PhotoFactory::new(64 * 1024).make(0, 0, &mut rng);
    let mut group = c.benchmark_group("deflate_jpeg_like_64k");
    group.throughput(Throughput::Bytes(photo.blob.len() as u64));
    group.bench_function("compress_incompressible", |b| {
        b.iter(|| compress(std::hint::black_box(&photo.blob)))
    });
    group.finish();
}

criterion_group!(benches, bench_preprocessed, bench_photo);
criterion_main!(benches);
