//! Micro-benchmarks of the cluster capacity models and APO search —
//! these run inside deployment tooling, so they should stay cheap.

use cluster::inference::{inference_report, InferenceSetup, InferenceVariant};
use cluster::training::{training_report, TrainSetup};
use criterion::{criterion_group, criterion_main, Criterion};
use dnn::ModelProfile;
use ndpipe::apo::{best_organization, ApoInput};

fn bench_inference_report(c: &mut Criterion) {
    let setup = InferenceSetup::paper_default(ModelProfile::resnet50(), 8);
    c.bench_function("inference_report", |b| {
        b.iter(|| inference_report(InferenceVariant::NdPipe, std::hint::black_box(&setup)))
    });
}

fn bench_training_report(c: &mut Criterion) {
    let setup = TrainSetup::paper_default(ModelProfile::resnet50(), 8);
    c.bench_function("training_report", |b| {
        b.iter(|| training_report(std::hint::black_box(&setup)))
    });
}

fn bench_apo(c: &mut Criterion) {
    let input = ApoInput::paper_default(ModelProfile::resnet50());
    c.bench_function("apo_best_organization", |b| {
        b.iter(|| best_organization(std::hint::black_box(&input)))
    });
}

criterion_group!(
    benches,
    bench_inference_report,
    bench_training_report,
    bench_apo
);
criterion_main!(benches);
