//! Micro-benchmarks of the model execution paths FT-DMP exercises:
//! feature extraction (the PipeStore hot loop), classifier training (the
//! Tuner hot loop) and Check-N-Run delta encode/apply.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dnn::Mlp;
use ndpipe::ModelDelta;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tensor::Tensor;

fn model(rng: &mut StdRng) -> Mlp {
    Mlp::new(&[64, 96, 64, 100], 2, rng)
}

fn bench_feature_extraction(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let m = model(&mut rng);
    let batch = Tensor::randn(&[128, 64], &mut rng);
    let mut group = c.benchmark_group("pipestore");
    group.throughput(Throughput::Elements(128));
    group.bench_function("features_batch128", |b| {
        b.iter(|| m.features(std::hint::black_box(&batch)))
    });
    group.bench_function("forward_batch128", |b| {
        b.iter(|| m.forward(std::hint::black_box(&batch)))
    });
    group.finish();
}

fn bench_tuner_step(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let mut m = model(&mut rng);
    let feats = m.features(&Tensor::randn(&[128, 64], &mut rng));
    let labels: Vec<usize> = (0..128).map(|i| i % 100).collect();
    let mut group = c.benchmark_group("tuner");
    group.throughput(Throughput::Elements(128));
    group.bench_function("tune_step_batch128", |b| {
        b.iter(|| m.tune_step_on_features(std::hint::black_box(&feats), &labels, 0.05, 0.9))
    });
    group.bench_function("full_train_step_batch128", |b| {
        let x = Tensor::randn(&[128, 64], &mut rng);
        b.iter(|| {
            let mut m2 = m.clone();
            m2.train_step(std::hint::black_box(&x), &labels, 0.05, 0.9, 0)
        })
    });
    group.finish();
}

fn bench_delta(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let old = model(&mut rng);
    let mut new = old.clone();
    let x = Tensor::randn(&[64, 64], &mut rng);
    let labels: Vec<usize> = (0..64).map(|i| i % 100).collect();
    for _ in 0..5 {
        new.train_step(&x, &labels, 0.05, 0.9, new.split());
    }
    let delta = ModelDelta::between(&old, &new);
    c.bench_function("delta_encode", |b| {
        b.iter(|| ModelDelta::between(std::hint::black_box(&old), &new))
    });
    c.bench_function("delta_apply", |b| {
        b.iter(|| {
            let mut replica = old.clone();
            delta.apply(&mut replica).expect("applies");
            replica
        })
    });
}

criterion_group!(
    benches,
    bench_feature_extraction,
    bench_tuner_step,
    bench_delta
);
criterion_main!(benches);
