//! Vendored, API-compatible subset of Criterion.rs: enough to compile and
//! run this workspace's `harness = false` benches. Measurement is a plain
//! warmup + timed loop reporting mean ns/iter (plus throughput when set)
//! — no statistics, plots, or baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    warmup: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warmup: Duration::from_millis(300),
            measure: Duration::from_millis(1000),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n{name}");
        BenchmarkGroup {
            c: self,
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let (warmup, measure) = (self.warmup, self.measure);
        run_one(name, None, warmup, measure, f);
        self
    }
}

/// Units for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Identifier for parameterized benchmarks.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` form.
    pub fn new(name: &str, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// A group of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets per-iteration throughput used in reports.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Caps measured sample count (accepted for API compatibility).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.throughput, self.c.warmup, self.c.measure, f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &id.to_string(),
            self.throughput,
            self.c.warmup,
            self.c.measure,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`].
pub struct Bencher {
    mode: Mode,
    iters: u64,
    elapsed: Duration,
}

enum Mode {
    Warmup(Duration),
    Measure(Duration),
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let budget = match self.mode {
            Mode::Warmup(d) | Mode::Measure(d) => d,
        };
        let start = Instant::now();
        let mut iters = 0u64;
        // Batches of doubling size amortize clock reads on fast routines.
        let mut batch = 1u64;
        while start.elapsed() < budget {
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            iters += batch;
            if batch < 1 << 20 {
                batch *= 2;
            }
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }
}

fn run_one<F>(
    name: &str,
    throughput: Option<Throughput>,
    warmup: Duration,
    measure: Duration,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        mode: Mode::Warmup(warmup),
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.mode = Mode::Measure(measure);
    b.iters = 0;
    b.elapsed = Duration::ZERO;
    f(&mut b);
    if b.iters == 0 {
        println!("  {name:<32} (no iterations ran)");
        return;
    }
    let ns_per_iter = b.elapsed.as_nanos() as f64 / b.iters as f64;
    let mut line = format!("  {name:<32} {ns_per_iter:>14.1} ns/iter");
    if let Some(t) = throughput {
        let per_sec = match t {
            Throughput::Bytes(n) => {
                let mbs = n as f64 / ns_per_iter * 1e9 / (1024.0 * 1024.0);
                format!("{mbs:>10.1} MiB/s")
            }
            Throughput::Elements(n) => {
                let eps = n as f64 / ns_per_iter * 1e9;
                format!("{eps:>10.0} elem/s")
            }
        };
        line.push_str(&format!("  {per_sec}"));
    }
    println!("{line}");
}

/// Declares a function running each listed benchmark target.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main()` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion {
            warmup: Duration::from_millis(5),
            measure: Duration::from_millis(10),
        }
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = quick();
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Bytes(1024));
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::from_parameter(64), &64usize, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    #[test]
    fn bencher_counts_iterations() {
        let mut c = quick();
        c.bench_function("count", |b| b.iter(|| std::hint::black_box(3u64).pow(2)));
    }
}
