//! Vendored, API-compatible subset of the `bytes` crate: [`Bytes`],
//! [`BytesMut`], and the [`Buf`]/[`BufMut`] traits, covering the slice of
//! the upstream API this workspace uses. `Bytes` keeps the cheap-clone
//! semantics (shared `Arc` storage + view window) that callers rely on.

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, contiguous, immutable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Wraps a static slice without copying.
    pub fn from_static(slice: &'static [u8]) -> Self {
        // The shim stores everything behind an Arc, so "static" just
        // means "copied once here" — semantics are identical.
        Bytes::copy_from_slice(slice)
    }

    /// Copies `slice` into a new buffer.
    pub fn copy_from_slice(slice: &[u8]) -> Self {
        Bytes::from(slice.to_vec())
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The viewed bytes.
    pub fn as_ref_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Splits off and returns the first `at` bytes; `self` keeps the rest.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of range");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// Copies the view into an owned `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        Bytes::from(b.buf)
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_ref_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref_slice().iter().take(32) {
            write!(f, "\\x{b:02x}")?;
        }
        if self.len() > 32 {
            write!(f, "..")?;
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref_slice() == other.as_ref_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref_slice() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref_slice().hash(state)
    }
}

/// A growable byte buffer for incremental encoding.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    /// Creates an empty buffer with `cap` bytes of capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, slice: &[u8]) {
        self.buf.extend_from_slice(slice);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

/// Sequential reader over a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The current unread contiguous slice.
    fn chunk(&self) -> &[u8];
    /// Consumes `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads one `u8`.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads one `i8`.
    fn get_i8(&mut self) -> i8 {
        self.get_u8() as i8
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice_impl(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice_impl(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(self.get_u32_le().to_le_bytes())
    }

    /// Copies `dst.len()` bytes out and consumes them.
    fn copy_to_slice_impl(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        let mut filled = 0;
        while filled < dst.len() {
            let chunk = self.chunk();
            let n = chunk.len().min(dst.len() - filled);
            dst[filled..filled + n].copy_from_slice(&chunk[..n]);
            filled += n;
            self.advance(n);
        }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_ref_slice()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Sequential writer into a growable byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Writes one `u8`.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Writes one `i8`.
    fn put_i8(&mut self, v: i8) {
        self.put_u8(v as u8);
    }

    /// Writes a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut w = BytesMut::new();
        w.put_u32_le(0xDEAD_BEEF);
        w.put_f32_le(1.5);
        w.put_i8(-7);
        let mut r = Bytes::from(w.freeze().to_vec());
        assert_eq!(r.remaining(), 9);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.get_i8(), -7);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn bytes_clone_is_shallow_and_equal() {
        let a = Bytes::from(vec![1, 2, 3, 4]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(&a[1..3], &[2, 3]);
    }

    #[test]
    fn split_to_partitions() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&b[..], &[3, 4, 5]);
    }

    #[test]
    fn buf_for_slice_advances() {
        let data = [9u8, 0, 0, 0, 7];
        let mut s: &[u8] = &data;
        assert_eq!(s.get_u32_le(), 9);
        assert_eq!(s.get_u8(), 7);
        assert_eq!(s.remaining(), 0);
    }
}
