//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! This workspace only *annotates* types with serde derives (documenting
//! which structs are wire-shaped); nothing actually serializes through
//! serde, so the derives expand to nothing. If real serialization is
//! ever needed, replace the vendored serde shim with the upstream crate.

use proc_macro::TokenStream;

/// Expands to nothing; the annotated type gains no impls.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; the annotated type gains no impls.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
