//! Vendored serde shim: the `Serialize`/`Deserialize` names exist in both
//! the trait and derive-macro namespaces (as in upstream serde with the
//! `derive` feature), but the derives expand to nothing — this workspace
//! annotates wire-shaped types without serializing through serde.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait counterpart of upstream `serde::Serialize`.
pub trait Serialize {}

/// Marker trait counterpart of upstream `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}
