//! Vendored, API-compatible subset of the `rand` crate.
//!
//! This build environment has no registry access, so the workspace ships
//! the slice of `rand`'s API it actually uses: [`RngCore`]/[`Rng`],
//! [`SeedableRng`], [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64
//! — a different stream than upstream `StdRng`, which is fine because
//! nothing in this repo depends on upstream's exact bit stream),
//! [`distributions::Distribution`]/[`distributions::Standard`], uniform
//! ranges through [`Rng::gen_range`], and [`seq::SliceRandom`].

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::{Distribution, Standard};

/// Error type carried by [`RngCore::try_fill_bytes`]. The vendored RNGs
/// are infallible, so this is only ever constructed by user code.
#[derive(Debug)]
pub struct Error {
    msg: &'static str,
}

impl Error {
    /// Creates an error with a static description.
    pub fn new(msg: &'static str) -> Self {
        Error { msg }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rng error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value via the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        // 53 random mantissa bits, like upstream's uniform f64.
        let v = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        v < p
    }

    /// Fills `dest` with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

// Blanket impls over SampleUniform (mirroring upstream) keep type
// inference identical to the real crate: `gen_range(-48..=48)` picks the
// element type from surrounding context, not from the range literal.
impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_uniform(rng, lo, hi, true)
    }
}

/// Types with uniform sampling over a half-open or closed range.
pub trait SampleUniform: Sized {
    /// Uniform sample in `lo..hi` (or `lo..=hi` when `inclusive`).
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t, inclusive: bool) -> $t {
                let width = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                assert!(width > 0, "cannot sample empty range");
                let v = widening_uniform(rng, width);
                (lo as i128 + v as i128) as $t
            }
        }
    )+};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform value in `0..width` via 128-bit multiply-shift (Lemire) over
/// a 64-bit draw; bias is at most 2^-64 per sample.
fn widening_uniform<R: RngCore + ?Sized>(rng: &mut R, width: u128) -> u64 {
    debug_assert!(width > 0 && width <= u64::MAX as u128 + 1);
    if width == u64::MAX as u128 + 1 {
        return rng.next_u64();
    }
    let x = rng.next_u64() as u128;
    ((x * width) >> 64) as u64
}

macro_rules! float_sample_uniform {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t, _inclusive: bool) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                (lo as f64 + (hi as f64 - lo as f64) * unit) as $t
            }
        }
    )+};
}

float_sample_uniform!(f32, f64);

/// A generator seedable from a fixed-size byte seed.
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (the upstream
    /// convention) and constructs the generator from it.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn gen_range_is_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i32 = rng.gen_range(-48..=48);
            assert!((-48..=48).contains(&w));
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn full_u64_inclusive_range_does_not_panic() {
        let mut rng = StdRng::seed_from_u64(3);
        let _: u64 = rng.gen_range(0..=u64::MAX);
    }

    #[test]
    fn float_ranges_are_in_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let v: f32 = rng.gen_range(0.0f32..1000.0);
            assert!((0.0..1000.0).contains(&v));
        }
    }

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(10);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
