//! Distributions: the [`Standard`] distribution and the [`Distribution`]
//! trait (the subset of upstream `rand::distributions` this repo uses).

use crate::Rng;

/// A distribution of values of type `T`.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" uniform distribution over a type's domain (unit interval
/// for floats).
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! standard_int {
    ($($t:ty => $via:ident),+) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                rng.$via() as $t
            }
        }
    )+};
}

standard_int!(
    u8 => next_u32,
    u16 => next_u32,
    u32 => next_u32,
    u64 => next_u64,
    usize => next_u64,
    i8 => next_u32,
    i16 => next_u32,
    i32 => next_u32,
    i64 => next_u64,
    isize => next_u64
);

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        // Upstream uses the high bit of a u32 draw.
        rng.next_u32() & (1 << 31) != 0
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        // 24 mantissa bits -> uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn unit_floats_stay_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let x: f64 = Standard.sample(&mut rng);
            assert!((0.0..1.0).contains(&x));
            let y: f32 = Standard.sample(&mut rng);
            assert!((0.0..1.0).contains(&y));
        }
    }
}
