//! Concrete generators: [`StdRng`].

use crate::{Error, RngCore, SeedableRng};

/// The workspace's standard seedable generator: xoshiro256++.
///
/// Fast, passes BigCrush, and fully deterministic from a 32-byte seed.
/// (Upstream `StdRng` is ChaCha12; the exact stream differs, which is
/// acceptable here — no consumer depends on upstream's bit stream.)
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    #[inline]
    fn rotl(x: u64, k: u32) -> u64 {
        x.rotate_left(k)
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = Self::rotl(self.s[3], 45);
        result
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            *word = u64::from_le_bytes(seed[i * 8..(i + 1) * 8].try_into().expect("fixed"));
        }
        // An all-zero state is the one invalid xoshiro state.
        if s == [0; 4] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0x2545_F491_4F6C_DD1D,
            ];
        }
        StdRng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_escaped() {
        let mut rng = StdRng::from_seed([0; 32]);
        assert_ne!(rng.next_u64(), 0);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
