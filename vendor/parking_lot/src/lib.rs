//! Vendored, API-compatible subset of `parking_lot`: [`Mutex`],
//! [`RwLock`], and [`Condvar`] with parking_lot's no-`Result`,
//! non-poisoning lock API, implemented over `std::sync`. A poisoned
//! inner lock (a writer panicked) is recovered rather than propagated,
//! matching parking_lot's behavior of simply releasing the lock.

use std::sync::{self, PoisonError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` never returns `Err`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new lock around `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (exclusive borrow proves safety).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose `read()`/`write()` never return `Err`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock around `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (exclusive borrow proves safety).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A condition variable matching parking_lot's panic-free signatures.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks on `guard` until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // Temporarily move the guard out to satisfy std's by-value API.
        take_guard(&self.inner, guard, |cv, g| {
            cv.wait(g).unwrap_or_else(PoisonError::into_inner)
        });
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

fn take_guard<'a, T>(
    cv: &sync::Condvar,
    guard: &mut MutexGuard<'a, T>,
    f: impl FnOnce(&sync::Condvar, MutexGuard<'a, T>) -> MutexGuard<'a, T>,
) {
    // SAFETY-free trick: std's Condvar::wait consumes the guard and
    // returns a new one for the same mutex; swap through a ManuallyDrop
    // is unnecessary because we can use replace-with semantics via
    // a helper that never leaves `guard` dangling on unwind: wait()
    // aborts the process only if the closure panics, which std's wait
    // does not.
    replace_with(guard, |g| f(cv, g));
}

fn replace_with<G>(slot: &mut G, f: impl FnOnce(G) -> G) {
    unsafe {
        let old = std::ptr::read(slot);
        let new = f(old);
        std::ptr::write(slot, new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(vec![1, 2, 3]);
        let a = l.read();
        let b = l.read();
        assert_eq!(a.len() + b.len(), 6);
        drop((a, b));
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut started = lock.lock();
            while !*started {
                cv.wait(&mut started);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_one();
        }
        t.join().expect("waiter");
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(1));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }
}
