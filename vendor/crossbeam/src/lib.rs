//! Vendored, API-compatible subset of the `crossbeam` facade crate:
//! [`thread::scope`] (over `std::thread::scope`) and [`channel`]
//! (MPMC bounded/unbounded queues over `Mutex` + `Condvar`).

pub mod channel;
pub mod thread;
