//! Scoped threads with crossbeam's closure-takes-scope signature,
//! implemented over `std::thread::scope`.

use std::any::Any;

/// A scope handle; lets spawned threads borrow from the enclosing stack
/// frame and spawn further siblings.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// Handle to a thread spawned in a [`Scope`].
pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the thread and returns its result (`Err` on panic).
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.0.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a thread; the closure receives the scope, allowing nested
    /// spawns (crossbeam's signature — std's closure takes no argument).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle(inner.spawn(move || f(&Scope { inner })))
    }
}

/// Runs `f` with a scope in which borrowing spawns are allowed; returns
/// `Ok` with `f`'s result once every spawned thread has finished.
///
/// Divergence from crossbeam: an unjoined child panic aborts via
/// `std::thread::scope`'s propagation (a panic in the caller) instead of
/// surfacing as `Err`. Callers here always `.expect()` the result, so
/// both shapes end in the same panic.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    #[test]
    fn spawned_threads_borrow_and_join() {
        let data = vec![1u64, 2, 3, 4];
        let total: u64 = super::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().expect("join")).sum()
        })
        .expect("scope");
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = super::scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 21).join().expect("inner") * 2)
                .join()
                .expect("outer")
        })
        .expect("scope");
        assert_eq!(n, 42);
    }
}
