//! MPMC channels with crossbeam's API shape: [`bounded`] / [`unbounded`]
//! constructors, cloneable [`Sender`]/[`Receiver`], and disconnect
//! semantics (send fails once all receivers are gone; recv drains the
//! queue then fails once all senders are gone).

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

struct Inner<T> {
    queue: VecDeque<T>,
    cap: Option<usize>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Error: the message could not be delivered (all receivers dropped).
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

/// Error: the channel is empty and every sender has been dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error for [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message available right now.
    Empty,
    /// Channel is empty and all senders are gone.
    Disconnected,
}

/// Error for [`Sender::try_send`]: the message comes back to the caller.
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The bounded channel is at capacity right now.
    Full(T),
    /// All receivers are gone.
    Disconnected(T),
}

impl<T> std::fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrySendError::Full(_) => write!(f, "sending on a full channel"),
            TrySendError::Disconnected(_) => write!(f, "sending on a disconnected channel"),
        }
    }
}

impl<T: std::fmt::Debug> std::error::Error for TrySendError<T> {}

/// The sending half; cloneable for fan-in.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half; cloneable for fan-out (each message goes to
/// exactly one receiver).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a channel holding at most `cap` in-flight messages; `send`
/// blocks while full (backpressure).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    make(Some(cap.max(1)))
}

/// Creates a channel with no capacity bound.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    make(None)
}

fn make<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            cap,
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Number of messages currently queued (a racy instantaneous view,
    /// like upstream crossbeam's).
    pub fn len(&self) -> usize {
        self.shared.inner.lock().expect("channel lock").queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Delivers `msg`, blocking while a bounded channel is full.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut inner = self.shared.inner.lock().expect("channel lock");
        loop {
            if inner.receivers == 0 {
                return Err(SendError(msg));
            }
            match inner.cap {
                Some(cap) if inner.queue.len() >= cap => {
                    inner = self.shared.not_full.wait(inner).expect("channel lock");
                }
                _ => break,
            }
        }
        inner.queue.push_back(msg);
        drop(inner);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Delivers `msg` only if it can be done without blocking; a full or
    /// disconnected channel hands the message back so the caller can
    /// apply its own backpressure policy.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut inner = self.shared.inner.lock().expect("channel lock");
        if inner.receivers == 0 {
            return Err(TrySendError::Disconnected(msg));
        }
        if let Some(cap) = inner.cap {
            if inner.queue.len() >= cap {
                return Err(TrySendError::Full(msg));
            }
        }
        inner.queue.push_back(msg);
        drop(inner);
        self.shared.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.inner.lock().expect("channel lock").senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().expect("channel lock");
        inner.senders -= 1;
        let last = inner.senders == 0;
        drop(inner);
        if last {
            // Wake receivers so they observe the disconnect.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Number of messages currently queued (a racy instantaneous view,
    /// like upstream crossbeam's).
    pub fn len(&self) -> usize {
        self.shared.inner.lock().expect("channel lock").queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Takes the next message, blocking until one arrives or every
    /// sender is dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.shared.inner.lock().expect("channel lock");
        loop {
            if let Some(msg) = inner.queue.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self.shared.not_empty.wait(inner).expect("channel lock");
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.shared.inner.lock().expect("channel lock");
        if let Some(msg) = inner.queue.pop_front() {
            drop(inner);
            self.shared.not_full.notify_one();
            return Ok(msg);
        }
        if inner.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Blocking iterator that ends when the channel disconnects.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { rx: self }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.inner.lock().expect("channel lock").receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().expect("channel lock");
        inner.receivers -= 1;
        let last = inner.receivers == 0;
        drop(inner);
        if last {
            // Wake blocked senders so they observe the disconnect.
            self.shared.not_full.notify_all();
        }
    }
}

/// Borrowing message iterator — see [`Receiver::iter`].
pub struct Iter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_single_consumer() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).expect("send");
        }
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_applies_backpressure() {
        let (tx, rx) = bounded(2);
        tx.send(1).expect("send");
        tx.send(2).expect("send");
        let t = std::thread::spawn(move || {
            // Blocks until the consumer drains one slot.
            tx.send(3).expect("send");
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        t.join().expect("producer");
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn disconnect_semantics() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());

        let (tx2, rx2) = unbounded::<u8>();
        tx2.send(7).expect("send");
        drop(tx2);
        assert_eq!(rx2.recv(), Ok(7));
        assert_eq!(rx2.recv(), Err(RecvError));
    }

    #[test]
    fn mpmc_delivers_each_message_once() {
        let (tx, rx) = bounded(8);
        let mut producers = Vec::new();
        for p in 0..4 {
            let tx = tx.clone();
            producers.push(std::thread::spawn(move || {
                for i in 0..50 {
                    tx.send(p * 1000 + i).expect("send");
                }
            }));
        }
        drop(tx);
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let rx = rx.clone();
            consumers.push(std::thread::spawn(move || rx.iter().count()));
        }
        drop(rx);
        for p in producers {
            p.join().expect("producer");
        }
        let total: usize = consumers
            .into_iter()
            .map(|c| c.join().expect("consumer"))
            .sum();
        assert_eq!(total, 200);
    }
}
