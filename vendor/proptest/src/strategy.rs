//! The [`Strategy`] trait and core combinators.

use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream there is no value tree / shrinking: a strategy is just
/// a sampler.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Samples one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { source: self, f }
    }

    /// Type-erases the strategy (needed by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.f)(self.source.new_value(rng))
    }
}

/// Uniform draw over a type's natural domain — see [`any`].
pub struct Any<T>(PhantomData<T>);

/// Samples any value of `T` (ints uniform over the full domain, floats
/// uniform in `[0, 1)`, bools fair).
pub fn any<T>() -> Any<T>
where
    rand::Standard: rand::Distribution<T>,
{
    Any(PhantomData)
}

impl<T> Strategy for Any<T>
where
    rand::Standard: rand::Distribution<T>,
{
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        rand::Rng::gen(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )+};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);

trait DynStrategy<T> {
    fn new_value_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn new_value_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.new_value(rng)
    }
}

/// A type-erased strategy — see [`Strategy::boxed`].
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.new_value_dyn(rng)
    }
}

/// Weighted choice among strategies — the engine behind `prop_oneof!`.
pub struct Union<T> {
    branches: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    /// Builds from `(weight, strategy)` branches.
    ///
    /// # Panics
    ///
    /// Panics if `branches` is empty or all weights are zero.
    pub fn new(branches: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = branches.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! requires a positive total weight");
        Union { branches }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let total: u32 = self.branches.iter().map(|(w, _)| *w).sum();
        let mut pick = rand::Rng::gen_range(rng, 0..total);
        for (w, s) in &self.branches {
            if pick < *w {
                return s.new_value(rng);
            }
            pick -= *w;
        }
        unreachable!("weighted pick out of range")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for;

    #[test]
    fn union_respects_weights_roughly() {
        let u = Union::new(vec![(9, Just(true).boxed()), (1, Just(false).boxed())]);
        let mut rng = rng_for("union_weights");
        let trues = (0..10_000).filter(|_| u.new_value(&mut rng)).count();
        assert!((8_000..9_900).contains(&trues), "trues = {trues}");
    }

    #[test]
    fn map_and_tuple_compose() {
        let s = (1usize..4, 10u32..20).prop_map(|(a, b)| a as u32 + b);
        let mut rng = rng_for("map_tuple");
        for _ in 0..100 {
            let v = s.new_value(&mut rng);
            assert!((11..23).contains(&v));
        }
    }
}
