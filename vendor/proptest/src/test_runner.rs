//! Runner plumbing: config, per-case error type, and the deterministic
//! test RNG.

use rand::SeedableRng;

/// The RNG strategies draw from.
pub type TestRng = rand::rngs::StdRng;

/// Per-test-suite configuration (only `cases` is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; this runner trades a little coverage
        // for suite latency since there is no result caching.
        ProptestConfig { cases: 96 }
    }
}

/// Why a single sampled case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — resample, don't count as a failure.
    Reject(String),
    /// A `prop_assert*!` failed.
    Fail(String),
}

/// Result of one sampled case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Builds the RNG for one property: deterministic per test name, with a
/// `PROPTEST_SEED` env override mixed in for exploring other streams.
pub fn rng_for(test_name: &str) -> TestRng {
    // FNV-1a over the test name decorrelates sibling properties.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(v) = s.trim().parse::<u64>() {
            h ^= v.rotate_left(17);
        }
    }
    TestRng::seed_from_u64(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn rng_is_deterministic_per_name() {
        let a = rng_for("alpha").next_u64();
        let b = rng_for("alpha").next_u64();
        let c = rng_for("beta").next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
