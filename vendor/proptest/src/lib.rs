//! Vendored, API-compatible subset of proptest: the [`Strategy`] trait
//! with ranges/tuples/[`strategy::Just`]/`prop_map`/[`strategy::Union`],
//! [`collection::vec`], and the `proptest!`/`prop_assert*`/`prop_assume!`
//! /`prop_oneof!` macros.
//!
//! Differences from upstream: inputs are sampled from a deterministic
//! per-test seed (override with `PROPTEST_SEED`), and failing cases are
//! reported but **not shrunk** — the failing inputs print verbatim.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Upstream-style namespace: `prop::collection::vec(...)`.
pub mod prop {
    pub use crate::collection;
}

/// Everything tests normally import.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Any, BoxedStrategy, Just, Map, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            let mut __rng = $crate::test_runner::rng_for(stringify!($name));
            let __strats = ($(($strat),)*);
            let mut __done: u32 = 0;
            let mut __rejected: u32 = 0;
            while __done < __config.cases {
                #[allow(unused_parens)]
                let ($($arg,)*) = {
                    #[allow(unused_variables)]
                    let ($(ref $arg,)*) = __strats;
                    ($($crate::strategy::Strategy::new_value($arg, &mut __rng),)*)
                };
                #[allow(unused_variables)]
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),*),
                    $(&$arg),*
                );
                let __result = (|| -> $crate::test_runner::TestCaseResult {
                    $body
                    Ok(())
                })();
                match __result {
                    Ok(()) => {
                        __done += 1;
                    }
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        __rejected += 1;
                        if __rejected > __config.cases.saturating_mul(20) + 1000 {
                            panic!(
                                "proptest '{}': too many rejected inputs ({})",
                                stringify!($name),
                                __rejected
                            );
                        }
                    }
                    Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "proptest '{}' failed after {} passing case(s): {}\n  inputs: {}",
                            stringify!($name),
                            __done,
                            __msg,
                            __inputs
                        );
                    }
                }
            }
        }
    )*};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {} ({})",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = $left;
        let __right = $right;
        if !(__left == __right) {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
                __left, __right
            )));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = $left;
        let __right = $right;
        if __left == __right {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `left != right`\n  both: {:?}",
                __left
            )));
        }
    }};
}

/// Rejects the current case (resampled, not counted) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Picks among strategies, optionally weighted (`3 => strat`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn composite() -> impl Strategy<Value = Vec<u8>> {
        prop_oneof![
            4 => prop::collection::vec(any::<u8>(), 0..32),
            1 => (any::<u8>(), 1usize..16).prop_map(|(b, n)| vec![b; n]),
            1 => Just(vec![7u8; 3]),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(a in 3usize..9, b in -4i32..=4, f in 0.5f32..2.0) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((-4..=4).contains(&b));
            prop_assert!((0.5..2.0).contains(&f), "f = {}", f);
        }

        #[test]
        fn vec_respects_size(v in prop::collection::vec(0u32..10, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn oneof_and_map_compose(v in composite()) {
            prop_assert!(v.len() < 32 || !v.is_empty());
        }

        #[test]
        fn assume_rejects_without_failing(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
            prop_assert_ne!(n, 1);
        }
    }

    #[test]
    #[should_panic(expected = "failed after")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            #[allow(unused)]
            fn inner(n in 0usize..4) {
                prop_assert!(n < 3);
            }
        }
        inner();
    }
}
