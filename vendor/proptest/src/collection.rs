//! Collection strategies: [`vec`].

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Generates `Vec`s whose length is drawn from `size` and whose elements
/// come from `elem`.
pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { elem, size }
}

/// Result of [`vec`].
pub struct VecStrategy<S> {
    elem: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rand::Rng::gen_range(rng, self.size.clone());
        (0..len).map(|_| self.elem.new_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for;

    #[test]
    fn lengths_and_elements_in_range() {
        let s = vec(5u8..9, 1..7);
        let mut rng = rng_for("vec_lengths");
        for _ in 0..200 {
            let v = s.new_value(&mut rng);
            assert!((1..7).contains(&v.len()));
            assert!(v.iter().all(|&x| (5..9).contains(&x)));
        }
    }
}
