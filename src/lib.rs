//! Umbrella crate for the NDPipe reproduction workspace.
//!
//! This package exists to host the runnable examples (`examples/`) and
//! the cross-crate integration tests (`tests/`). The implementation
//! lives in the member crates, re-exported here for convenience:
//!
//! - [`ndpipe`] — the paper's contribution (FT-DMP, APO, NPE,
//!   Check-N-Run, label DB, system facade),
//! - [`dnn`] — executable mini-models and architecture profiles,
//! - [`ndpipe_data`] — synthetic drifting datasets and the DEFLATE codec,
//! - [`cluster`] / [`hw`] / [`simkit`] — the calibrated performance
//!   simulation stack,
//! - [`tensor`] — the numeric substrate.
//!
//! Start with `examples/quickstart.rs`:
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

pub use cluster;
pub use dnn;
pub use hw;
pub use ndpipe;
pub use ndpipe_data;
pub use simkit;
pub use tensor;
