//! Capacity planning with APO: given a model, a fleet budget and a
//! network, decide where to cut the model, how many PipeStores to run,
//! and what it will cost — the deployment question §5.3 automates.
//!
//! ```bash
//! cargo run --release --example capacity_planner [resnet50|inceptionv3|resnext101|vit]
//! ```

use cluster::energy::training_energy;
use cluster::training::{srv_training_report, training_report, TrainSetup};
use dnn::ModelProfile;
use hw::cost::fleet_run_cost_usd;
use hw::{CostModel, LinkSpec};
use ndpipe::apo::{best_organization, ApoInput};

fn pick_model() -> ModelProfile {
    match std::env::args().nth(1).as_deref() {
        None | Some("resnet50") => ModelProfile::resnet50(),
        Some("inceptionv3") => ModelProfile::inception_v3(),
        Some("resnext101") => ModelProfile::resnext101(),
        Some("vit") => ModelProfile::vit_b16(),
        Some("shufflenetv2") => ModelProfile::shufflenet_v2(),
        Some(other) => {
            eprintln!(
                "unknown model '{other}'; expected one of: resnet50, inceptionv3, \
                 resnext101, vit, shufflenetv2"
            );
            std::process::exit(2);
        }
    }
}

fn main() {
    let model = pick_model();
    println!("planning an NDPipe deployment for {}", model.name());
    println!(
        "  model: {:.1} GFLOPs/image, {:.1} MB of parameters, {} stages",
        model.total_flops() / 1e9,
        model.total_param_bytes() / 1e6,
        model.stages().len()
    );

    let input = ApoInput::paper_default(model.clone());
    let plan = best_organization(&input);
    let cut = &model.stages()[plan.best.partition - 1].name;
    println!("\nAPO recommendation:");
    println!(
        "  partition after {cut} (PipeStores run stages 1..={})",
        plan.best.partition
    );
    println!(
        "  fleet size: {} PipeStores (store-stage {:.0}s vs tuner-stage {:.0}s, imbalance {:.0}s)",
        plan.best.n_pipestores, plan.best.t_ps, plan.best.t_tuner, plan.best.t_diff
    );

    let setup = TrainSetup {
        partition: plan.best.partition,
        ..TrainSetup::paper_default(model.clone(), plan.best.n_pipestores)
    };
    let rep = training_report(&setup);
    let energy = training_energy(&setup);
    let cost = fleet_run_cost_usd(
        CostModel::g4dn_4xlarge(),
        plan.best.n_pipestores,
        CostModel::p3_2xlarge(),
        rep.total_secs,
    );
    println!("\nexpected fine-tuning job (1.2M images, 20 head epochs):");
    println!("  wall time      {:.1} min", rep.total_secs / 60.0);
    println!(
        "  feature traffic {:.2} GB over the fabric",
        rep.data_traffic_bytes / 1e9
    );
    println!(
        "  energy         {:.0} kJ ({:.1} images/kJ)",
        energy.joules / 1e3,
        energy.ips_per_kilojoule()
    );
    println!("  AWS cost       ${cost:.2}");

    // Compare against the centralized alternative.
    let srv = srv_training_report(&model, 1_200_000, 20, 512, &LinkSpec::ethernet_gbps(10.0));
    let srv_cost = fleet_run_cost_usd(
        CostModel::g4dn_4xlarge(),
        4,
        CostModel::p3_8xlarge(),
        srv.total_secs,
    );
    println!("\nversus a centralized SRV-C host (2x V100 + 4 storage servers):");
    println!(
        "  wall time {:.1} min, cost ${:.2} -> NDPipe is {:.2}x faster and {:.2}x cheaper",
        srv.total_secs / 60.0,
        srv_cost,
        srv.total_secs / rep.total_secs,
        srv_cost / cost
    );

    println!("\nfull sweep (stores -> time, T_diff):");
    for c in plan.sweep.iter().step_by(2) {
        println!(
            "  n={:>2}  {:>6.1}s  T_diff {:>6.1}s{}",
            c.n_pipestores,
            c.total_secs,
            c.t_diff,
            if c.n_pipestores == plan.best.n_pipestores {
                "   <- APO pick"
            } else {
                ""
            }
        );
    }
}
