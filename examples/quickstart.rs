//! Quickstart: boot an NDPipe deployment, let photos drift in for a
//! week, fine-tune near the data, and refresh the label database.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use ndpipe::system::{NdPipeSystem, SystemConfig};
use ndpipe_data::DatasetSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // A small deployment: 3 PipeStores over a 10-class synthetic photo
    // universe (use `DatasetSpec::cifar100()` etc. with
    // `SystemConfig::paper_mini()` for paper-scale runs).
    println!("booting NDPipe (3 PipeStores + Tuner)...");
    let mut system = NdPipeSystem::bootstrap(
        SystemConfig {
            initial_pool: 600,
            ..SystemConfig::small_test()
        },
        DatasetSpec::tiny(),
        &mut rng,
    );
    println!(
        "  {} photos sharded over {} stores, {} labels indexed",
        system.scenario().pool_size(),
        system.stores().len(),
        system.labeldb().len()
    );
    println!("  base accuracy: {}", system.evaluate(&mut rng));

    // A week of uploads: new photos, new categories, drifting content.
    for _ in 0..7 {
        system.advance_day(&mut rng);
    }
    println!(
        "after 7 days: {} photos ({} classes), stale accuracy: {}",
        system.scenario().pool_size(),
        system.scenario().current_classes(),
        system.evaluate(&mut rng)
    );
    println!(
        "  online inference served {} uploads in {} batches (mean batch {:.1})",
        system.online_stats().processed,
        system.online_stats().batches,
        system.online_stats().mean_batch()
    );

    // Continuous fine-tuning: PipeStores extract features in parallel,
    // the Tuner trains the classifier, deltas flow back.
    let outcome = system.fine_tune(&mut rng);
    println!(
        "fine-tuned over {} examples; features shipped: {} KB; model deltas: {} KB ({:.0}x smaller than full models)",
        outcome.report.examples,
        outcome.report.feature_bytes / 1024,
        outcome.report.distribution_bytes / 1024,
        outcome.report.distribution_reduction
    );
    println!("  post-tune accuracy: {}", outcome.final_accuracy);

    // Offline inference refreshes stale labels near the data.
    let relabel = system.offline_relabel();
    println!(
        "offline relabel: {} photos examined, {} labels fixed; label-DB accuracy {:.1}%",
        relabel.examined,
        relabel.changed,
        system.label_accuracy() * 100.0
    );

    // Everything above was instrumented: dump the deployment-wide
    // telemetry snapshot (process-global + per-store registries).
    let snapshot = system.metrics_snapshot();
    println!(
        "\ntelemetry snapshot ({} series), selected lines:",
        snapshot.len()
    );
    for line in snapshot
        .to_prometheus()
        .lines()
        .filter(|l| !l.starts_with('#'))
        .filter(|l| {
            l.starts_with("ndpipe_ftdmp_rounds_total")
                || l.starts_with("ndpipe_online_requests_total")
                || l.starts_with("ndpipe_checknrun_deltas_total")
                || l.starts_with("ndpipe_npe_stage_items_total")
        })
    {
        println!("  {line}");
    }
}
