//! A month in the life of a photo service: daily uploads, biweekly
//! near-data fine-tuning, and offline label refreshes — the workload the
//! paper's introduction motivates (Google/Amazon Photos-style platforms).
//!
//! Prints a day-by-day health timeline of model and label-database
//! accuracy, contrasting what would have happened with no updates.
//!
//! ```bash
//! cargo run --release --example photo_service
//! ```

use ndpipe::system::{NdPipeSystem, SystemConfig};
use ndpipe_data::DatasetSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let config = SystemConfig {
        n_pipestores: 5,
        initial_pool: 1500,
        feature_widths: vec![48, 32],
        initial_epochs: 20,
        train: dnn::TrainConfig {
            lr: 0.05,
            batch: 32,
            max_epochs: 12,
            ..dnn::TrainConfig::default()
        },
        ..SystemConfig::small_test()
    };
    // A 30-category service with realistic drift, sized so the example
    // finishes in seconds; swap in `DatasetSpec::imagenet_1k()` with a
    // bigger pool for a paper-scale run.
    let spec = DatasetSpec {
        name: "photo-service",
        input_dim: 48,
        latent_dim: 16,
        initial_classes: 30,
        noise_sigma: 0.7,
        test_samples: 600,
        daily_drift: 0.06,
    };
    let mut system = NdPipeSystem::bootstrap(config, spec, &mut rng);
    // A frozen twin shows the outdated-model counterfactual.
    let frozen_model = system.model().clone();

    println!("day\tphotos\tclasses\tmodel top-1\toutdated top-1\tlabel-DB acc");
    for day in 1..=28 {
        system.advance_day(&mut rng);

        // Biweekly maintenance: fine-tune near data, then refresh labels.
        if day % 14 == 0 {
            let outcome = system.fine_tune(&mut rng);
            let relabel = system.offline_relabel();
            println!(
                "  [day {day}] fine-tuned ({} examples, deltas {:.0}x smaller); relabeled {} photos, fixed {}",
                outcome.report.examples,
                outcome.report.distribution_reduction,
                relabel.examined,
                relabel.changed
            );
        }

        if day % 2 == 0 {
            let live = system.evaluate(&mut rng);
            let test = system.scenario().test_set(&mut rng);
            let outdated = dnn::Trainer::evaluate(&frozen_model, &test);
            println!(
                "{day}\t{}\t{}\t{:.1}%\t{:.1}%\t{:.1}%",
                system.scenario().pool_size(),
                system.scenario().current_classes(),
                live.top1 * 100.0,
                outdated.top1 * 100.0,
                system.label_accuracy() * 100.0
            );
        }
    }
    println!();
    println!(
        "final: NDPipe-maintained model {:.1}% vs outdated {:.1}% — continuous",
        system.evaluate(&mut rng).top1 * 100.0,
        dnn::Trainer::evaluate(&frozen_model, &system.scenario().test_set(&mut rng)).top1 * 100.0,
    );
    println!("near-data fine-tuning keeps the service ahead of drift.");
}
