//! The NPE data path, end to end and for real: photos land on a
//! PipeStore with DEFLATE-compressed preprocessed sidecars, offline
//! inference decompresses and classifies them locally, and only labels
//! leave the server. Also demonstrates Check-N-Run model distribution.
//!
//! ```bash
//! cargo run --release --example near_data_inference
//! ```

use dnn::Mlp;
use ndpipe::npe::{stage_times, NpeLevel, NpeTask};
use ndpipe::{ModelDelta, PipeStore};
use ndpipe_data::photo::{preprocessed_binary, PhotoFactory};
use ndpipe_data::{ClassUniverse, LabeledDataset};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(11);

    // Build a PipeStore holding 64 photos of 8 classes.
    let universe = ClassUniverse::new(32, 12, 8, 0.4, &mut rng);
    let rows: Vec<_> = (0..64).map(|i| universe.sample(i % 8, &mut rng)).collect();
    let labels: Vec<usize> = (0..64).map(|i| i % 8).collect();
    let shard = LabeledDataset::new(rows, labels, 8);
    let mut store = PipeStore::new(0, shard);

    let mut factory = PhotoFactory::new(256 * 1024); // 256 KB "JPEGs"
    let mut raw_total = 0usize;
    let mut side_total = 0usize;
    for i in 0..64 {
        let photo = factory.make(i % 8, 0, &mut rng);
        raw_total += photo.size();
        let binary = preprocessed_binary(64 * 1024, &mut rng);
        store.store_photo(photo, binary);
    }
    for p in store.photos() {
        side_total += p.compressed_binary.len();
    }
    println!(
        "stored 64 photos: {:.1} MB raw JPEG-like blobs",
        raw_total as f64 / 1e6
    );
    println!(
        "compressed preprocessed sidecars: {:.2} MB ({:.1}% storage overhead; paper: 17.5% before compression)",
        side_total as f64 / 1e6,
        store.sidecar_overhead().unwrap() * 100.0
    );

    // Install a model and run near-data offline inference.
    let model = Mlp::new(&[32, 48, 24, 8], 2, &mut rng);
    store.install_model(model.clone());
    let results = store.offline_inference();
    let label_bytes = results.len() * 16;
    println!(
        "\noffline inference: {} photos classified locally; only {} bytes of labels crossed the network",
        results.len(),
        label_bytes
    );

    // What the NPE optimizations buy on real hardware (capacity model).
    println!("\nNPE ablation for ResNet50 on one T4 PipeStore (per-image ms, pipelined IPS):");
    let profile = dnn::ModelProfile::resnet50();
    for level in NpeLevel::all() {
        let t = stage_times(&profile, NpeTask::OfflineInference, level);
        println!(
            "  {:<9} read {:>6.3}  preproc {:>6.3}  decomp {:>6.3}  fe {:>6.3}  -> {:>5.0} IPS",
            level.label(),
            t.read * 1e3,
            t.preproc * 1e3,
            t.decomp * 1e3,
            t.fe * 1e3,
            t.pipelined_ips()
        );
    }

    // Check-N-Run: ship the fine-tuned model back as a tiny delta.
    let mut tuned = model.clone();
    let x = store.shard().features().clone();
    let y = store.shard().labels().to_vec();
    for _ in 0..10 {
        tuned.train_step(&x, &y, 0.05, 0.9, tuned.split());
    }
    let delta = ModelDelta::between(&model, &tuned);
    println!(
        "\nmodel redistribution: full model {:.1} KB vs delta {:.2} KB on the wire ({:.0}x reduction; paper: up to 427x)",
        (tuned.param_count() * 4) as f64 / 1e3,
        delta.wire_bytes() as f64 / 1e3,
        delta.traffic_reduction()
    );
    let mut replica = model.clone();
    delta.apply(&mut replica).expect("same architecture");
    println!("replica upgraded in place; PipeStore ready for the next offline pass.");

    // --- Durability: the Haystack-style object store -----------------
    let dir = std::env::temp_dir().join(format!("ndpipe-example-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    {
        let mut volume_store =
            objstore::ObjectStore::open(&dir, 4 << 20).expect("open object store");
        let persisted = store
            .persist_photos(&mut volume_store)
            .expect("persist photos");
        println!(
            "\ndurability: {persisted} photos + sidecars persisted into {} needle-log volume(s), {:.2} MB",
            volume_store.volume_count(),
            volume_store.size_bytes() as f64 / 1e6
        );
    }
    // A restarted server recovers its archive by scanning the logs.
    let mut reopened = objstore::ObjectStore::open(&dir, 4 << 20).expect("recover");
    let mut restored = PipeStore::new(0, store.shard().clone());
    let n = restored
        .restore_photos(&mut reopened)
        .expect("restore photos");
    restored.install_model(tuned);
    let relabeled = restored.offline_inference().len();
    println!(
        "after restart: {n} photos recovered, {relabeled} relabeled from the recovered archive."
    );
    std::fs::remove_dir_all(&dir).ok();
}
