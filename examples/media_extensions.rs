//! NDPipe beyond photos (§7.1): the same near-data pattern — compute a
//! compact representation where the data lives, ship only that — applied
//! to video, audio and documents.
//!
//! ```bash
//! cargo run --release --example media_extensions
//! ```

use dnn::cnn::CnnFeatureExtractor;
use ndpipe::extensions::audio::{sine_wave, spectrogram, spectrogram_embedding, StftSpec};
use ndpipe::extensions::document::{cosine, DocEmbedder};
use ndpipe::extensions::video::{summarize_clip, VideoClip};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tensor::Tensor;

fn main() {
    let mut rng = StdRng::seed_from_u64(3);

    // --- Video: key frames + CNN summary vector -------------------------
    println!("video: 60-frame clip with three scene cuts");
    let mut frames = Vec::new();
    for scene in 0..3 {
        for f in 0..20 {
            // Each scene has its own base brightness with tiny flicker.
            let level = scene as f32 * 0.4 + (f % 2) as f32 * 0.01;
            frames.push(Tensor::full(&[1, 16, 16], level));
        }
    }
    let clip = VideoClip::new(frames);
    let clip_bytes = clip.len() * 16 * 16 * 4;
    let extractor = CnnFeatureExtractor::new(1, &[8, 16], &mut rng);
    let summary = summarize_clip(&clip, &extractor, 0.1);
    println!(
        "  key frames {:?} of {} total; shipped a {}-dim summary ({} B) instead of {} KB of frames",
        summary.key_frames,
        clip.len(),
        summary.summary.len(),
        summary.summary.len() * 4,
        clip_bytes / 1024
    );

    // --- Audio: spectrogram transformation -------------------------------
    println!("\naudio: 0.5s tones at 8kHz through the STFT");
    let spec = StftSpec::new(64, 32);
    for freq in [440.0f32, 1000.0, 2000.0] {
        let wave = sine_wave(freq, 8000.0, 1.0, 4000);
        let image = spectrogram(&wave, spec);
        let embedding = spectrogram_embedding(&image);
        let peak_bin = embedding.argmax();
        println!(
            "  {freq:>6.0} Hz -> spectrogram {:?} -> {}-dim embedding, peak bin {} ({:.0} Hz)",
            image.dims(),
            embedding.len(),
            peak_bin,
            peak_bin as f32 * 8000.0 / 64.0
        );
    }

    // --- Documents: hashed embeddings ------------------------------------
    println!("\ndocuments: feature-hashed embeddings for Tuner-side classification");
    let embedder = DocEmbedder::new(128);
    let corpus = [
        ("photo storage with near data processing", "systems"),
        ("storage servers run inference near the data", "systems"),
        ("the cat enjoyed a warm nap in the sun", "pets"),
    ];
    let probe = embedder.embed("near data processing inside storage servers");
    for (text, tag) in corpus {
        let sim = cosine(&probe, &embedder.embed(text));
        println!("  cos(query, \"{text}\") = {sim:+.3}  [{tag}]");
    }
    println!("\nall three media reduce to fixed-width vectors the photo pipeline");
    println!("already handles: FT-DMP fine-tunes the task head on them unchanged.");
}
